// Crash-injected recovery matrix (docs/ARCHITECTURE.md §8): for EVERY
// CrashPoint, at 1 and 4 threads, a run that crashes mid-stream and is then
// recovered (newest readable snapshot + WAL replay) and driven to completion
// produces bit-identical per-round ResultSets and state digests to an
// uninterrupted run — including the replayed rounds themselves. Plus targeted
// coverage: WAL-only recovery (no snapshot yet), cross-thread recovery,
// delta>1 round boundaries, and validator timestamp floors after replay.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/scuba_engine.h"
#include "persist/crash.h"
#include "persist/durability.h"
#include "persist/snapshot.h"
#include "state_digest.h"
#include "stream/update_validator.h"

namespace scuba {
namespace {

namespace fs = std::filesystem;

constexpr Rect kRegion{0.0, 0.0, 10000.0, 10000.0};
constexpr int kRounds = 8;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_((fs::current_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

std::vector<Round> MakeRounds(uint64_t seed, int rounds) {
  Rng rng(seed);
  struct Entity {
    uint32_t id;
    bool is_query;
    Point pos;
    double range;
  };
  std::vector<Entity> entities;
  for (uint32_t i = 0; i < 130; ++i) {
    int group = static_cast<int>(rng.NextDouble(0, 9));
    Point base{650.0 + 850.0 * group, 700.0 + 750.0 * (group % 4)};
    entities.push_back(Entity{i, (i % 4 == 1),
                              {base.x + rng.NextDouble(-55, 55),
                               base.y + rng.NextDouble(-55, 55)},
                              rng.NextDouble(45, 190)});
  }
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (Entity& e : entities) {
      if (rng.NextDouble(0, 1) < 0.15) continue;
      e.pos = {e.pos.x + rng.NextDouble(-22, 22),
               e.pos.y + rng.NextDouble(-22, 22)};
      if (e.is_query) {
        QueryUpdate u;
        u.qid = e.id;
        u.position = e.pos;
        u.speed = 7.0 + (e.id % 6);
        u.dest_node = static_cast<NodeId>(e.id % 4);
        u.dest_position = Point{9200, 9200};
        u.range_width = e.range;
        u.range_height = e.range;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = e.id;
        u.position = e.pos;
        u.speed = 7.0 + (e.id % 6);
        u.dest_node = static_cast<NodeId>(e.id % 4);
        u.dest_position = Point{9200, 9200};
        u.attrs = (e.id % 5 == 0) ? 0x7u : 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

ScubaOptions MakeOptions(uint32_t threads) {
  ScubaOptions opt;
  opt.join_threads = threads;
  opt.ingest_threads = threads;
  opt.on_bad_update = BadUpdatePolicy::kQuarantine;
  // Checkpoint every 2 rounds, small segments: one 8-round run exercises
  // rotation, retention pruning and multi-snapshot fallback.
  opt.checkpoint.every_n_rounds = 2;
  opt.checkpoint.keep_last_k = 2;
  opt.checkpoint.wal_segment_bytes = 4096;
  return opt;
}

ValidatorConfig MakeValidatorConfig() {
  ValidatorConfig config;
  config.policy = BadUpdatePolicy::kQuarantine;
  config.bounds = kRegion;
  config.check_bounds = true;
  return config;
}

std::unique_ptr<ScubaEngine> MakeEngine(const ScubaOptions& opt) {
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

struct RunLog {
  std::vector<ResultSet> results;  ///< Per evaluated round, in order.
  std::vector<std::string> digests;
};

/// The uninterrupted reference: no durability at all — results and digests
/// depend only on the update stream.
RunLog RunBaseline(const std::vector<Round>& rounds, uint32_t threads) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine(MakeOptions(threads));
  RunLog log;
  for (size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    EXPECT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    log.results.push_back(std::move(results));
    log.digests.push_back(StateDigest(*engine));
  }
  return log;
}

/// Runs with durability + an armed CrashInjector until the crash fires, then
/// abandons the engine (a real crash would lose the process memory). Returns
/// how many rounds completed before the crash.
size_t RunUntilCrash(const std::vector<Round>& rounds, uint32_t threads,
                     const std::string& dir, CrashInjector* crash) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine(MakeOptions(threads));
  UpdateValidator validator(MakeValidatorConfig());
  Result<std::unique_ptr<DurabilityManager>> manager = DurabilityManager::Open(
      dir, MakeOptions(threads).checkpoint, engine.get(), &validator,
      /*rng=*/nullptr, crash);
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  for (size_t r = 0; r < rounds.size(); ++r) {
    Status s = (*manager)->LogBatch(static_cast<Timestamp>(r + 1),
                                    /*evaluate_after=*/true, rounds[r].objects,
                                    rounds[r].queries);
    if (!s.ok()) {
      EXPECT_TRUE(CrashInjector::IsCrash(s)) << s.ToString();
      return r;  // batch r never acknowledged
    }
    EXPECT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    EXPECT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    s = (*manager)->OnRoundComplete();
    if (!s.ok()) {
      EXPECT_TRUE(CrashInjector::IsCrash(s)) << s.ToString();
      return r + 1;
    }
  }
  return rounds.size();
}

/// Recovers `dir` into a fresh engine, checks every replayed round against
/// the baseline, finishes the remaining rounds (durably, so the recovered
/// process is itself crash-safe) and requires bit-identical results and
/// digests throughout.
void RecoverAndFinish(const std::vector<Round>& rounds, uint32_t threads,
                      const std::string& dir, const RunLog& base,
                      RecoveryReport* report_out = nullptr) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine(MakeOptions(threads));
  UpdateValidator validator(MakeValidatorConfig());
  std::vector<std::pair<Timestamp, ResultSet>> replayed;
  Result<RecoveryReport> report = RecoverEngine(
      dir, engine.get(), &validator, /*rng=*/nullptr,
      [&](Timestamp now, const ResultSet& results) {
        replayed.emplace_back(now, results);
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  if (report_out != nullptr) *report_out = *report;

  // Replayed rounds reproduce the baseline's results for those rounds.
  EXPECT_EQ(replayed.size(), report->rounds_replayed);
  for (const auto& [now, results] : replayed) {
    const size_t r = static_cast<size_t>(now) - 1;
    ASSERT_LT(r, base.results.size());
    EXPECT_EQ(results, base.results[r]) << "replayed round " << r;
  }
  // The recovered state is exactly the baseline's after the covered rounds.
  const size_t covered = static_cast<size_t>(report->next_seq);
  if (covered == 0) {
    EXPECT_EQ(StateDigest(*engine), std::string());
  } else {
    ASSERT_LE(covered, base.digests.size());
    EXPECT_EQ(StateDigest(*engine), base.digests[covered - 1]);
  }
  EXPECT_EQ(engine->StatsSnapshot().eval.evaluations, covered);
  InvariantAuditReport audit = engine->AuditInvariants();
  EXPECT_TRUE(audit.clean()) << audit.ToString();

  Result<std::unique_ptr<DurabilityManager>> manager = DurabilityManager::Open(
      dir, MakeOptions(threads).checkpoint, engine.get(), &validator,
      /*rng=*/nullptr, /*crash=*/nullptr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  for (size_t r = covered; r < rounds.size(); ++r) {
    ASSERT_TRUE((*manager)
                    ->LogBatch(static_cast<Timestamp>(r + 1), true,
                               rounds[r].objects, rounds[r].queries)
                    .ok());
    ASSERT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    ASSERT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    EXPECT_EQ(results, base.results[r]) << "post-recovery round " << r;
    EXPECT_EQ(StateDigest(*engine), base.digests[r])
        << "post-recovery round " << r;
    ASSERT_TRUE((*manager)->OnRoundComplete().ok());
  }
  EXPECT_EQ(StateDigest(*engine), base.digests.back());
}

struct CrashCase {
  CrashPoint point;
  /// Which occurrence fires. WAL points count per-batch appends (8 per run);
  /// snapshot points count checkpoints (one every 2 rounds).
  uint64_t occurrence;
};

TEST(CrashRecoveryTest, EveryCrashPointRecoversBitIdentically) {
  const CrashCase kMatrix[] = {
      {CrashPoint::kBeforeWalAppend, 5},
      {CrashPoint::kMidWalAppend, 5},
      {CrashPoint::kAfterWalAppend, 5},
      {CrashPoint::kBeforeSnapshotWrite, 2},
      {CrashPoint::kMidSnapshotWrite, 2},
      {CrashPoint::kTornSnapshotRename, 2},
      {CrashPoint::kAfterSnapshotWrite, 2},
      {CrashPoint::kAfterWalPrune, 2},
  };
  std::vector<Round> rounds = MakeRounds(0xC4A5, kRounds);
  for (uint32_t threads : {1u, 4u}) {
    RunLog base = RunBaseline(rounds, threads);
    ASSERT_EQ(base.results.size(), static_cast<size_t>(kRounds));
    for (const CrashCase& c : kMatrix) {
      SCOPED_TRACE(std::string(CrashPointName(c.point)) +
                   " threads=" + std::to_string(threads));
      ScopedTempDir dir("crash_recovery_" +
                        std::string(CrashPointName(c.point)) + "_t" +
                        std::to_string(threads));
      CrashInjector crash(c.point, c.occurrence);
      const size_t done = RunUntilCrash(rounds, threads, dir.path(), &crash);
      ASSERT_TRUE(crash.fired()) << "crash point never reached";
      ASSERT_LT(done, static_cast<size_t>(kRounds)) << "crash came too late";

      RecoveryReport report;
      RecoverAndFinish(rounds, threads, dir.path(), base, &report);
      switch (c.point) {
        case CrashPoint::kMidWalAppend:
          EXPECT_TRUE(report.wal_torn_tail);
          break;
        case CrashPoint::kTornSnapshotRename:
          // The torn snapshot was detected (kDataLoss), reported, and the
          // previous checkpoint used as the base instead.
          EXPECT_FALSE(report.data_loss.empty());
          EXPECT_FALSE(report.snapshot_path.empty());
          break;
        default:
          break;
      }
    }
  }
}

TEST(CrashRecoveryTest, WalAloneRecoversWhenFirstSnapshotNeverLanded) {
  std::vector<Round> rounds = MakeRounds(0xBEE, kRounds);
  RunLog base = RunBaseline(rounds, 1);
  ScopedTempDir dir("crash_recovery_wal_only");
  // The very first checkpoint dies mid-write: only an orphaned .tmp and the
  // WAL exist. Recovery must replay the entire log from an empty base.
  CrashInjector crash(CrashPoint::kMidSnapshotWrite, 1);
  const size_t done = RunUntilCrash(rounds, 1, dir.path(), &crash);
  ASSERT_TRUE(crash.fired());
  ASSERT_EQ(done, 2u);  // first checkpoint fires after round 2
  ASSERT_TRUE(ListSnapshots(dir.path())->empty());

  RecoveryReport report;
  RecoverAndFinish(rounds, 1, dir.path(), base, &report);
  EXPECT_TRUE(report.snapshot_path.empty());
  EXPECT_EQ(report.records_replayed, 2u);
}

TEST(CrashRecoveryTest, RecoveryIsPortableAcrossThreadCounts) {
  std::vector<Round> rounds = MakeRounds(0x7EAD, kRounds);
  RunLog base = RunBaseline(rounds, 1);
  ScopedTempDir dir("crash_recovery_cross_thread");
  CrashInjector crash(CrashPoint::kAfterWalAppend, 6);
  const size_t done = RunUntilCrash(rounds, /*threads=*/4, dir.path(), &crash);
  ASSERT_TRUE(crash.fired());
  ASSERT_LT(done, static_cast<size_t>(kRounds));
  // Crash at 4 threads, recover at 1: snapshots exclude thread counts from
  // the fingerprint, and results are bit-identical by the executors'
  // determinism contract.
  RecoverAndFinish(rounds, /*threads=*/1, dir.path(), base);
}

TEST(CrashRecoveryTest, DeltaTwoRoundBoundariesSurviveRecovery) {
  // Batches ingest every tick but rounds evaluate every second batch; the
  // WAL's evaluate_after bit must reproduce the same boundaries on replay,
  // including a crash in the middle of an evaluation window.
  std::vector<Round> rounds = MakeRounds(0xDE17A, kRounds);
  auto evaluate_after = [](size_t i) { return (i + 1) % 2 == 0; };

  std::unique_ptr<ScubaEngine> base_engine = MakeEngine(MakeOptions(1));
  std::vector<ResultSet> base_results;
  std::vector<std::string> base_digests;  // after every batch
  for (size_t r = 0; r < rounds.size(); ++r) {
    ASSERT_TRUE(
        base_engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    if (evaluate_after(r)) {
      ResultSet results;
      ASSERT_TRUE(
          base_engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
      base_results.push_back(std::move(results));
    }
    base_digests.push_back(StateDigest(*base_engine));
  }

  ScopedTempDir dir("crash_recovery_delta2");
  ScubaOptions opt = MakeOptions(1);
  opt.checkpoint.every_n_rounds = 1;  // still only fires at round boundaries
  std::unique_ptr<ScubaEngine> engine = MakeEngine(opt);
  CrashInjector crash(CrashPoint::kAfterWalAppend, 5);
  {
    Result<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(dir.path(), opt.checkpoint, engine.get(),
                                /*validator=*/nullptr, /*rng=*/nullptr,
                                &crash);
    ASSERT_TRUE(manager.ok());
    for (size_t r = 0; r < rounds.size(); ++r) {
      Status s = (*manager)->LogBatch(static_cast<Timestamp>(r + 1),
                                      evaluate_after(r), rounds[r].objects,
                                      rounds[r].queries);
      if (!s.ok()) {
        ASSERT_TRUE(CrashInjector::IsCrash(s));
        break;
      }
      ASSERT_TRUE(
          engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
      if (evaluate_after(r)) {
        ResultSet results;
        ASSERT_TRUE(
            engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
        ASSERT_TRUE((*manager)->OnRoundComplete().ok());
      }
    }
    ASSERT_TRUE(crash.fired());
  }

  // Batch 4 (an ingest-only, mid-window batch) is durable but was never
  // ingested; recovery must replay it without evaluating.
  std::unique_ptr<ScubaEngine> recovered = MakeEngine(opt);
  std::vector<ResultSet> replayed;
  Result<RecoveryReport> report =
      RecoverEngine(dir.path(), recovered.get(), /*validator=*/nullptr,
                    /*rng=*/nullptr, [&](Timestamp, const ResultSet& results) {
                      replayed.push_back(results);
                    });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->next_seq, 5u);
  EXPECT_EQ(StateDigest(*recovered), base_digests[4]);
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i], base_results[report->snapshot_rounds + i]);
  }
  // Finish the run: evaluation boundaries continue from the global index.
  size_t eval_index = 2;  // rounds evaluated in batches 0..4: after 1 and 3
  for (size_t r = 5; r < rounds.size(); ++r) {
    ASSERT_TRUE(
        recovered->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    if (evaluate_after(r)) {
      ResultSet results;
      ASSERT_TRUE(
          recovered->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
      EXPECT_EQ(results, base_results[eval_index]) << "evaluation "
                                                   << eval_index;
      ++eval_index;
    }
    EXPECT_EQ(StateDigest(*recovered), base_digests[r]) << "batch " << r;
  }
  EXPECT_EQ(eval_index, base_results.size());
}

TEST(CrashRecoveryTest, ValidatorTimestampFloorsSurviveWalReplay) {
  // With no snapshot at all, the validator's per-entity floors exist only by
  // virtue of NoteAdmitted during WAL replay; a stale tuple that the
  // pre-crash validator would have rejected must still be rejected.
  std::vector<Round> rounds = MakeRounds(0xF100D, 4);
  ScopedTempDir dir("crash_recovery_floors");
  ScubaOptions opt = MakeOptions(1);
  opt.checkpoint.every_n_rounds = 0;  // never checkpoint: WAL is everything
  std::unique_ptr<ScubaEngine> engine = MakeEngine(opt);
  UpdateValidator validator(MakeValidatorConfig());
  {
    Result<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(dir.path(), opt.checkpoint, engine.get(),
                                &validator, /*rng=*/nullptr, /*crash=*/nullptr);
    ASSERT_TRUE(manager.ok());
    for (size_t r = 0; r < rounds.size(); ++r) {
      ASSERT_TRUE((*manager)
                      ->LogBatch(static_cast<Timestamp>(r + 1), true,
                                 rounds[r].objects, rounds[r].queries)
                      .ok());
      ASSERT_TRUE(
          engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
      ResultSet results;
      ASSERT_TRUE(
          engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
      ASSERT_TRUE((*manager)->OnRoundComplete().ok());
    }
  }

  std::unique_ptr<ScubaEngine> recovered = MakeEngine(opt);
  UpdateValidator recovered_validator(MakeValidatorConfig());
  Result<RecoveryReport> report = RecoverEngine(
      dir.path(), recovered.get(), &recovered_validator, /*rng=*/nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records_replayed, 4u);

  // Screen at batch_time 0 so only per-entity history can reject: the floors
  // restored by replay must catch the regression, a fresh validator must not.
  ASSERT_FALSE(rounds[3].objects.empty());
  std::vector<LocationUpdate> stale{rounds[3].objects.front()};
  stale.front().time = 1;
  std::vector<QueryUpdate> no_queries;
  std::vector<LocationUpdate> stale_copy = stale;
  ASSERT_TRUE(
      recovered_validator.ScreenBatch(0, &stale, &no_queries).ok());
  EXPECT_TRUE(stale.empty()) << "replayed floor must reject the regression";
  EXPECT_EQ(
      recovered_validator.stats().Rejected(RejectReason::kTimeRegression), 1u);
  UpdateValidator fresh(MakeValidatorConfig());
  ASSERT_TRUE(fresh.ScreenBatch(0, &stale_copy, &no_queries).ok());
  EXPECT_EQ(stale_copy.size(), 1u) << "without history the tuple is clean";
}

}  // namespace
}  // namespace scuba
