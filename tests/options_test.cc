// Exhaustive validation-branch coverage for every options struct.

#include <gtest/gtest.h>

#include "baseline/grid_join_engine.h"
#include "baseline/query_index_engine.h"
#include "core/scuba_options.h"

namespace scuba {
namespace {

TEST(ScubaOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ScubaOptions{}.Validate().ok());
}

TEST(ScubaOptionsTest, ThetaBounds) {
  ScubaOptions opt;
  opt.theta_d = -0.1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.theta_s = -0.1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  // Zero thresholds are legal (degenerate clustering: all singletons).
  opt = ScubaOptions{};
  opt.theta_d = 0.0;
  opt.theta_s = 0.0;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(ScubaOptionsTest, GridAndRegion) {
  ScubaOptions opt;
  opt.grid_cells = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.region = Rect{100, 0, 0, 100};
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.region = Rect{0, 0, 0, 100};  // zero width
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(ScubaOptionsTest, DeltaAndPadding) {
  ScubaOptions opt;
  opt.delta = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.delta = -3;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.grid_sync_padding = -1.0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.grid_sync_padding = 0.0;  // paper-literal mode is legal
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(ScubaOptionsTest, SplittingFactor) {
  ScubaOptions opt;
  opt.enable_cluster_splitting = true;
  opt.split_radius_factor = 0.0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  // Factor is irrelevant while splitting is off.
  opt.enable_cluster_splitting = false;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(ScubaOptionsTest, JoinThreads) {
  ScubaOptions opt;
  opt.join_threads = 0;  // hardware concurrency
  EXPECT_TRUE(opt.Validate().ok());
  opt.join_threads = 8;
  EXPECT_TRUE(opt.Validate().ok());
  opt.join_threads = 1024;
  EXPECT_TRUE(opt.Validate().ok());
  opt.join_threads = 1025;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(ScubaOptionsTest, SheddingBranches) {
  ScubaOptions opt;
  opt.shedding.eta = -0.1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.shedding.eta = 1.1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  opt = ScubaOptions{};
  opt.shedding.mode = LoadSheddingMode::kAdaptive;
  opt.shedding.memory_budget_bytes = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  opt.shedding.memory_budget_bytes = 1024;
  opt.shedding.eta_step = 0.0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.shedding.eta_step = 1.5;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.shedding.eta_step = 0.25;
  opt.shedding.relax_fraction = 0.0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.shedding.relax_fraction = 1.0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.shedding.relax_fraction = 0.7;
  EXPECT_TRUE(opt.Validate().ok());

  // Fixed mode ignores adaptive-only fields.
  opt = ScubaOptions{};
  opt.shedding.mode = LoadSheddingMode::kFixed;
  opt.shedding.eta = 0.5;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(ScubaOptionsTest, BadUpdatePolicyNamesRoundTrip) {
  for (BadUpdatePolicy policy :
       {BadUpdatePolicy::kStrict, BadUpdatePolicy::kQuarantine,
        BadUpdatePolicy::kRepair}) {
    Result<BadUpdatePolicy> parsed =
        ParseBadUpdatePolicy(BadUpdatePolicyName(policy));
    ASSERT_TRUE(parsed.ok()) << BadUpdatePolicyName(policy);
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_TRUE(ParseBadUpdatePolicy("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseBadUpdatePolicy("drop").status().IsInvalidArgument());
  EXPECT_TRUE(ParseBadUpdatePolicy("Strict").status().IsInvalidArgument());
}

TEST(ScubaOptionsTest, HardeningFieldsAreValid) {
  ScubaOptions opt;
  opt.on_bad_update = BadUpdatePolicy::kQuarantine;
  opt.audit_every_n_rounds = 1;
  EXPECT_TRUE(opt.Validate().ok());
  opt.on_bad_update = BadUpdatePolicy::kRepair;
  opt.audit_every_n_rounds = 1000;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(GridJoinOptionsTest, Branches) {
  EXPECT_TRUE(GridJoinOptions{}.Validate().ok());
  GridJoinOptions opt;
  opt.grid_cells = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt = GridJoinOptions{};
  opt.region = Rect{5, 5, 4, 4};
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(QueryIndexOptionsTest, Branches) {
  EXPECT_TRUE(QueryIndexOptions{}.Validate().ok());
  QueryIndexOptions opt;
  opt.max_node_entries = 1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
  opt.max_node_entries = 2;
  EXPECT_TRUE(opt.Validate().ok());
}

}  // namespace
}  // namespace scuba
