#include "core/knn.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, NodeId dest = 1) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  return u;
}

struct KnnFixture {
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());

  void AddSingleton(ObjectId oid, Point p) {
    ClusterId cid = store.NextClusterId();
    MovingCluster c = MovingCluster::FromObject(cid, Obj(oid, p, oid % 3));
    ASSERT_TRUE(grid.Insert(cid, c.Bounds()).ok());
    ASSERT_TRUE(store.AddCluster(std::move(c)).ok());
  }
};

TEST(KnnTest, RejectsZeroK) {
  KnnFixture f;
  EXPECT_TRUE(ClusterKnn(f.store, f.grid, {0, 0}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(BruteForceKnn(f.store, {0, 0}, 0).status().IsInvalidArgument());
}

TEST(KnnTest, EmptyStoreYieldsEmpty) {
  KnnFixture f;
  Result<std::vector<KnnNeighbor>> r = ClusterKnn(f.store, f.grid, {0, 0}, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(KnnTest, FindsNearestInOrder) {
  KnnFixture f;
  f.AddSingleton(1, {100, 100});
  f.AddSingleton(2, {200, 100});
  f.AddSingleton(3, {5000, 5000});
  Result<std::vector<KnnNeighbor>> r = ClusterKnn(f.store, f.grid, {90, 100}, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].oid, 1u);
  EXPECT_NEAR((*r)[0].distance, 10.0, 1e-9);
  EXPECT_EQ((*r)[1].oid, 2u);
}

TEST(KnnTest, FewerObjectsThanK) {
  KnnFixture f;
  f.AddSingleton(1, {100, 100});
  Result<std::vector<KnnNeighbor>> r = ClusterKnn(f.store, f.grid, {0, 0}, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(KnnTest, QueriesAreNotNeighbors) {
  KnnFixture f;
  ClusterId cid = f.store.NextClusterId();
  QueryUpdate q;
  q.qid = 7;
  q.position = Point{10, 10};
  q.speed = 10.0;
  q.dest_node = 1;
  q.dest_position = Point{100, 100};
  q.range_width = 20;
  q.range_height = 20;
  MovingCluster c = MovingCluster::FromQuery(cid, q);
  ASSERT_TRUE(f.grid.Insert(cid, c.Bounds()).ok());
  ASSERT_TRUE(f.store.AddCluster(std::move(c)).ok());
  Result<std::vector<KnnNeighbor>> r = ClusterKnn(f.store, f.grid, {0, 0}, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(KnnTest, ShedMembersUseOptimisticDistance) {
  KnnFixture f;
  ClusterId cid = f.store.NextClusterId();
  MovingCluster c = MovingCluster::FromObject(cid, Obj(1, {100, 100}));
  c.ShedPositions(50.0);
  ASSERT_TRUE(f.grid.Insert(cid, c.Bounds()).ok());
  ASSERT_TRUE(f.store.AddCluster(std::move(c)).ok());
  Result<std::vector<KnnNeighbor>> r = BruteForceKnn(f.store, {200, 100}, 1);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  // Actual distance 100, minus the 50-unit nucleus: optimistic 50.
  EXPECT_NEAR((*r)[0].distance, 50.0, 1e-9);
}

// Property: cluster-pruned kNN matches the brute-force oracle on singleton
// clusters (exact positions).
class KnnEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnnEquivalenceTest, MatchesBruteForce) {
  Rng rng(GetParam());
  KnnFixture f;
  for (uint32_t i = 0; i < 300; ++i) {
    f.AddSingleton(i, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)});
  }
  for (int probe = 0; probe < 20; ++probe) {
    Point q{rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    size_t k = 1 + rng.NextBounded(10);
    Result<std::vector<KnnNeighbor>> fast = ClusterKnn(f.store, f.grid, q, k);
    Result<std::vector<KnnNeighbor>> slow = BruteForceKnn(f.store, q, k);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(*fast, *slow);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnEquivalenceTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace scuba
