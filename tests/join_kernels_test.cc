// Coverage for the batched SoA join kernels (core/join_kernels.h) and the
// bit-identity contract of the SoA-backed ClusterJoinExecutor.
//
// Each kernel is checked element for element against the scalar predicate it
// replaced, on adversarial inputs: points exactly on closed-rectangle edges,
// zero-extent query rectangles, all-bits and no-bits attribute masks, and
// every block length from 0 to 17 (covers empty, sub-vector-width and
// remainder-loop lengths). On top of that, a faithful reimplementation of the
// pre-SoA scalar executor (AoS views, per-member predicate loops, serial
// ascending cell scan) is run against the production executor: normalized
// per-round ResultSets and every semantic counter must match at several
// thread counts, and two engines differing only in join_threads must agree
// on per-round results and EngineStateHash.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/cluster_join.h"
#include "core/join_kernels.h"
#include "core/scuba_engine.h"
#include "persist/snapshot.h"

namespace scuba {
namespace {

// ---------------------------------------------------------------------------
// Kernel units vs scalar references.

/// SoA block builder for kernel inputs.
struct SlabBuilder {
  std::vector<double> xs, ys;
  std::vector<uint32_t> oids;
  std::vector<uint64_t> attrs;

  void Add(double x, double y, uint64_t a = 0) {
    oids.push_back(static_cast<uint32_t>(xs.size()));
    xs.push_back(x);
    ys.push_back(y);
    attrs.push_back(a);
  }
  ObjectSlabView View() const {
    return ObjectSlabView{xs.data(), ys.data(), oids.data(), attrs.data(),
                          static_cast<uint32_t>(xs.size())};
  }
};

std::vector<uint32_t> ScalarRectContains(const Rect& range,
                                         const SlabBuilder& b) {
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < b.xs.size(); ++i) {
    if (range.Contains(Point{b.xs[i], b.ys[i]})) expected.push_back(i);
  }
  return expected;
}

TEST(RectContainsPointsTest, PointsExactlyOnClosedEdgesAreInside) {
  const Rect range{0.0, 0.0, 10.0, 10.0};
  SlabBuilder b;
  b.Add(0.0, 0.0);     // corner: inside (closed)
  b.Add(10.0, 10.0);   // opposite corner
  b.Add(0.0, 5.0);     // left edge
  b.Add(10.0, 5.0);    // right edge
  b.Add(5.0, 0.0);     // bottom edge
  b.Add(5.0, 10.0);    // top edge
  b.Add(5.0, 5.0);     // interior
  b.Add(-1.0, 5.0);    // just left
  b.Add(11.0, 5.0);    // just right
  b.Add(5.0, -1.0);    // below
  b.Add(5.0, 11.0);    // above
  b.Add(-1.0, -1.0);   // outside both axes

  std::vector<uint32_t> out(b.xs.size());
  size_t n = RectContainsPoints(range, b.View(), out.data());
  out.resize(n);
  EXPECT_EQ(out, ScalarRectContains(range, b));
  EXPECT_EQ(n, 7u);
}

TEST(RectContainsPointsTest, ZeroExtentRangeIsASinglePoint) {
  // A query of width = height = 0 degenerates to the closed point rectangle
  // [c, c] x [c, c]: it must match exactly the objects sitting on c.
  const Rect range = Rect::Centered(Point{4.0, 4.0}, 0.0, 0.0);
  SlabBuilder b;
  b.Add(4.0, 4.0);
  b.Add(4.0, 4.0000001);
  b.Add(3.9999999, 4.0);
  b.Add(4.0, 4.0);

  std::vector<uint32_t> out(b.xs.size());
  size_t n = RectContainsPoints(range, b.View(), out.data());
  out.resize(n);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 3}));
}

TEST(RectContainsPointsTest, MatchesScalarOnAllBlockLengths0To17) {
  Rng rng(0xB10C);
  const Rect range{-3.0, -3.0, 3.0, 3.0};
  for (uint32_t len = 0; len <= 17; ++len) {
    SlabBuilder b;
    for (uint32_t i = 0; i < len; ++i) {
      // Integer-valued coordinates land many points exactly on the edges.
      b.Add(static_cast<double>(rng.NextInt(-4, 4)),
            static_cast<double>(rng.NextInt(-4, 4)));
    }
    std::vector<uint32_t> out(len + 1);
    size_t n = RectContainsPoints(range, b.View(), out.data());
    out.resize(n);
    EXPECT_EQ(out, ScalarRectContains(range, b)) << "len=" << len;
  }
}

TEST(FilterByAttrsTest, AllBitsAndNoBitsMasks) {
  const std::vector<uint64_t> attrs = {~0ull, 0ull, 0x5ull, ~0ull, 0xF0ull};
  {
    // required = all bits: only members carrying every attribute survive.
    std::vector<uint32_t> idx = {0, 1, 2, 3, 4};
    size_t n = FilterByAttrs(attrs.data(), ~0ull, idx.data(), idx.size());
    idx.resize(n);
    EXPECT_EQ(idx, (std::vector<uint32_t>{0, 3}));
  }
  {
    // required = 0: admits everything, order untouched (the executor skips
    // the call entirely on this mask, but the kernel must still be exact).
    std::vector<uint32_t> idx = {4, 2, 0};
    size_t n = FilterByAttrs(attrs.data(), 0ull, idx.data(), idx.size());
    idx.resize(n);
    EXPECT_EQ(idx, (std::vector<uint32_t>{4, 2, 0}));
  }
  {
    // Partial mask, compaction preserves relative order.
    std::vector<uint32_t> idx = {0, 1, 2, 3, 4};
    size_t n = FilterByAttrs(attrs.data(), 0x5ull, idx.data(), idx.size());
    idx.resize(n);
    EXPECT_EQ(idx, (std::vector<uint32_t>{0, 2, 3}));
  }
}

TEST(FilterByAttrsTest, MatchesScalarOnAllBlockLengths0To17) {
  Rng rng(0xA77);
  for (uint32_t len = 0; len <= 17; ++len) {
    std::vector<uint64_t> attrs;
    std::vector<uint32_t> idx;
    for (uint32_t i = 0; i < len; ++i) {
      attrs.push_back(rng.NextU64() & 0xFFull);
      idx.push_back(i);
    }
    const uint64_t required = rng.NextU64() & 0xFFull;
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < len; ++i) {
      if ((attrs[i] & required) == required) expected.push_back(i);
    }
    size_t n = FilterByAttrs(attrs.data(), required, idx.data(), idx.size());
    idx.resize(n);
    EXPECT_EQ(idx, expected) << "len=" << len << " required=" << required;
  }
}

TEST(RectCircleOverlapTest, MatchesIntersectsIncludingTangentAndZeroExtent) {
  // Integer-valued geometry makes the tangent cases exact: a rect whose
  // nearest edge is at distance == radius must be admitted (closed shapes),
  // one unit further must not.
  const Circle c{Point{0.0, 0.0}, 5.0};
  std::vector<Rect> rects = {
      {2.0, 2.0, 3.0, 3.0},     // fully inside
      {5.0, -1.0, 7.0, 1.0},    // touches at (5, 0): tangent, admitted
      {6.0, -1.0, 7.0, 1.0},    // nearest point at distance 6: out
      {3.0, 4.0, 9.0, 9.0},     // corner (3,4) at distance exactly 5: tangent
      {4.0, 4.0, 9.0, 9.0},     // corner (4,4) at distance sqrt(32) > 5: out
      {-9.0, -9.0, 9.0, 9.0},   // contains the whole disk
      {5.0, 5.0, 5.0, 5.0},     // zero-extent rect at distance sqrt(50): out
      {3.0, 4.0, 3.0, 4.0},     // zero-extent rect exactly on the circle
      {1.0, 1.0, -1.0, -1.0},   // empty rect (min > max): never intersects
  };
  QueryRectSlabView view;
  std::vector<double> min_xs, min_ys, max_xs, max_ys;
  for (const Rect& r : rects) {
    min_xs.push_back(r.min_x);
    min_ys.push_back(r.min_y);
    max_xs.push_back(r.max_x);
    max_ys.push_back(r.max_y);
  }
  view.min_xs = min_xs.data();
  view.min_ys = min_ys.data();
  view.max_xs = max_xs.data();
  view.max_ys = max_ys.data();
  view.count = static_cast<uint32_t>(rects.size());

  std::vector<uint8_t> mask(rects.size(), 0xCC);
  RectCircleOverlap(view, c, mask.data());
  for (size_t i = 0; i < rects.size(); ++i) {
    EXPECT_EQ(mask[i] != 0, Intersects(rects[i], c)) << "rect " << i;
  }
}

TEST(RectCircleOverlapTest, MatchesScalarOnAllBlockLengths0To17) {
  Rng rng(0xC1C);
  const Circle c{Point{0.0, 0.0}, 4.0};
  for (uint32_t len = 0; len <= 17; ++len) {
    std::vector<double> min_xs, min_ys, max_xs, max_ys;
    std::vector<Rect> rects;
    for (uint32_t i = 0; i < len; ++i) {
      Point center{static_cast<double>(rng.NextInt(-6, 6)),
                   static_cast<double>(rng.NextInt(-6, 6))};
      double w = static_cast<double>(rng.NextInt(0, 4));
      double h = static_cast<double>(rng.NextInt(0, 4));
      Rect r = Rect::Centered(center, w, h);
      rects.push_back(r);
      min_xs.push_back(r.min_x);
      min_ys.push_back(r.min_y);
      max_xs.push_back(r.max_x);
      max_ys.push_back(r.max_y);
    }
    QueryRectSlabView view{min_xs.data(), min_ys.data(), max_xs.data(),
                           max_ys.data(), len};
    std::vector<uint8_t> mask(len, 0xCC);
    RectCircleOverlap(view, c, mask.data());
    for (uint32_t i = 0; i < len; ++i) {
      EXPECT_EQ(mask[i] != 0, Intersects(rects[i], c))
          << "len=" << len << " rect " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Pre-SoA scalar reference executor: a faithful reimplementation of the AoS
// executor this PR replaced (per-member scalar loops, serial ascending cell
// scan, owner-cell dedup). The production executor must reproduce its
// normalized results and every semantic counter bit for bit.

using Counters = ClusterJoinExecutor::Counters;

struct RefObject {
  Point position;
  ObjectId oid;
  uint64_t attrs;
};
struct RefQuery {
  Point position;
  double width, height;
  QueryId qid;
  uint64_t required;
};
struct RefNucleusObject {
  ObjectId oid;
  uint64_t attrs;
};
struct RefNucleus {
  Point center;
  double radius = 0.0;
  std::vector<RefNucleusObject> objects;
  std::vector<RefQuery> queries;
};
struct RefView {
  Circle bounds;
  Circle coarse;
  std::vector<RefObject> objects;
  std::vector<RefQuery> queries;
  std::vector<RefNucleus> nuclei;
  std::vector<uint32_t> cells;
  bool mixed = false;
  bool has_objects = false;
  bool has_queries = false;
};

RefView BuildRefView(const MovingCluster& cluster, const GridIndex& grid) {
  RefView view;
  view.bounds = cluster.Bounds();
  view.coarse = cluster.JoinBounds();  // query_reach_aware default
  view.mixed = cluster.HasMixedKinds();
  view.has_objects = cluster.object_count() > 0;
  view.has_queries = cluster.query_count() > 0;
  const std::vector<uint32_t>* cells = grid.CellsOf(cluster.cid());
  EXPECT_NE(cells, nullptr);
  view.cells = *cells;
  std::sort(view.cells.begin(), view.cells.end());
  for (const ClusterMember& m : cluster.members()) {
    Point pos = cluster.MemberPosition(m);
    if (!m.shed) {
      if (m.kind == EntityKind::kObject) {
        view.objects.push_back(RefObject{pos, m.id, m.attrs});
      } else {
        view.queries.push_back(
            RefQuery{pos, m.range_width, m.range_height, m.id,
                     m.required_attrs});
      }
      continue;
    }
    RefNucleus* group = nullptr;
    for (RefNucleus& g : view.nuclei) {
      if (g.center == pos && g.radius == m.approx_radius) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      view.nuclei.push_back(RefNucleus{pos, m.approx_radius, {}, {}});
      group = &view.nuclei.back();
    }
    if (m.kind == EntityKind::kObject) {
      group->objects.push_back(RefNucleusObject{m.id, m.attrs});
    } else {
      group->queries.push_back(RefQuery{pos, m.range_width, m.range_height,
                                        m.id, m.required_attrs});
    }
  }
  return view;
}

void RefQueryAgainstObjects(const RefQuery& q, const RefView& objects_view,
                            Counters* counters, ResultSet* results) {
  Rect range = Rect::Centered(q.position, q.width, q.height);
  ++counters->bounds_checks;
  if (!Intersects(range, objects_view.bounds)) return;
  for (const RefObject& o : objects_view.objects) {
    ++counters->comparisons;
    if (range.Contains(o.position) &&
        (o.attrs & q.required) == q.required) {
      results->Add(q.qid, o.oid);
    }
  }
  for (const RefNucleus& nuc : objects_view.nuclei) {
    if (nuc.objects.empty()) continue;
    ++counters->comparisons;
    if (Intersects(range, Circle{nuc.center, nuc.radius})) {
      for (const RefNucleusObject& o : nuc.objects) {
        if ((o.attrs & q.required) == q.required) {
          results->Add(q.qid, o.oid);
        }
      }
    }
  }
}

void RefJoinObjectsToQueries(const RefView& objects_view,
                             const RefView& queries_view, Counters* counters,
                             ResultSet* results) {
  for (const RefQuery& q : queries_view.queries) {
    RefQueryAgainstObjects(q, objects_view, counters, results);
  }
  for (const RefNucleus& qnuc : queries_view.nuclei) {
    for (const RefQuery& q : qnuc.queries) {
      RefQueryAgainstObjects(q, objects_view, counters, results);
    }
  }
}

uint32_t RefMinCommonCell(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return a[i];
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return UINT32_MAX;
}

void ReferenceJoin(const ClusterStore& store, const GridIndex& grid,
                   Counters* counters, ResultSet* results) {
  results->Clear();
  std::vector<ClusterId> cids = store.SortedClusterIds();
  std::erase_if(cids, [&grid](ClusterId cid) { return !grid.Contains(cid); });
  std::vector<RefView> views;
  std::unordered_map<ClusterId, uint32_t> slot_of;
  views.reserve(cids.size());
  for (uint32_t slot = 0; slot < cids.size(); ++slot) {
    const MovingCluster* cluster = store.GetCluster(cids[slot]);
    ASSERT_NE(cluster, nullptr);
    views.push_back(BuildRefView(*cluster, grid));
    slot_of.emplace(cids[slot], slot);
  }
  const uint32_t cell_count = static_cast<uint32_t>(grid.CellCount());
  for (uint32_t cell = 0; cell < cell_count; ++cell) {
    const std::vector<uint32_t>& entries = grid.CellEntries(cell);
    for (size_t i = 0; i < entries.size(); ++i) {
      const RefView& lview = views[slot_of.at(entries[i])];
      if (lview.mixed && lview.cells.front() == cell) {
        ++counters->within_joins_single;
        RefJoinObjectsToQueries(lview, lview, counters, results);
      }
      for (size_t j = i + 1; j < entries.size(); ++j) {
        const RefView& rview = views[slot_of.at(entries[j])];
        if (RefMinCommonCell(lview.cells, rview.cells) != cell) continue;
        bool complementary = (lview.has_objects && rview.has_queries) ||
                             (lview.has_queries && rview.has_objects);
        if (!complementary) continue;
        ++counters->pairs_tested;
        if (!Overlaps(lview.coarse, rview.coarse)) continue;
        ++counters->pairs_overlapping;
        ++counters->within_joins_pair;
        RefJoinObjectsToQueries(lview, rview, counters, results);
        RefJoinObjectsToQueries(rview, lview, counters, results);
      }
    }
  }
  results->Normalize();
}

// Workload helpers (same shape as parallel_join_test).

LocationUpdate Obj(ObjectId oid, Point p, NodeId dest = 1,
                   uint64_t attrs = kAttrNone) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  u.attrs = attrs;
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 60, double h = 60,
                NodeId dest = 1, uint64_t required = 0) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  u.range_width = w;
  u.range_height = h;
  u.required_attrs = required;
  return u;
}

struct JoinFixture {
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());

  MovingCluster* Add(MovingCluster cluster) {
    ClusterId cid = cluster.cid();
    cluster.RecomputeTightBounds();
    EXPECT_TRUE(grid.Insert(cid, cluster.JoinBounds()).ok());
    EXPECT_TRUE(store.AddCluster(std::move(cluster)).ok());
    return store.GetCluster(cid);
  }
};

/// Seeded mixed workload with attribute filters, multi-cell clusters, mixed
/// kinds and shed nuclei — every code path the kernels feed.
void PopulateSeededWorkload(JoinFixture* f, uint64_t seed) {
  Rng rng(seed);
  uint32_t next_oid = 1, next_qid = 1;
  for (int i = 0; i < 80; ++i) {
    f->Add(MovingCluster::FromObject(
        f->store.NextClusterId(),
        Obj(next_oid++, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)},
            static_cast<NodeId>(i), rng.NextU64() & 0xFull)));
  }
  for (int i = 0; i < 60; ++i) {
    f->Add(MovingCluster::FromQuery(
        f->store.NextClusterId(),
        Qry(next_qid++, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)},
            rng.NextDouble(20, 400), rng.NextDouble(20, 400),
            static_cast<NodeId>(1000 + i),
            i % 3 == 0 ? (rng.NextU64() & 0x3ull) : 0)));
  }
  for (int i = 0; i < 20; ++i) {
    Point c{rng.NextDouble(500, 9500), rng.NextDouble(500, 9500)};
    MovingCluster cluster = MovingCluster::FromObject(
        f->store.NextClusterId(),
        Obj(next_oid++, c, static_cast<NodeId>(2000 + i)));
    for (int m = 0; m < 6; ++m) {
      cluster.AbsorbObject(Obj(next_oid++,
                               {c.x + rng.NextDouble(-350, 350),
                                c.y + rng.NextDouble(-350, 350)},
                               static_cast<NodeId>(2000 + i),
                               rng.NextU64() & 0xFull));
    }
    if (i % 3 == 0) {
      cluster.AbsorbQuery(Qry(next_qid++, {c.x + 30, c.y - 30}, 150, 150,
                              static_cast<NodeId>(2000 + i),
                              i % 6 == 0 ? 0x1ull : 0));
    }
    if (i % 5 == 0) {
      cluster.ShedPositions(80.0);
    }
    f->Add(std::move(cluster));
  }
  for (int i = 0; i < 12; ++i) {
    Point c{rng.NextDouble(500, 9500), rng.NextDouble(500, 9500)};
    MovingCluster cluster = MovingCluster::FromQuery(
        f->store.NextClusterId(),
        Qry(next_qid++, c, 120, 120, static_cast<NodeId>(3000 + i)));
    for (int m = 0; m < 4; ++m) {
      cluster.AbsorbQuery(Qry(next_qid++,
                              {c.x + rng.NextDouble(-250, 250),
                               c.y + rng.NextDouble(-250, 250)},
                              rng.NextDouble(40, 200), rng.NextDouble(40, 200),
                              static_cast<NodeId>(3000 + i)));
    }
    f->Add(std::move(cluster));
  }
}

bool CountersEqual(const Counters& a, const Counters& b) {
  return a.comparisons == b.comparisons && a.bounds_checks == b.bounds_checks &&
         a.pairs_tested == b.pairs_tested &&
         a.pairs_overlapping == b.pairs_overlapping &&
         a.within_joins_single == b.within_joins_single &&
         a.within_joins_pair == b.within_joins_pair;
}

class SoaBitIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoaBitIdentityTest, ExecutorMatchesScalarReferenceExactly) {
  JoinFixture f;
  PopulateSeededWorkload(&f, GetParam());

  Counters ref_counters;
  ResultSet expected;
  ReferenceJoin(f.store, f.grid, &ref_counters, &expected);
  EXPECT_GT(expected.size(), 0u) << "workload must produce matches";

  for (uint32_t threads : {1u, 4u}) {
    ClusterJoinExecutor executor(/*query_reach_aware=*/true, threads);
    ResultSet results;
    ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
    EXPECT_EQ(results, expected) << "threads=" << threads;
    EXPECT_TRUE(CountersEqual(executor.counters(), ref_counters))
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoaBitIdentityTest,
                         ::testing::Values(3, 17, 77, 4242));

TEST(SoaBitIdentityTest, RoundsAndStateHashMatchAcrossThreadCounts) {
  // End to end through ScubaEngine: identical ingests, several evaluation
  // rounds; per-round ResultSets, the cumulative comparison counter and the
  // final EngineStateHash must be independent of join_threads.
  struct RunOutput {
    std::vector<ResultSet> rounds;
    uint64_t comparisons = 0;
    uint64_t state_hash = 0;
  };
  auto run = [](uint32_t threads) {
    ScubaOptions opt;
    opt.join_threads = threads;
    std::unique_ptr<ScubaEngine> engine =
        std::move(ScubaEngine::Create(opt).value());
    Rng rng(777);
    RunOutput out;
    for (Timestamp now = 2; now <= 6; now += 2) {
      for (uint32_t i = 0; i < 150; ++i) {
        LocationUpdate u = Obj(i,
                               {rng.NextDouble(0, 10000),
                                rng.NextDouble(0, 10000)},
                               static_cast<NodeId>(i % 30),
                               rng.NextU64() & 0x7ull);
        u.time = now - 1;
        EXPECT_TRUE(engine->IngestObjectUpdate(u).ok());
      }
      for (uint32_t i = 0; i < 100; ++i) {
        QueryUpdate u = Qry(i,
                            {rng.NextDouble(0, 10000),
                             rng.NextDouble(0, 10000)},
                            rng.NextDouble(50, 300), rng.NextDouble(50, 300),
                            static_cast<NodeId>(30 + i % 30),
                            i % 4 == 0 ? 0x1ull : 0);
        u.time = now - 1;
        EXPECT_TRUE(engine->IngestQueryUpdate(u).ok());
      }
      ResultSet results;
      EXPECT_TRUE(engine->Evaluate(now, &results).ok());
      out.rounds.push_back(std::move(results));
    }
    out.comparisons = engine->StatsSnapshot().eval.comparisons;
    out.state_hash = EngineStateHash(*engine);
    return out;
  };

  RunOutput serial = run(1);
  size_t total = 0;
  for (const ResultSet& r : serial.rounds) total += r.size();
  EXPECT_GT(total, 0u);
  RunOutput parallel = run(4);
  ASSERT_EQ(parallel.rounds.size(), serial.rounds.size());
  for (size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(parallel.rounds[i], serial.rounds[i]) << "round=" << i;
  }
  EXPECT_EQ(parallel.comparisons, serial.comparisons);
  EXPECT_EQ(parallel.state_hash, serial.state_hash);
}

TEST(SoaBitIdentityTest, MemoryAccountingCoversTheSlabArena) {
  // After a round, EstimateMemoryUsage must reflect at least the SoA columns
  // the arena provably holds: per exact object two coordinate doubles, an id
  // and an attrs word; per exact query eight doubles (position, extent and
  // the hoisted rectangle) plus id and mask.
  JoinFixture f;
  PopulateSeededWorkload(&f, 5);
  size_t exact_objects = 0, exact_queries = 0;
  for (ClusterId cid : f.store.SortedClusterIds()) {
    for (const ClusterMember& m : f.store.GetCluster(cid)->members()) {
      if (m.shed) continue;
      (m.kind == EntityKind::kObject ? exact_objects : exact_queries) += 1;
    }
  }
  ASSERT_GT(exact_objects, 0u);
  ASSERT_GT(exact_queries, 0u);

  ClusterJoinExecutor executor(true, 2);
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  const size_t arena_lower_bound =
      exact_objects * (2 * sizeof(double) + sizeof(uint32_t) +
                       sizeof(uint64_t)) +
      exact_queries * (8 * sizeof(double) + sizeof(uint32_t) +
                       sizeof(uint64_t));
  EXPECT_GE(executor.EstimateMemoryUsage(), arena_lower_bound);
}

}  // namespace
}  // namespace scuba
