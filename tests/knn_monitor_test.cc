#include "core/knn_monitor.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{9000, 9000};
  return u;
}

struct MonitorFixture {
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());

  void AddSingleton(ObjectId oid, Point p) {
    ClusterId cid = store.NextClusterId();
    MovingCluster c = MovingCluster::FromObject(cid, Obj(oid, p));
    ASSERT_TRUE(grid.Insert(cid, c.Bounds()).ok());
    ASSERT_TRUE(store.AddCluster(std::move(c)).ok());
  }
};

TEST(KnnMonitorTest, UpsertValidatesK) {
  KnnMonitor monitor;
  EXPECT_TRUE(monitor.Upsert(KnnQuery{1, {0, 0}, 0}).IsInvalidArgument());
  EXPECT_TRUE(monitor.Upsert(KnnQuery{1, {0, 0}, 3}).ok());
  EXPECT_EQ(monitor.QueryCount(), 1u);
}

TEST(KnnMonitorTest, UpsertRepositions) {
  MonitorFixture f;
  f.AddSingleton(1, {100, 100});
  f.AddSingleton(2, {9000, 9000});
  KnnMonitor monitor;
  ASSERT_TRUE(monitor.Upsert(KnnQuery{7, {90, 100}, 1}).ok());
  Result<std::vector<KnnAnswer>> a = monitor.EvaluateAll(f.store, f.grid);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ((*a)[0].neighbors[0].oid, 1u);
  // Re-position near the other object.
  ASSERT_TRUE(monitor.Upsert(KnnQuery{7, {8990, 9000}, 1}).ok());
  EXPECT_EQ(monitor.QueryCount(), 1u);
  a = monitor.EvaluateAll(f.store, f.grid);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0].neighbors[0].oid, 2u);
}

TEST(KnnMonitorTest, RemoveWorksAndReportsMissing) {
  KnnMonitor monitor;
  ASSERT_TRUE(monitor.Upsert(KnnQuery{1, {0, 0}, 1}).ok());
  EXPECT_TRUE(monitor.Remove(1).ok());
  EXPECT_TRUE(monitor.Remove(1).IsNotFound());
  EXPECT_EQ(monitor.QueryCount(), 0u);
}

TEST(KnnMonitorTest, EvaluateAllOrdersByQid) {
  MonitorFixture f;
  for (uint32_t i = 0; i < 10; ++i) {
    f.AddSingleton(i, {i * 500.0 + 100.0, 100});
  }
  KnnMonitor monitor;
  ASSERT_TRUE(monitor.Upsert(KnnQuery{9, {100, 100}, 2}).ok());
  ASSERT_TRUE(monitor.Upsert(KnnQuery{2, {4600, 100}, 2}).ok());
  ASSERT_TRUE(monitor.Upsert(KnnQuery{5, {2100, 100}, 2}).ok());
  Result<std::vector<KnnAnswer>> answers = monitor.EvaluateAll(f.store, f.grid);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 3u);
  EXPECT_EQ((*answers)[0].qid, 2u);
  EXPECT_EQ((*answers)[1].qid, 5u);
  EXPECT_EQ((*answers)[2].qid, 9u);
  // Each answer holds the 2 nearest objects to its focal point.
  EXPECT_EQ((*answers)[0].neighbors[0].oid, 9u);  // at (4600, 100)
  EXPECT_EQ((*answers)[1].neighbors[0].oid, 4u);  // at (2100, 100)
  EXPECT_EQ((*answers)[2].neighbors[0].oid, 0u);  // at (100, 100)
}

TEST(KnnMonitorTest, EmptyStoreYieldsEmptyNeighborLists) {
  MonitorFixture f;
  KnnMonitor monitor;
  ASSERT_TRUE(monitor.Upsert(KnnQuery{1, {0, 0}, 5}).ok());
  Result<std::vector<KnnAnswer>> answers = monitor.EvaluateAll(f.store, f.grid);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_TRUE((*answers)[0].neighbors.empty());
}

TEST(KnnMonitorTest, MemoryGrowsWithQueries) {
  KnnMonitor monitor;
  size_t before = monitor.EstimateMemoryUsage();
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(monitor.Upsert(KnnQuery{i, {1.0 * i, 0}, 3}).ok());
  }
  EXPECT_GT(monitor.EstimateMemoryUsage(), before);
}

}  // namespace
}  // namespace scuba
