#include "cluster/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, NodeId dest = 1) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{1000, 1000};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, NodeId dest = 1) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{1000, 1000};
  u.range_width = 20;
  u.range_height = 20;
  return u;
}

/// Two well-separated blobs heading to two destinations.
void TwoBlobs(std::vector<LocationUpdate>* objs,
              std::vector<QueryUpdate>* qrys) {
  Rng rng(3);
  for (uint32_t i = 0; i < 30; ++i) {
    objs->push_back(Obj(i, {rng.NextDouble(0, 10), rng.NextDouble(0, 10)}, 1));
  }
  for (uint32_t i = 30; i < 60; ++i) {
    objs->push_back(
        Obj(i, {900 + rng.NextDouble(0, 10), 900 + rng.NextDouble(0, 10)}, 2));
  }
  for (uint32_t i = 0; i < 10; ++i) {
    qrys->push_back(Qry(i, {rng.NextDouble(0, 10), rng.NextDouble(0, 10)}, 1));
  }
}

TEST(KMeansTest, RejectsEmptyInput) {
  KMeansOptions opt;
  EXPECT_TRUE(KMeansCluster({}, {}, opt).status().IsInvalidArgument());
}

TEST(KMeansTest, RejectsZeroIterations) {
  std::vector<LocationUpdate> objs{Obj(0, {0, 0})};
  KMeansOptions opt;
  opt.iterations = 0;
  EXPECT_TRUE(KMeansCluster(objs, {}, opt).status().IsInvalidArgument());
}

TEST(KMeansTest, KDefaultsToUniqueDestinations) {
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  TwoBlobs(&objs, &qrys);
  KMeansOptions opt;
  Result<KMeansResult> r = KMeansCluster(objs, qrys, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->k, 2u);  // destinations 1 and 2
  EXPECT_EQ(r->assignment.size(), objs.size() + qrys.size());
}

TEST(KMeansTest, SeparatedBlobsAreSeparated) {
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  TwoBlobs(&objs, &qrys);
  KMeansOptions opt;
  opt.iterations = 5;
  Result<KMeansResult> r = KMeansCluster(objs, qrys, opt);
  ASSERT_TRUE(r.ok());
  // All members of blob 1 (objects 0-29 + all queries) share a cluster,
  // all of blob 2 (objects 30-59) share the other.
  uint32_t blob1 = r->assignment[0];
  for (size_t i = 0; i < 30; ++i) EXPECT_EQ(r->assignment[i], blob1);
  uint32_t blob2 = r->assignment[30];
  EXPECT_NE(blob1, blob2);
  for (size_t i = 30; i < 60; ++i) EXPECT_EQ(r->assignment[i], blob2);
  for (size_t i = 60; i < r->assignment.size(); ++i) {
    EXPECT_EQ(r->assignment[i], blob1);
  }
}

TEST(KMeansTest, ExplicitKIsRespectedAndClamped) {
  std::vector<LocationUpdate> objs{Obj(0, {0, 0}), Obj(1, {10, 10}),
                                   Obj(2, {20, 20})};
  KMeansOptions opt;
  opt.k = 2;
  Result<KMeansResult> r = KMeansCluster(objs, {}, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->k, 2u);
  opt.k = 100;  // more clusters than points: clamped
  r = KMeansCluster(objs, {}, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->k, 3u);
}

TEST(KMeansTest, MoreIterationsNeverWorsenInertia) {
  Rng rng(17);
  std::vector<LocationUpdate> objs;
  for (uint32_t i = 0; i < 200; ++i) {
    objs.push_back(Obj(i, {rng.NextDouble(0, 1000), rng.NextDouble(0, 1000)},
                       i % 7));
  }
  double prev = 1e300;
  for (uint32_t iters : {1u, 2u, 4u, 8u, 16u}) {
    KMeansOptions opt;
    opt.iterations = iters;
    Result<KMeansResult> r = KMeansCluster(objs, {}, opt);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->inertia, prev + 1e-6);
    prev = r->inertia;
  }
}

TEST(KMeansTest, DeterministicAcrossRuns) {
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  TwoBlobs(&objs, &qrys);
  KMeansOptions opt;
  Result<KMeansResult> a = KMeansCluster(objs, qrys, opt);
  Result<KMeansResult> b = KMeansCluster(objs, qrys, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, PopulateFromKMeansBuildsConsistentStore) {
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  TwoBlobs(&objs, &qrys);
  KMeansOptions opt;
  Result<KMeansResult> r = KMeansCluster(objs, qrys, opt);
  ASSERT_TRUE(r.ok());

  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 1000, 1000}, 50).value());
  ASSERT_TRUE(PopulateFromKMeans(objs, qrys, *r, &store, &grid).ok());
  EXPECT_EQ(store.ClusterCount(), 2u);
  EXPECT_TRUE(store.ValidateConsistency().ok());
  EXPECT_EQ(grid.size(), 2u);
  // Every input entity is homed.
  for (const LocationUpdate& u : objs) {
    EXPECT_NE(store.HomeOf({EntityKind::kObject, u.oid}), kInvalidClusterId);
  }
  for (const QueryUpdate& u : qrys) {
    EXPECT_NE(store.HomeOf({EntityKind::kQuery, u.qid}), kInvalidClusterId);
  }
}

TEST(KMeansTest, PopulateRequiresEmptyStore) {
  std::vector<LocationUpdate> objs{Obj(0, {0, 0})};
  KMeansOptions opt;
  Result<KMeansResult> r = KMeansCluster(objs, {}, opt);
  ASSERT_TRUE(r.ok());
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 1000, 1000}, 50).value());
  ASSERT_TRUE(PopulateFromKMeans(objs, {}, *r, &store, &grid).ok());
  EXPECT_TRUE(
      PopulateFromKMeans(objs, {}, *r, &store, &grid).IsFailedPrecondition());
}

TEST(KMeansTest, PopulateValidatesSizes) {
  std::vector<LocationUpdate> objs{Obj(0, {0, 0})};
  KMeansResult r;
  r.k = 1;
  r.assignment = {0, 0};  // wrong size
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 1000, 1000}, 50).value());
  EXPECT_TRUE(
      PopulateFromKMeans(objs, {}, r, &store, &grid).IsInvalidArgument());
  EXPECT_TRUE(PopulateFromKMeans(objs, {}, r, nullptr, &grid)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace scuba
