#include "network/shortest_path.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "network/grid_city.h"
#include "network/network_builder.h"

namespace scuba {
namespace {

/// A small asymmetric test graph:
///   0 --10--> 1 --10--> 2
///   0 ------25--------> 2      (direct but slower by distance)
///   2 --5---> 3,  1 has no edge to 3
RoadNetwork DiamondNetwork() {
  NetworkBuilder b;
  b.AddNode({0, 0});     // 0
  b.AddNode({10, 0});    // 1
  b.AddNode({20, 0});    // 2
  b.AddNode({20, 5});    // 3
  b.AddBidirectionalEdge(0, 1);
  b.AddBidirectionalEdge(1, 2);
  b.AddBidirectionalEdge(2, 3);
  Result<RoadNetwork> net = b.Build();
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

TEST(ShortestPathTest, TrivialSelfRoute) {
  RoadNetwork net = DiamondNetwork();
  Result<Route> r = ShortestPath(net, 2, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, std::vector<NodeId>{2});
  EXPECT_EQ(r->cost, 0.0);
}

TEST(ShortestPathTest, SimpleChain) {
  RoadNetwork net = DiamondNetwork();
  Result<Route> r = ShortestPath(net, 0, 3, RouteCost::kDistance);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(r->cost, 25.0);
}

TEST(ShortestPathTest, RejectsOutOfRange) {
  RoadNetwork net = DiamondNetwork();
  EXPECT_TRUE(ShortestPath(net, 0, 99).status().IsInvalidArgument());
  EXPECT_TRUE(ShortestPath(net, 99, 0).status().IsInvalidArgument());
}

TEST(ShortestPathTest, UnreachableIsNotFound) {
  NetworkBuilder b;
  b.AddNode({0, 0});
  b.AddNode({10, 0});
  b.AddNode({100, 0});
  b.AddNode({110, 0});
  b.AddBidirectionalEdge(0, 1);
  b.AddBidirectionalEdge(2, 3);  // disconnected component
  Result<RoadNetwork> net = b.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(ShortestPath(*net, 0, 3).status().IsNotFound());
}

TEST(ShortestPathTest, TravelTimePrefersFastRoads) {
  // Two routes 0->3: top via highway (longer but fast), bottom via local.
  NetworkBuilder b;
  b.AddNode({0, 0});     // 0
  b.AddNode({50, 40});   // 1 (top)
  b.AddNode({100, 0});   // 2 (end)
  b.AddNode({50, -5});   // 3 (bottom)
  b.AddBidirectionalEdge(0, 1, RoadClass::kHighway);
  b.AddBidirectionalEdge(1, 2, RoadClass::kHighway);
  b.AddBidirectionalEdge(0, 3, RoadClass::kLocal);
  b.AddBidirectionalEdge(3, 2, RoadClass::kLocal);
  Result<RoadNetwork> net = b.Build();
  ASSERT_TRUE(net.ok());

  Result<Route> by_time = ShortestPath(*net, 0, 2, RouteCost::kTravelTime);
  ASSERT_TRUE(by_time.ok());
  EXPECT_EQ(by_time->nodes, (std::vector<NodeId>{0, 1, 2}));

  Result<Route> by_dist = ShortestPath(*net, 0, 2, RouteCost::kDistance);
  ASSERT_TRUE(by_dist.ok());
  EXPECT_EQ(by_dist->nodes, (std::vector<NodeId>{0, 3, 2}));
}

TEST(ShortestPathTest, CostsMatchPointQueries) {
  RoadNetwork city = DefaultBenchmarkCity();
  Result<std::vector<double>> costs =
      ShortestPathCosts(city, 0, RouteCost::kDistance);
  ASSERT_TRUE(costs.ok());
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    NodeId to = static_cast<NodeId>(
        rng.NextInt(0, static_cast<int64_t>(city.NodeCount()) - 1));
    Result<Route> r = ShortestPath(city, 0, to, RouteCost::kDistance);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->cost, (*costs)[to], 1e-9);
  }
}

TEST(ShortestPathTest, CostsRejectsBadSource) {
  RoadNetwork net = DiamondNetwork();
  EXPECT_TRUE(ShortestPathCosts(net, 1234).status().IsInvalidArgument());
}

// Property: every returned route is a valid edge path whose summed cost
// equals the reported cost, and no single edge beats the shortest cost.
class RouteValidityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RouteValidityTest, RoutesAreValidEdgePaths) {
  GridCityOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  opt.seed = GetParam();
  Result<RoadNetwork> rnet = GenerateGridCity(opt);
  ASSERT_TRUE(rnet.ok());
  const RoadNetwork& net = *rnet;

  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 50; ++i) {
    NodeId from = static_cast<NodeId>(
        rng.NextInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    NodeId to = static_cast<NodeId>(
        rng.NextInt(0, static_cast<int64_t>(net.NodeCount()) - 1));
    Result<Route> r = ShortestPath(net, from, to, RouteCost::kDistance);
    ASSERT_TRUE(r.ok());
    ASSERT_GE(r->nodes.size(), 1u);
    EXPECT_EQ(r->nodes.front(), from);
    EXPECT_EQ(r->nodes.back(), to);
    double total = 0.0;
    for (size_t h = 0; h + 1 < r->nodes.size(); ++h) {
      EdgeId eid = net.FindEdge(r->nodes[h], r->nodes[h + 1]);
      ASSERT_NE(eid, kInvalidEdgeId) << "route hop is not an edge";
      total += net.edge(eid).length;
    }
    EXPECT_NEAR(total, r->cost, 1e-9);
    // Lower bound: cost can never beat the straight-line distance.
    EXPECT_GE(r->cost + 1e-9,
              Distance(net.node(from).position, net.node(to).position));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteValidityTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace scuba
