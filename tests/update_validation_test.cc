// Failure injection: malformed updates must be rejected with InvalidArgument
// by validation and by every engine's ingest path, leaving state untouched.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/grid_join_engine.h"
#include "baseline/naive_join_engine.h"
#include "core/scuba_engine.h"
#include "gen/update.h"

namespace scuba {
namespace {

LocationUpdate GoodObj() {
  LocationUpdate u;
  u.oid = 1;
  u.position = Point{100, 100};
  u.time = 1;
  u.speed = 10.0;
  u.dest_node = 3;
  u.dest_position = Point{500, 500};
  return u;
}

QueryUpdate GoodQry() {
  QueryUpdate u;
  u.qid = 1;
  u.position = Point{100, 100};
  u.time = 1;
  u.speed = 10.0;
  u.dest_node = 3;
  u.dest_position = Point{500, 500};
  u.range_width = 40;
  u.range_height = 40;
  return u;
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(UpdateValidationTest, GoodUpdatesPass) {
  EXPECT_TRUE(ValidateUpdate(GoodObj()).ok());
  EXPECT_TRUE(ValidateUpdate(GoodQry()).ok());
}

TEST(UpdateValidationTest, RejectsNonFinitePosition) {
  LocationUpdate u = GoodObj();
  u.position.x = kNan;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
  u = GoodObj();
  u.position.y = kInf;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
}

TEST(UpdateValidationTest, RejectsBadSpeed) {
  LocationUpdate u = GoodObj();
  u.speed = -1.0;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
  u.speed = kNan;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
  u.speed = 0.0;  // stationary is legal
  EXPECT_TRUE(ValidateUpdate(u).ok());
}

TEST(UpdateValidationTest, RejectsNegativeTime) {
  LocationUpdate u = GoodObj();
  u.time = -5;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
}

TEST(UpdateValidationTest, RejectsMissingDestination) {
  LocationUpdate u = GoodObj();
  u.dest_node = kInvalidNodeId;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
  u = GoodObj();
  u.dest_position.x = kInf;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
}

TEST(UpdateValidationTest, RejectsBadQueryRange) {
  QueryUpdate u = GoodQry();
  u.range_width = 0.0;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
  u = GoodQry();
  u.range_height = -10.0;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
  u = GoodQry();
  u.range_width = kNan;
  EXPECT_TRUE(ValidateUpdate(u).IsInvalidArgument());
}

TEST(UpdateValidationTest, ScubaEngineRejectsAndStaysClean) {
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create({});
  ASSERT_TRUE(engine.ok());
  LocationUpdate bad = GoodObj();
  bad.position.x = kNan;
  EXPECT_TRUE((*engine)->IngestObjectUpdate(bad).IsInvalidArgument());
  QueryUpdate badq = GoodQry();
  badq.range_width = -1;
  EXPECT_TRUE((*engine)->IngestQueryUpdate(badq).IsInvalidArgument());
  EXPECT_EQ((*engine)->ClusterCount(), 0u);
  EXPECT_TRUE((*engine)->store().ValidateConsistency().ok());
  // Good updates still work afterwards.
  EXPECT_TRUE((*engine)->IngestObjectUpdate(GoodObj()).ok());
  ResultSet results;
  EXPECT_TRUE((*engine)->Evaluate(2, &results).ok());
}

TEST(UpdateValidationTest, BaselinesRejectToo) {
  NaiveJoinEngine naive;
  LocationUpdate bad = GoodObj();
  bad.speed = kInf;
  EXPECT_TRUE(naive.IngestObjectUpdate(bad).IsInvalidArgument());
  EXPECT_EQ(naive.ObjectCount(), 0u);

  Result<std::unique_ptr<GridJoinEngine>> grid = GridJoinEngine::Create({});
  ASSERT_TRUE(grid.ok());
  QueryUpdate badq = GoodQry();
  badq.position.y = kNan;
  EXPECT_TRUE((*grid)->IngestQueryUpdate(badq).IsInvalidArgument());
  EXPECT_EQ((*grid)->QueryCount(), 0u);
}

}  // namespace
}  // namespace scuba
