#include "cluster/cluster_store.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  u.range_width = 20;
  u.range_height = 20;
  return u;
}

TEST(ClusterStoreTest, NextClusterIdIsMonotonic) {
  ClusterStore store;
  EXPECT_EQ(store.NextClusterId(), 0u);
  EXPECT_EQ(store.NextClusterId(), 1u);
  EXPECT_EQ(store.NextClusterId(), 2u);
}

TEST(ClusterStoreTest, AddAndGetCluster) {
  ClusterStore store;
  ClusterId cid = store.NextClusterId();
  ASSERT_TRUE(store.AddCluster(MovingCluster::FromObject(cid, Obj(7, {1, 2}))).ok());
  EXPECT_EQ(store.ClusterCount(), 1u);
  ASSERT_NE(store.GetCluster(cid), nullptr);
  EXPECT_EQ(store.GetCluster(cid)->cid(), cid);
  EXPECT_EQ(store.GetCluster(999), nullptr);
  // Home entry created for the founding member.
  EXPECT_EQ(store.HomeOf({EntityKind::kObject, 7}), cid);
  EXPECT_EQ(store.HomeCount(), 1u);
}

TEST(ClusterStoreTest, AddDuplicateCidFails) {
  ClusterStore store;
  ASSERT_TRUE(store.AddCluster(MovingCluster::FromObject(0, Obj(1, {0, 0}))).ok());
  EXPECT_TRUE(store.AddCluster(MovingCluster::FromObject(0, Obj(2, {0, 0})))
                  .IsAlreadyExists());
}

TEST(ClusterStoreTest, AddClusterWithHomedMemberFails) {
  ClusterStore store;
  ASSERT_TRUE(store.AddCluster(MovingCluster::FromObject(0, Obj(1, {0, 0}))).ok());
  EXPECT_TRUE(store.AddCluster(MovingCluster::FromObject(1, Obj(1, {5, 5})))
                  .IsAlreadyExists());
  EXPECT_EQ(store.ClusterCount(), 1u);
}

TEST(ClusterStoreTest, RemoveClusterClearsHomes) {
  ClusterStore store;
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbQuery(Qry(2, {1, 1}));
  ASSERT_TRUE(store.AddCluster(std::move(c)).ok());
  EXPECT_EQ(store.HomeCount(), 2u);
  ASSERT_TRUE(store.RemoveCluster(0).ok());
  EXPECT_EQ(store.ClusterCount(), 0u);
  EXPECT_EQ(store.HomeCount(), 0u);
  EXPECT_EQ(store.HomeOf({EntityKind::kObject, 1}), kInvalidClusterId);
  EXPECT_TRUE(store.RemoveCluster(0).IsNotFound());
}

TEST(ClusterStoreTest, SetAndClearHome) {
  ClusterStore store;
  ASSERT_TRUE(store.AddCluster(MovingCluster::FromObject(0, Obj(1, {0, 0}))).ok());
  EntityRef ref{EntityKind::kQuery, 42};
  EXPECT_TRUE(store.SetHome(ref, 99).IsNotFound());  // no such cluster
  ASSERT_TRUE(store.SetHome(ref, 0).ok());
  EXPECT_EQ(store.HomeOf(ref), 0u);
  EXPECT_TRUE(store.SetHome(ref, 0).IsAlreadyExists());
  ASSERT_TRUE(store.ClearHome(ref).ok());
  EXPECT_EQ(store.HomeOf(ref), kInvalidClusterId);
  EXPECT_TRUE(store.ClearHome(ref).IsNotFound());
}

TEST(ClusterStoreTest, ObjectAndQueryKindsDistinctInHome) {
  ClusterStore store;
  ASSERT_TRUE(store.AddCluster(MovingCluster::FromObject(0, Obj(5, {0, 0}))).ok());
  // Query with the same numeric id is a different entity.
  EXPECT_EQ(store.HomeOf({EntityKind::kQuery, 5}), kInvalidClusterId);
  EXPECT_EQ(store.HomeOf({EntityKind::kObject, 5}), 0u);
}

TEST(ClusterStoreTest, AttrTables) {
  ClusterStore store;
  EXPECT_TRUE(store.ObjectAttrs(1).status().IsNotFound());
  store.UpsertObjectAttrs(1, kAttrChild);
  store.UpsertQueryAttrs(2, kAttrBus | kAttrEmergency);
  ASSERT_TRUE(store.ObjectAttrs(1).ok());
  EXPECT_EQ(*store.ObjectAttrs(1), kAttrChild);
  EXPECT_EQ(*store.QueryAttrs(2), kAttrBus | kAttrEmergency);
  store.UpsertObjectAttrs(1, kAttrTruck);  // overwrite
  EXPECT_EQ(*store.ObjectAttrs(1), kAttrTruck);
  EXPECT_EQ(store.ObjectsTableSize(), 1u);
  EXPECT_EQ(store.QueriesTableSize(), 1u);
}

TEST(ClusterStoreTest, ValidateConsistencyDetectsOrphanHome) {
  ClusterStore store;
  ASSERT_TRUE(store.AddCluster(MovingCluster::FromObject(0, Obj(1, {0, 0}))).ok());
  EXPECT_TRUE(store.ValidateConsistency().ok());
  // Inject an orphan home entry.
  ASSERT_TRUE(store.SetHome({EntityKind::kObject, 99}, 0).ok());
  EXPECT_TRUE(store.ValidateConsistency().IsInternal());
}

TEST(ClusterStoreTest, ValidateConsistencyDetectsEmptyCluster) {
  ClusterStore store;
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  ASSERT_TRUE(store.AddCluster(std::move(c)).ok());
  ASSERT_TRUE(store.GetCluster(0)->RemoveMember({EntityKind::kObject, 1}).ok());
  ASSERT_TRUE(store.ClearHome({EntityKind::kObject, 1}).ok());
  EXPECT_TRUE(store.ValidateConsistency().IsInternal());
}

TEST(ClusterStoreTest, ClearResetsEverything) {
  ClusterStore store;
  ASSERT_TRUE(store.AddCluster(MovingCluster::FromObject(0, Obj(1, {0, 0}))).ok());
  store.UpsertObjectAttrs(1, kAttrChild);
  store.Clear();
  EXPECT_EQ(store.ClusterCount(), 0u);
  EXPECT_EQ(store.HomeCount(), 0u);
  EXPECT_EQ(store.ObjectsTableSize(), 0u);
  EXPECT_TRUE(store.ValidateConsistency().ok());
}

TEST(ClusterStoreTest, MemoryUsageGrowsWithClusters) {
  ClusterStore store;
  size_t empty = store.EstimateMemoryUsage();
  for (uint32_t i = 0; i < 50; ++i) {
    ClusterId cid = store.NextClusterId();
    ASSERT_TRUE(
        store.AddCluster(MovingCluster::FromObject(cid, Obj(i, {1.0 * i, 0})))
            .ok());
  }
  EXPECT_GT(store.EstimateMemoryUsage(), empty);
}

}  // namespace
}  // namespace scuba
