// Determinism and owner-cell dedup coverage for the sharded parallel cluster
// join: every thread count must produce bit-identical normalized results and
// identical merged counters, and multi-cell cluster (pairs) must be joined
// exactly once — in the lowest co-resident cell — with no shared seen-set.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/cluster_join.h"
#include "core/scuba_engine.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, NodeId dest = 1) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 60, double h = 60,
                NodeId dest = 1) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  u.range_width = w;
  u.range_height = h;
  return u;
}

struct JoinFixture {
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());

  MovingCluster* Add(MovingCluster cluster) {
    ClusterId cid = cluster.cid();
    cluster.RecomputeTightBounds();
    EXPECT_TRUE(grid.Insert(cid, cluster.JoinBounds()).ok());
    EXPECT_TRUE(store.AddCluster(std::move(cluster)).ok());
    return store.GetCluster(cid);
  }
};

/// A seeded mixed workload: singletons, multi-member clusters spanning
/// several 100x100-unit grid cells, mixed-kind clusters and shed nuclei.
void PopulateSeededWorkload(JoinFixture* f, uint64_t seed) {
  Rng rng(seed);
  uint32_t next_oid = 1, next_qid = 1;
  for (int i = 0; i < 120; ++i) {
    f->Add(MovingCluster::FromObject(
        f->store.NextClusterId(),
        Obj(next_oid++, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)},
            static_cast<NodeId>(i))));
  }
  for (int i = 0; i < 80; ++i) {
    f->Add(MovingCluster::FromQuery(
        f->store.NextClusterId(),
        Qry(next_qid++, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)},
            rng.NextDouble(20, 400), rng.NextDouble(20, 400),
            static_cast<NodeId>(1000 + i))));
  }
  // Multi-member clusters whose spread (+-350 units) spans several cells.
  for (int i = 0; i < 25; ++i) {
    Point c{rng.NextDouble(500, 9500), rng.NextDouble(500, 9500)};
    MovingCluster cluster = MovingCluster::FromObject(
        f->store.NextClusterId(),
        Obj(next_oid++, c, static_cast<NodeId>(2000 + i)));
    for (int m = 0; m < 6; ++m) {
      cluster.AbsorbObject(Obj(next_oid++,
                               {c.x + rng.NextDouble(-350, 350),
                                c.y + rng.NextDouble(-350, 350)},
                               static_cast<NodeId>(2000 + i)));
    }
    if (i % 3 == 0) {  // every third becomes mixed-kind
      cluster.AbsorbQuery(Qry(next_qid++, {c.x + 30, c.y - 30}, 150, 150,
                              static_cast<NodeId>(2000 + i)));
    }
    if (i % 5 == 0) {  // and some shed into a nucleus
      cluster.ShedPositions(80.0);
    }
    f->Add(std::move(cluster));
  }
  // Query-heavy multi-member clusters.
  for (int i = 0; i < 15; ++i) {
    Point c{rng.NextDouble(500, 9500), rng.NextDouble(500, 9500)};
    MovingCluster cluster = MovingCluster::FromQuery(
        f->store.NextClusterId(),
        Qry(next_qid++, c, 120, 120, static_cast<NodeId>(3000 + i)));
    for (int m = 0; m < 4; ++m) {
      cluster.AbsorbQuery(Qry(next_qid++,
                              {c.x + rng.NextDouble(-250, 250),
                               c.y + rng.NextDouble(-250, 250)},
                              rng.NextDouble(40, 200), rng.NextDouble(40, 200),
                              static_cast<NodeId>(3000 + i)));
    }
    f->Add(std::move(cluster));
  }
}

bool CountersEqual(const ClusterJoinExecutor::Counters& a,
                   const ClusterJoinExecutor::Counters& b) {
  return a.comparisons == b.comparisons && a.bounds_checks == b.bounds_checks &&
         a.pairs_tested == b.pairs_tested &&
         a.pairs_overlapping == b.pairs_overlapping &&
         a.within_joins_single == b.within_joins_single &&
         a.within_joins_pair == b.within_joins_pair;
}

class ParallelJoinDeterminismTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ParallelJoinDeterminismTest, ThreadCountsProduceIdenticalResults) {
  JoinFixture f;
  PopulateSeededWorkload(&f, GetParam());

  ClusterJoinExecutor serial(/*query_reach_aware=*/true, /*threads=*/1);
  ResultSet expected;
  ASSERT_TRUE(serial.Execute(f.store, f.grid, &expected).ok());
  EXPECT_GT(expected.size(), 0u) << "workload must produce matches";

  for (uint32_t threads : {2u, 4u, 8u}) {
    ClusterJoinExecutor parallel(/*query_reach_aware=*/true, threads);
    ResultSet results;
    ASSERT_TRUE(parallel.Execute(f.store, f.grid, &results).ok());
    EXPECT_EQ(results, expected) << "threads=" << threads;
    EXPECT_TRUE(CountersEqual(parallel.counters(), serial.counters()))
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelJoinDeterminismTest,
                         ::testing::Values(7, 21, 42, 1234));

TEST(ParallelJoinDeterminismTest, RepeatedParallelExecutesAreStable) {
  // Scheduling nondeterminism must never leak into the answer: the same
  // parallel executor re-run over unchanged state returns the same set.
  JoinFixture f;
  PopulateSeededWorkload(&f, 99);
  ClusterJoinExecutor executor(true, 4);
  ResultSet first, second;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &first).ok());
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &second).ok());
  EXPECT_EQ(first, second);
}

class OwnerCellTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OwnerCellTest, MultiCellPairJoinsExactlyOnce) {
  // Two clusters whose members sprawl across many shared 100-unit grid cells:
  // the pair must be join-between tested and join-within run exactly once,
  // regardless of how many cells both occupy or how cells are sharded.
  JoinFixture f;
  MovingCluster a = MovingCluster::FromObject(f.store.NextClusterId(),
                                              Obj(1, {500, 500}, 1));
  a.AbsorbObject(Obj(2, {900, 900}, 1));
  a.AbsorbObject(Obj(3, {700, 520}, 1));
  MovingCluster b = MovingCluster::FromQuery(f.store.NextClusterId(),
                                             Qry(1, {600, 600}, 100, 100, 2));
  b.AbsorbQuery(Qry(2, {850, 850}, 100, 100, 2));
  f.Add(std::move(a));
  f.Add(std::move(b));

  ClusterJoinExecutor executor(true, GetParam());
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_EQ(executor.counters().pairs_tested, 1u);
  EXPECT_EQ(executor.counters().within_joins_pair, 1u);
}

TEST_P(OwnerCellTest, MultiCellMixedClusterSelfJoinsExactlyOnce) {
  JoinFixture f;
  MovingCluster c = MovingCluster::FromObject(f.store.NextClusterId(),
                                              Obj(1, {1000, 1000}, 1));
  c.AbsorbObject(Obj(2, {1400, 1350}, 1));
  c.AbsorbQuery(Qry(1, {1200, 1180}, 600, 600, 1));
  f.Add(std::move(c));

  ClusterJoinExecutor executor(true, GetParam());
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_EQ(executor.counters().within_joins_single, 1u);
  EXPECT_TRUE(results.Contains(1, 1));
  EXPECT_TRUE(results.Contains(1, 2));
}

TEST_P(OwnerCellTest, ThreeWayOverlapJoinsEachPairOnce) {
  // Three mutually overlapping multi-cell clusters (object, query, object):
  // each complementary pair exactly once = 2 pair joins.
  JoinFixture f;
  MovingCluster o1 = MovingCluster::FromObject(f.store.NextClusterId(),
                                               Obj(1, {300, 300}, 1));
  o1.AbsorbObject(Obj(2, {700, 650}, 1));
  MovingCluster q = MovingCluster::FromQuery(f.store.NextClusterId(),
                                             Qry(1, {400, 400}, 200, 200, 2));
  q.AbsorbQuery(Qry(2, {650, 600}, 200, 200, 2));
  MovingCluster o2 = MovingCluster::FromObject(f.store.NextClusterId(),
                                               Obj(3, {500, 350}, 3));
  o2.AbsorbObject(Obj(4, {600, 700}, 3));
  f.Add(std::move(o1));
  f.Add(std::move(q));
  f.Add(std::move(o2));

  ClusterJoinExecutor executor(true, GetParam());
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_EQ(executor.counters().pairs_tested, 2u);
  EXPECT_EQ(executor.counters().within_joins_pair, 2u);
}

INSTANTIATE_TEST_SUITE_P(Threads, OwnerCellTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelEngineTest, EngineMatchesSerialAcrossThreadCounts) {
  // End to end through ScubaEngine: identical ingests, several evaluation
  // rounds, every thread count returns the serial engine's exact answer.
  auto run = [](uint32_t threads) {
    ScubaOptions opt;
    opt.join_threads = threads;
    std::unique_ptr<ScubaEngine> engine =
        std::move(ScubaEngine::Create(opt).value());
    Rng rng(555);
    std::vector<ResultSet> rounds;
    for (Timestamp now = 2; now <= 6; now += 2) {
      for (uint32_t i = 0; i < 200; ++i) {
        LocationUpdate u = Obj(i,
                               {rng.NextDouble(0, 10000),
                                rng.NextDouble(0, 10000)},
                               static_cast<NodeId>(i % 40));
        u.time = now - 1;
        EXPECT_TRUE(engine->IngestObjectUpdate(u).ok());
      }
      for (uint32_t i = 0; i < 150; ++i) {
        QueryUpdate u = Qry(i,
                            {rng.NextDouble(0, 10000),
                             rng.NextDouble(0, 10000)},
                            rng.NextDouble(50, 300), rng.NextDouble(50, 300),
                            static_cast<NodeId>(40 + i % 40));
        u.time = now - 1;
        EXPECT_TRUE(engine->IngestQueryUpdate(u).ok());
      }
      ResultSet results;
      EXPECT_TRUE(engine->Evaluate(now, &results).ok());
      rounds.push_back(std::move(results));
    }
    return rounds;
  };

  std::vector<ResultSet> serial = run(1);
  size_t total = 0;
  for (const ResultSet& r : serial) total += r.size();
  EXPECT_GT(total, 0u);
  for (uint32_t threads : {2u, 4u, 8u}) {
    std::vector<ResultSet> parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "threads=" << threads << " round=" << i;
    }
  }
}

TEST(ParallelEngineTest, WorkerSecondsAndThreadsReported) {
  ScubaOptions opt;
  opt.join_threads = 4;
  std::unique_ptr<ScubaEngine> engine =
      std::move(ScubaEngine::Create(opt).value());
  ASSERT_TRUE(engine->IngestObjectUpdate(Obj(1, {100, 100}, 1)).ok());
  ASSERT_TRUE(engine->IngestQueryUpdate(Qry(1, {110, 100}, 80, 80, 2)).ok());
  ResultSet results;
  ASSERT_TRUE(engine->Evaluate(2, &results).ok());
  EXPECT_EQ(engine->StatsSnapshot().eval.join_threads, 4u);
  EXPECT_GT(engine->StatsSnapshot().eval.total_join_worker_seconds, 0.0);
}

}  // namespace
}  // namespace scuba
