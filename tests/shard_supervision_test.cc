// Shard fault isolation (docs/ARCHITECTURE.md §13): supervised rounds must
// quarantine a failing stripe instead of failing the engine, serve degraded
// rounds from last-published results, recover the stripe online between
// rounds (probe-first, durable rebuild when the stripe audit is dirty), and
// — after the attempt budget — evict in place (kDegrade) or reshard the
// stripe away (kReassign). Everything is deterministic per fault seed, and a
// clean supervised run is bit-identical to an unsupervised one.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/result_set.h"
#include "core/scuba_engine.h"
#include "persist/snapshot.h"
#include "shard/shard_durability.h"
#include "shard/shard_fault_injector.h"
#include "shard/shard_supervisor.h"
#include "shard/sharded_engine.h"

namespace scuba {
namespace {

namespace fs = std::filesystem;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_((fs::current_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// Deterministic stream: 64 entities in 4 drifting groups. Two groups sit
/// just under the 4-stripe borders (y = 2500 / 5000 over the default
/// 10000-unit region), so their clusters' registered circles always touch the
/// next stripe — guaranteeing border clusters for corrupt-state injection on
/// shards 1 and 2 — and every stripe of a 4-shard layout owns tuples.
std::vector<Round> MakeRounds(int rounds) {
  const double group_y[] = {1200.0, 2460.0, 4960.0, 7400.0};
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (uint32_t i = 0; i < 64; ++i) {
      const int group = i % 4;
      const Point pos{500.0 + 2200.0 * group + 13.0 * r + 7.0 * (i / 4),
                      group_y[group] + 3.0 * (i / 4 % 5)};
      if (i % 5 == 2) {
        QueryUpdate u;
        u.qid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.range_width = 150.0;
        u.range_height = 150.0;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.attrs = 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

ScubaOptions MakeOptions(uint32_t shards, uint32_t threads = 1) {
  ScubaOptions opt;
  opt.shards = shards;
  opt.join_threads = threads;
  return opt;
}

std::unique_ptr<ShardedEngine> MakeEngine(const ScubaOptions& opt) {
  Result<std::unique_ptr<ShardedEngine>> engine = ShardedEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

struct DriveLog {
  std::vector<ResultSet> rounds;
  std::vector<std::vector<uint32_t>> degraded;  ///< Per round.
  uint64_t final_hash = 0;
};

/// Drives every round, expecting every Evaluate to succeed (the whole point
/// of the degrade/reassign policies).
DriveLog Drive(const std::vector<Round>& rounds, ShardedEngine* engine) {
  DriveLog log;
  ResultSet results;
  for (size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_TRUE(
        engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    Status s = engine->Evaluate(static_cast<Timestamp>(r + 1), &results);
    EXPECT_TRUE(s.ok()) << "round " << (r + 1) << ": " << s.ToString();
    log.rounds.push_back(results);
    log.degraded.push_back(results.degraded_shards());
  }
  log.final_hash = EngineStateHash(*engine);
  return log;
}

/// Reference run: same workload, no supervision, same shard count.
DriveLog CleanReference(const std::vector<Round>& rounds, uint32_t shards,
                        uint32_t threads = 1) {
  std::unique_ptr<ShardedEngine> engine = MakeEngine(MakeOptions(shards, threads));
  return Drive(rounds, engine.get());
}

void ExpectSameRounds(const DriveLog& a, const DriveLog& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i], b.rounds[i]) << "round " << (i + 1);
    EXPECT_EQ(a.degraded[i], b.degraded[i]) << "round " << (i + 1);
  }
  EXPECT_EQ(a.final_hash, b.final_hash);
}

// --- fault injector ---

TEST(ShardFaultInjectorTest, ParseSpecRoundTripsAndRejectsGarbage) {
  Result<ShardFaultPlan> plan =
      ShardFaultPlan::ParseSpec("3:1:task-failure,5:0:corrupt-state");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->directives.size(), 2u);
  EXPECT_EQ(plan->directives[0].round, 3u);
  EXPECT_EQ(plan->directives[0].shard, 1u);
  EXPECT_EQ(plan->directives[0].fault, ShardFaultClass::kTaskFailure);
  EXPECT_EQ(plan->directives[1].fault, ShardFaultClass::kCorruptState);

  EXPECT_FALSE(ShardFaultPlan::ParseSpec("nonsense").ok());
  EXPECT_FALSE(ShardFaultPlan::ParseSpec("1:2").ok());
  EXPECT_FALSE(ShardFaultPlan::ParseSpec("1:2:no-such-class").ok());
  EXPECT_FALSE(ShardFaultPlan::ParseSpec("x:2:stall").ok());
}

TEST(ShardFaultInjectorTest, DirectivesOverrideTheDice) {
  ShardFaultPlan plan;  // No probabilistic faults at all.
  plan.directives.push_back({2, 1, ShardFaultClass::kStall});
  ShardFaultInjector injector(plan, 42);
  injector.BeginRound(1, 4);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(injector.FaultFor(s).has_value());
  }
  injector.BeginRound(2, 4);
  EXPECT_FALSE(injector.FaultFor(0).has_value());
  ASSERT_TRUE(injector.FaultFor(1).has_value());
  EXPECT_EQ(*injector.FaultFor(1), ShardFaultClass::kStall);
}

TEST(ShardFaultInjectorTest, SameSeedRollsTheSameSchedule) {
  const ShardFaultPlan plan = ShardFaultPlan::AllFaults(0.3);
  ShardFaultInjector a(plan, 7), b(plan, 7), c(plan, 8);
  bool diverged_from_c = false;
  for (uint64_t round = 1; round <= 50; ++round) {
    a.BeginRound(round, 4);
    b.BeginRound(round, 4);
    c.BeginRound(round, 4);
    for (uint32_t s = 0; s < 4; ++s) {
      EXPECT_EQ(a.FaultFor(s), b.FaultFor(s)) << round << ":" << s;
      if (a.FaultFor(s) != c.FaultFor(s)) diverged_from_c = true;
    }
  }
  EXPECT_TRUE(diverged_from_c) << "different seeds rolled identical faults";
}

TEST(ShardSupervisionTest, MalformedFaultSpecFailsEngineCreation) {
  ScubaOptions opt = MakeOptions(2);
  opt.supervision.fault_spec = "not-a-spec";
  Result<std::unique_ptr<ShardedEngine>> engine = ShardedEngine::Create(opt);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

// --- clean-run bit-identity ---

TEST(ShardSupervisionTest, CleanSupervisedRunIsBitIdenticalAtEveryShardCount) {
  const std::vector<Round> rounds = MakeRounds(6);
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    const DriveLog clean = CleanReference(rounds, shards);
    ScubaOptions opt = MakeOptions(shards);
    opt.supervision.on_failure = ShardFailurePolicy::kDegrade;
    opt.supervision.round_deadline_seconds = 3600.0;
    std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
    ASSERT_NE(engine->supervisor(), nullptr);
    const DriveLog supervised = Drive(rounds, engine.get());
    ExpectSameRounds(clean, supervised);
    EXPECT_EQ(engine->supervisor()->stats().shard_failures, 0u);
    EXPECT_EQ(engine->supervisor()->stats().degraded_rounds, 0u);
    EXPECT_TRUE(engine->AuditInvariants().clean());
  }
}

// --- fault matrix: classes x shards x threads x policies, per-seed
// determinism ---

class FaultMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, ShardFailurePolicy>> {};

TEST_P(FaultMatrixTest, EveryFaultClassIsDeterministicPerSeed) {
  const auto [shards, threads, policy] = GetParam();
  const std::vector<Round> rounds = MakeRounds(6);
  for (const char* fault_class :
       {"task-failure", "corrupt-state", "stall"}) {
    ScubaOptions opt = MakeOptions(shards, threads);
    opt.supervision.on_failure = policy;
    opt.supervision.max_recovery_attempts = 2;
    opt.supervision.fault_spec = std::string("3:1:") + fault_class;

    if (policy == ShardFailurePolicy::kFail) {
      // The historical contract: one failing shard fails the round — and the
      // failure is the same one on every rerun.
      std::string first_error;
      for (int repeat = 0; repeat < 2; ++repeat) {
        std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
        ResultSet results;
        Status failed = Status::OK();
        for (size_t r = 0; r < rounds.size(); ++r) {
          ASSERT_TRUE(engine
                          ->IngestBatch(rounds[r].objects, rounds[r].queries)
                          .ok());
          failed = engine->Evaluate(static_cast<Timestamp>(r + 1), &results);
          if (!failed.ok()) break;
        }
        ASSERT_FALSE(failed.ok()) << fault_class;
        if (repeat == 0) {
          first_error = failed.ToString();
        } else {
          EXPECT_EQ(failed.ToString(), first_error);
        }
      }
      continue;
    }

    // Degrade / reassign: both runs of the same seed+spec must agree on
    // every round's results, degraded marks, health trajectory and hash.
    std::unique_ptr<ShardedEngine> a = MakeEngine(opt);
    std::unique_ptr<ShardedEngine> b = MakeEngine(opt);
    const DriveLog la = Drive(rounds, a.get());
    const DriveLog lb = Drive(rounds, b.get());
    ExpectSameRounds(la, lb);
    const SupervisionStats& sa = a->supervisor()->stats();
    const SupervisionStats& sb = b->supervisor()->stats();
    EXPECT_EQ(sa.shard_failures, sb.shard_failures) << fault_class;
    EXPECT_EQ(sa.shard_recoveries, sb.shard_recoveries) << fault_class;
    EXPECT_EQ(sa.shard_evictions, sb.shard_evictions) << fault_class;
    EXPECT_EQ(sa.degraded_rounds, sb.degraded_rounds) << fault_class;
    EXPECT_EQ(a->supervisor()->injector()->stats().TotalInjected(),
              b->supervisor()->injector()->stats().TotalInjected())
        << fault_class;
    // Task failures and stalls leave stripe state untouched, so the probe
    // audit recovers the shard in the same round and the run converges to
    // the clean reference exactly.
    if (std::string(fault_class) != "corrupt-state") {
      EXPECT_EQ(sa.shard_failures, 1u) << fault_class;
      EXPECT_EQ(sa.shard_recoveries, 1u) << fault_class;
      EXPECT_EQ(sa.degraded_rounds, 1u) << fault_class;
      EXPECT_EQ(la.final_hash, CleanReference(rounds, shards).final_hash)
          << fault_class;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrixTest,
    ::testing::Combine(::testing::Values(2u, 4u), ::testing::Values(1u, 4u),
                       ::testing::Values(ShardFailurePolicy::kFail,
                                         ShardFailurePolicy::kDegrade,
                                         ShardFailurePolicy::kReassign)));

// --- degraded-mode semantics ---

TEST(ShardSupervisionTest, DegradedRoundServesLastPublishedResultsAndMarks) {
  const std::vector<Round> rounds = MakeRounds(6);
  ScubaOptions opt = MakeOptions(4);
  opt.supervision.on_failure = ShardFailurePolicy::kDegrade;
  opt.supervision.fault_spec = "3:1:task-failure";
  std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
  const DriveLog log = Drive(rounds, engine.get());

  // Only round 3 is degraded, and only shard 1 is marked.
  for (size_t r = 0; r < log.degraded.size(); ++r) {
    if (r == 2) {
      EXPECT_EQ(log.degraded[r], std::vector<uint32_t>{1u});
    } else {
      EXPECT_TRUE(log.degraded[r].empty()) << "round " << (r + 1);
    }
  }
  // A task failure never touches stripe state, so the probe audit heals the
  // shard at the end of the SAME round and every later round is live again
  // — bit-identical to the clean reference from round 4 on, converging to
  // its exact final state.
  const DriveLog clean = CleanReference(rounds, 4);
  for (size_t r = 3; r < rounds.size(); ++r) {
    EXPECT_EQ(log.rounds[r], clean.rounds[r]) << "round " << (r + 1);
  }
  EXPECT_EQ(log.final_hash, clean.final_hash);
  EXPECT_EQ(engine->supervisor()->stats().shard_recoveries, 1u);
  EXPECT_EQ(engine->supervisor()->record(1).health, ShardHealth::kHealthy);
}

TEST(ShardSupervisionTest, StripeAuditCatchesInjectedGridCorruption) {
  const std::vector<Round> rounds = MakeRounds(6);
  ScubaOptions opt = MakeOptions(4);
  opt.supervision.on_failure = ShardFailurePolicy::kDegrade;
  opt.supervision.max_recovery_attempts = 2;
  opt.supervision.fault_spec = "3:1:corrupt-state";
  std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
  const DriveLog log = Drive(rounds, engine.get());
  (void)log;

  const ShardFaultStats& faults = engine->supervisor()->injector()->stats();
  ASSERT_EQ(faults.Injected(ShardFaultClass::kCorruptState), 1u)
      << "the workload must give shard 1 a border cluster to corrupt";
  EXPECT_EQ(engine->supervisor()->stats().shard_failures, 1u);
  EXPECT_GE(engine->supervisor()->stats().degraded_rounds, 1u);
  // With no durable root attached there is no rebuild hook: the probe audit
  // stays dirty, both attempts fail, and the stripe is evicted in place —
  // permanently quarantined but still serving its last published slice.
  EXPECT_EQ(engine->supervisor()->stats().shard_recoveries, 0u);
  EXPECT_EQ(engine->supervisor()->stats().shard_evictions, 1u);
  EXPECT_EQ(engine->supervisor()->record(1).health, ShardHealth::kEvicted);
  EXPECT_EQ(engine->shard_count(), 4u);  // kDegrade never reshards.
  EXPECT_FALSE(engine->AuditShardStripe(1).clean());
}

// --- online recovery from the durable root ---

TEST(ShardSupervisionTest, DurableRecoveryHealsCorruptionAndConvergesExactly) {
  const std::vector<Round> rounds = MakeRounds(6);
  ScopedTempDir dir("supervision_recovery_dir");
  ScubaOptions opt = MakeOptions(4);
  opt.checkpoint.every_n_rounds = 2;
  opt.supervision.on_failure = ShardFailurePolicy::kDegrade;
  opt.supervision.fault_spec = "3:1:corrupt-state";

  std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
  Result<std::unique_ptr<ShardedDurabilityManager>> manager =
      ShardedDurabilityManager::Open(dir.path(), opt.checkpoint, engine.get(),
                                     /*validator=*/nullptr, /*rng=*/nullptr,
                                     /*crash=*/nullptr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  const std::string root = dir.path();
  engine->set_stripe_recovery([root](ShardedEngine* e, uint32_t s) {
    return RecoverShardStripe(root, e, s, /*validator_config=*/nullptr);
  });
  engine->set_on_layout_changed(
      [&manager] { return (*manager)->OnLayoutChanged(); });

  DriveLog log;
  ResultSet results;
  for (size_t r = 0; r < rounds.size(); ++r) {
    // CLI ordering: the batch is WAL-logged before it is evaluated, so when
    // round r's join fails the durable root already holds round r — the
    // recovery twin replays to exactly the live engine's round.
    ASSERT_TRUE((*manager)
                    ->LogBatch(static_cast<Timestamp>(r + 1), true,
                               rounds[r].objects, rounds[r].queries)
                    .ok());
    ASSERT_TRUE(
        engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    Status s = engine->Evaluate(static_cast<Timestamp>(r + 1), &results);
    ASSERT_TRUE(s.ok()) << "round " << (r + 1) << ": " << s.ToString();
    log.rounds.push_back(results);
    log.degraded.push_back(results.degraded_shards());
    ASSERT_TRUE((*manager)->OnRoundComplete().ok());
  }
  log.final_hash = EngineStateHash(*engine);

  ASSERT_EQ(
      engine->supervisor()->injector()->stats().Injected(
          ShardFaultClass::kCorruptState),
      1u);
  EXPECT_EQ(engine->supervisor()->stats().shard_failures, 1u);
  EXPECT_EQ(engine->supervisor()->stats().shard_recoveries, 1u);
  EXPECT_EQ(engine->supervisor()->stats().shard_evictions, 0u);
  EXPECT_EQ(engine->supervisor()->record(1).health, ShardHealth::kHealthy);
  EXPECT_TRUE(engine->AuditInvariants().clean());

  // Exact convergence: the same-round rebuild leaves the engine in the state
  // an uninterrupted twin reaches — equal ResultSets after the incident and
  // an equal state hash.
  const DriveLog clean = CleanReference(rounds, 4);
  EXPECT_EQ(log.degraded[2], std::vector<uint32_t>{1u});
  for (size_t r = 3; r < rounds.size(); ++r) {
    EXPECT_EQ(log.rounds[r], clean.rounds[r]) << "round " << (r + 1);
  }
  EXPECT_EQ(log.final_hash, clean.final_hash);
}

TEST(ShardSupervisionTest, RecoveryFailureInjectionDrivesBackoffToEviction) {
  const std::vector<Round> rounds = MakeRounds(8);
  ScubaOptions opt = MakeOptions(4);
  opt.supervision.on_failure = ShardFailurePolicy::kDegrade;
  opt.supervision.max_recovery_attempts = 3;
  opt.supervision.backoff_base_rounds = 1;
  // Corruption at round 3; no durable root, so attempt 1 (round 3) fails on
  // the missing rebuild hook. Backoff schedules attempt 2 at round 4, where
  // the injected recovery failure strikes; attempt 3 lands at round 6 (1<<1
  // rounds later), fails again and exhausts the budget.
  opt.supervision.fault_spec = "3:1:corrupt-state,4:1:recovery-failure";
  std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
  Drive(rounds, engine.get());

  const ShardFaultStats& faults = engine->supervisor()->injector()->stats();
  EXPECT_EQ(faults.Injected(ShardFaultClass::kCorruptState), 1u);
  EXPECT_EQ(faults.Injected(ShardFaultClass::kRecoveryFailure), 1u);
  EXPECT_EQ(engine->supervisor()->stats().shard_recoveries, 0u);
  EXPECT_EQ(engine->supervisor()->stats().shard_evictions, 1u);
  EXPECT_EQ(engine->supervisor()->record(1).health, ShardHealth::kEvicted);
  EXPECT_EQ(engine->supervisor()->record(1).recovery_attempts, 3u);
}

// --- reassign: graceful degradation to one fewer stripe ---

TEST(ShardSupervisionTest, ReassignEvictionReshardsAndRunsCleanReduced) {
  const std::vector<Round> rounds = MakeRounds(6);
  ScubaOptions opt = MakeOptions(4);
  opt.supervision.on_failure = ShardFailurePolicy::kReassign;
  opt.supervision.max_recovery_attempts = 1;
  opt.supervision.fault_spec = "3:1:corrupt-state";
  std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
  const DriveLog log = Drive(rounds, engine.get());

  ASSERT_EQ(
      engine->supervisor()->injector()->stats().Injected(
          ShardFaultClass::kCorruptState),
      1u);
  EXPECT_EQ(engine->supervisor()->stats().shard_evictions, 1u);
  EXPECT_EQ(engine->shard_count(), 3u);
  EXPECT_EQ(engine->supervisor()->shard_count(), 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(engine->supervisor()->record(s).health, ShardHealth::kHealthy);
  }
  // The reduced layout re-registered every cluster from its registered
  // bounds, healing the grid corruption: the engine audits clean and the
  // run converges to the layout-independent clean state.
  EXPECT_TRUE(engine->AuditInvariants().clean());
  const DriveLog clean = CleanReference(rounds, 4);
  for (size_t r = 3; r < rounds.size(); ++r) {
    EXPECT_EQ(log.rounds[r], clean.rounds[r]) << "round " << (r + 1);
  }
  EXPECT_EQ(log.final_hash, clean.final_hash);
}

TEST(ShardSupervisionTest, HealthDumpNamesEveryStripe) {
  ScubaOptions opt = MakeOptions(2);
  opt.supervision.on_failure = ShardFailurePolicy::kDegrade;
  std::unique_ptr<ShardedEngine> engine = MakeEngine(opt);
  const std::vector<Round> rounds = MakeRounds(2);
  Drive(rounds, engine.get());
  const std::string dump = engine->supervisor()->HealthDump();
  EXPECT_NE(dump.find("shard 0: healthy"), std::string::npos) << dump;
  EXPECT_NE(dump.find("shard 1: healthy"), std::string::npos) << dump;
  EXPECT_NE(dump.find("supervision:"), std::string::npos) << dump;
}

}  // namespace
}  // namespace scuba
