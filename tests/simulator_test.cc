#include "gen/object_simulator.h"

#include <gtest/gtest.h>

#include "network/grid_city.h"
#include "network/network_builder.h"
#include "network/shortest_path.h"

namespace scuba {
namespace {

RoadNetwork LineNetwork() {
  // 0 --(100)--> 1 --(100)--> 2, local roads (speed 30).
  NetworkBuilder b;
  b.AddNode({0, 0});
  b.AddNode({100, 0});
  b.AddNode({200, 0});
  b.AddBidirectionalEdge(0, 1);
  b.AddBidirectionalEdge(1, 2);
  Result<RoadNetwork> net = b.Build();
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

SimEntity BasicEntity(std::vector<NodeId> route, double speed_factor = 1.0) {
  SimEntity e;
  e.kind = EntityKind::kObject;
  e.id = 1;
  e.group = 0;
  e.speed_factor = speed_factor;
  e.route = std::move(route);
  return e;
}

TEST(SimulatorTest, AddEntityValidatesRoute) {
  RoadNetwork net = LineNetwork();
  ObjectSimulator sim(&net, 1);
  EXPECT_TRUE(
      sim.AddEntity(BasicEntity({0})).IsInvalidArgument());  // too short
  EXPECT_TRUE(
      sim.AddEntity(BasicEntity({0, 2})).IsInvalidArgument());  // no edge 0->2
  SimEntity past_end = BasicEntity({0, 1});
  past_end.leg = 1;
  EXPECT_TRUE(sim.AddEntity(past_end).IsInvalidArgument());
  SimEntity bad_speed = BasicEntity({0, 1});
  bad_speed.speed_factor = 0.0;
  EXPECT_TRUE(sim.AddEntity(bad_speed).IsInvalidArgument());
  EXPECT_TRUE(sim.AddEntity(BasicEntity({0, 1, 2})).ok());
  EXPECT_EQ(sim.EntityCount(), 1u);
}

TEST(SimulatorTest, DerivedStateOnAdd) {
  RoadNetwork net = LineNetwork();
  ObjectSimulator sim(&net, 1);
  SimEntity e = BasicEntity({0, 1, 2});
  e.offset = 50.0;
  ASSERT_TRUE(sim.AddEntity(e).ok());
  const SimEntity& added = sim.entities()[0];
  EXPECT_EQ(added.position, (Point{50, 0}));
  EXPECT_DOUBLE_EQ(added.speed, DefaultSpeedLimit(RoadClass::kLocal));
}

TEST(SimulatorTest, StepAdvancesAlongEdge) {
  RoadNetwork net = LineNetwork();
  ObjectSimulator sim(&net, 1);
  ASSERT_TRUE(sim.AddEntity(BasicEntity({0, 1, 2})).ok());
  sim.Step();
  EXPECT_EQ(sim.now(), 1);
  // Local speed 30: position x = 30.
  EXPECT_NEAR(sim.entities()[0].position.x, 30.0, 1e-9);
  EXPECT_NEAR(sim.entities()[0].position.y, 0.0, 1e-9);
}

TEST(SimulatorTest, StepCrossesConnectionNode) {
  RoadNetwork net = LineNetwork();
  ObjectSimulator sim(&net, 1);
  SimEntity e = BasicEntity({0, 1, 2});
  e.offset = 90.0;  // 10 units before node 1
  ASSERT_TRUE(sim.AddEntity(e).ok());
  sim.Step();  // moves 30: 10 to node 1, 20 along next leg
  EXPECT_NEAR(sim.entities()[0].position.x, 120.0, 1e-9);
  EXPECT_EQ(sim.CurrentDestination(0), 2u);
}

TEST(SimulatorTest, CurrentDestinationIsNextNode) {
  RoadNetwork net = LineNetwork();
  ObjectSimulator sim(&net, 1);
  ASSERT_TRUE(sim.AddEntity(BasicEntity({0, 1, 2})).ok());
  EXPECT_EQ(sim.CurrentDestination(0), 1u);
}

TEST(SimulatorTest, ReplansAtRouteEnd) {
  RoadNetwork net = LineNetwork();
  ObjectSimulator sim(&net, 1);
  ASSERT_TRUE(sim.AddEntity(BasicEntity({0, 1})).ok());
  // After enough steps the entity must have replanned (route generation > 0)
  // and still be on the network.
  for (int i = 0; i < 20; ++i) sim.Step();
  EXPECT_GT(sim.entities()[0].route_generation, 0u);
}

TEST(SimulatorTest, GroupMembersShareReplannedDestinations) {
  RoadNetwork city = DefaultBenchmarkCity(5);
  ObjectSimulator sim(&city, 42);
  Result<Route> route = ShortestPath(city, 0, 7);
  ASSERT_TRUE(route.ok());
  for (uint32_t i = 0; i < 3; ++i) {
    SimEntity e;
    e.kind = EntityKind::kObject;
    e.id = i;
    e.group = 9;  // same group
    e.speed_factor = 1.0;
    e.route = route->nodes;
    ASSERT_TRUE(sim.AddEntity(e).ok());
  }
  for (int t = 0; t < 300; ++t) sim.Step();
  // All members replanned at least once and, having identical speed and group,
  // follow identical routes.
  ASSERT_GT(sim.entities()[0].route_generation, 0u);
  for (uint32_t i = 1; i < 3; ++i) {
    EXPECT_EQ(sim.entities()[i].route, sim.entities()[0].route);
    EXPECT_EQ(sim.entities()[i].route_generation,
              sim.entities()[0].route_generation);
  }
}

TEST(SimulatorTest, EmitUpdatesFullFraction) {
  RoadNetwork net = LineNetwork();
  ObjectSimulator sim(&net, 1);
  SimEntity obj = BasicEntity({0, 1, 2});
  obj.attrs = kAttrRedCar;
  ASSERT_TRUE(sim.AddEntity(obj).ok());
  SimEntity qry = BasicEntity({0, 1, 2});
  qry.kind = EntityKind::kQuery;
  qry.id = 5;
  qry.range_width = 40;
  qry.range_height = 20;
  ASSERT_TRUE(sim.AddEntity(qry).ok());

  sim.Step();
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  sim.EmitUpdates(1.0, &objs, &qrys);
  ASSERT_EQ(objs.size(), 1u);
  ASSERT_EQ(qrys.size(), 1u);
  EXPECT_EQ(objs[0].oid, 1u);
  EXPECT_EQ(objs[0].time, 1);
  EXPECT_EQ(objs[0].attrs, kAttrRedCar);
  EXPECT_EQ(objs[0].dest_node, 1u);
  EXPECT_EQ(objs[0].dest_position, (Point{100, 0}));
  EXPECT_EQ(qrys[0].qid, 5u);
  EXPECT_EQ(qrys[0].range_width, 40);
  EXPECT_EQ(qrys[0].range_height, 20);
  Rect range = qrys[0].Range();
  EXPECT_EQ(range.Width(), 40);
  EXPECT_EQ(range.Center(), qrys[0].position);
}

TEST(SimulatorTest, EmitUpdatesPartialFractionRoughlyProportional) {
  RoadNetwork city = DefaultBenchmarkCity(6);
  ObjectSimulator sim(&city, 7);
  Result<Route> route = ShortestPath(city, 0, 30);
  ASSERT_TRUE(route.ok());
  for (uint32_t i = 0; i < 1000; ++i) {
    SimEntity e;
    e.id = i;
    e.group = i;
    e.speed_factor = 0.9;
    e.route = route->nodes;
    ASSERT_TRUE(sim.AddEntity(e).ok());
  }
  sim.Step();
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  sim.EmitUpdates(0.5, &objs, &qrys);
  EXPECT_GT(objs.size(), 380u);
  EXPECT_LT(objs.size(), 620u);
}

// Property: entities always remain on a road segment (their position lies on
// the line between the leg's endpoints).
class OnNetworkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnNetworkPropertyTest, EntitiesStayOnRoads) {
  RoadNetwork city = DefaultBenchmarkCity(GetParam());
  ObjectSimulator sim(&city, GetParam());
  Rng rng(GetParam() + 1);
  for (uint32_t i = 0; i < 20; ++i) {
    NodeId from = static_cast<NodeId>(
        rng.NextInt(0, static_cast<int64_t>(city.NodeCount()) - 1));
    NodeId to = static_cast<NodeId>(
        rng.NextInt(0, static_cast<int64_t>(city.NodeCount()) - 1));
    if (from == to) to = (to + 1) % city.NodeCount();
    Result<Route> route = ShortestPath(city, from, to);
    ASSERT_TRUE(route.ok());
    if (route->nodes.size() < 2) continue;
    SimEntity e;
    e.id = i;
    e.group = i;
    e.speed_factor = rng.NextDouble(0.5, 1.0);
    e.route = route->nodes;
    ASSERT_TRUE(sim.AddEntity(e).ok());
  }
  for (int t = 0; t < 100; ++t) {
    sim.Step();
    for (const SimEntity& e : sim.entities()) {
      ASSERT_LT(e.leg + 1, e.route.size());
      Point a = city.node(e.route[e.leg]).position;
      Point b = city.node(e.route[e.leg + 1]).position;
      // Distance along segment decomposition must be consistent:
      // |a - p| + |p - b| == |a - b| for a point on the segment.
      double via = Distance(a, e.position) + Distance(e.position, b);
      EXPECT_NEAR(via, Distance(a, b), 1e-6);
      // Speed respects the segment's limit.
      EdgeId eid = city.FindEdge(e.route[e.leg], e.route[e.leg + 1]);
      ASSERT_NE(eid, kInvalidEdgeId);
      EXPECT_LE(e.speed, city.edge(eid).speed_limit + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnNetworkPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace scuba
