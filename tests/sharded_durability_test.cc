// Unit coverage for the sharded durability artifacts (docs/ARCHITECTURE.md
// §12): manifest framing and corruption detection, fsck verdicts (one exit
// code per damage class, read-only), generation-based prune retention, the
// ShardedEngine::Checkpoint/Restore convenience pair across shard counts,
// and empty sub-batch fanout keeping every chain contiguous.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/scuba_engine.h"
#include "persist/fsck.h"
#include "persist/manifest.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "shard/shard_durability.h"
#include "shard/sharded_engine.h"
#include "state_digest.h"

namespace scuba {
namespace {

namespace fs = std::filesystem;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_((fs::current_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// Deterministic little stream: 60 entities in 4 drifting groups spread over
/// the whole region, so every row stripe of a 4-shard layout owns tuples.
std::vector<Round> MakeRounds(int rounds, double y_span = 9000.0) {
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (uint32_t i = 0; i < 60; ++i) {
      const int group = i % 4;
      const Point pos{500.0 + 2200.0 * group + 13.0 * r + 7.0 * (i / 4),
                      400.0 + (y_span / 4.0) * group + 11.0 * r};
      if (i % 5 == 2) {
        QueryUpdate u;
        u.qid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.range_width = 150.0;
        u.range_height = 150.0;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.attrs = 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

ScubaOptions MakeOptions(uint32_t shards) {
  ScubaOptions opt;
  opt.shards = shards;
  opt.checkpoint.every_n_rounds = 2;
  opt.checkpoint.keep_last_k = 2;
  opt.checkpoint.wal_segment_bytes = 4096;
  return opt;
}

std::unique_ptr<ShardedEngine> MakeSharded(const ScubaOptions& opt) {
  Result<std::unique_ptr<ShardedEngine>> engine = ShardedEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Runs `rounds` through a durable sharded stream and returns the engine's
/// final digest. The manager is closed before returning.
std::string RunDurably(const std::vector<Round>& rounds,
                       const ScubaOptions& opt, const std::string& dir) {
  std::unique_ptr<ShardedEngine> engine = MakeSharded(opt);
  Result<std::unique_ptr<ShardedDurabilityManager>> manager =
      ShardedDurabilityManager::Open(dir, opt.checkpoint, engine.get(),
                                     /*validator=*/nullptr, /*rng=*/nullptr,
                                     /*crash=*/nullptr);
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  for (size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_TRUE((*manager)
                    ->LogBatch(static_cast<Timestamp>(r + 1), true,
                               rounds[r].objects, rounds[r].queries)
                    .ok());
    EXPECT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    EXPECT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    EXPECT_TRUE((*manager)->OnRoundComplete().ok());
  }
  return StateDigest(*engine);
}

/// Every regular file under `dir`, path -> contents.
std::map<std::string, std::string> DirContents(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out[entry.path().string()] = std::move(bytes);
  }
  return out;
}

void CorruptByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(ShardedDurabilityTest, ManifestRoundTrips) {
  ScopedTempDir dir("manifest_roundtrip");
  ManifestInfo info;
  info.fingerprint = 0xFEEDFACECAFEBEEFull;
  info.generation = 7;
  info.wal_next_seq = 42;
  info.rounds = 40;
  info.shards = {{7, 111}, {7, 222}, {7, 333}};
  info.coordinator_state = std::string("opaque\0blob", 11);
  ASSERT_TRUE(WriteManifestFile(dir.path(), info, nullptr).ok());

  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir.path());
  ASSERT_TRUE(manifests.ok());
  ASSERT_EQ(manifests->size(), 1u);
  EXPECT_EQ(manifests->front().first, 7u);
  EXPECT_EQ(fs::path(manifests->front().second).filename().string(),
            ManifestFileName(7));

  Result<ManifestInfo> read = ReadManifest(manifests->front().second);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->fingerprint, info.fingerprint);
  EXPECT_EQ(read->generation, info.generation);
  EXPECT_EQ(read->wal_next_seq, info.wal_next_seq);
  EXPECT_EQ(read->rounds, info.rounds);
  ASSERT_EQ(read->shards.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(read->shards[s].snapshot_seq, info.shards[s].snapshot_seq);
    EXPECT_EQ(read->shards[s].state_hash, info.shards[s].state_hash);
  }
  EXPECT_EQ(read->coordinator_state, info.coordinator_state);
}

TEST(ShardedDurabilityTest, ManifestCorruptionIsDataLoss) {
  ScopedTempDir dir("manifest_corruption");
  ManifestInfo info;
  info.fingerprint = 1;
  info.generation = 1;
  info.shards = {{1, 9}};
  info.coordinator_state = "state";
  ASSERT_TRUE(WriteManifestFile(dir.path(), info, nullptr).ok());
  const std::string path =
      (fs::path(dir.path()) / ManifestFileName(1)).string();

  // Flip one payload byte: the CRC check must refuse the file.
  CorruptByteAt(path, fs::file_size(path) / 2);
  Result<ManifestInfo> read = ReadManifest(path);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsDataLoss()) << read.status().ToString();

  // Rewrite, then truncate (a torn rename): also kDataLoss.
  ASSERT_TRUE(WriteManifestFile(dir.path(), info, nullptr).ok());
  fs::resize_file(path, fs::file_size(path) / 3);
  read = ReadManifest(path);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsDataLoss()) << read.status().ToString();
}

TEST(ShardedDurabilityTest, FsckVerdictsPerDamageClass) {
  // 6 rounds, checkpoint every 2: committed base 6 after the final round's
  // checkpoint; re-log two more batches without a checkpoint so WAL tails
  // exist past the base.
  std::vector<Round> rounds = MakeRounds(8);
  ScopedTempDir dir("fsck_verdicts");
  const ScubaOptions opt = MakeOptions(4);
  {
    std::unique_ptr<ShardedEngine> engine = MakeSharded(opt);
    Result<std::unique_ptr<ShardedDurabilityManager>> manager =
        ShardedDurabilityManager::Open(dir.path(), opt.checkpoint,
                                       engine.get(), nullptr, nullptr,
                                       nullptr);
    ASSERT_TRUE(manager.ok());
    for (size_t r = 0; r < rounds.size(); ++r) {
      ASSERT_TRUE((*manager)
                      ->LogBatch(static_cast<Timestamp>(r + 1), true,
                                 rounds[r].objects, rounds[r].queries)
                      .ok());
      ASSERT_TRUE(
          engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
      ResultSet results;
      ASSERT_TRUE(
          engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
      // Checkpoint only through round 6: seqs 6..7 stay WAL-only.
      if (r < 6) ASSERT_TRUE((*manager)->OnRoundComplete().ok());
    }
  }

  // Clean directory: exit 0, and fsck must not change a single byte.
  const std::map<std::string, std::string> before = DirContents(dir.path());
  Result<FsckReport> report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->exit_code, kFsckOk) << report->ToString();
  EXPECT_TRUE(report->sharded);
  EXPECT_GT(report->manifests_valid, 0u);
  EXPECT_GT(report->snapshots_valid, 0u);
  EXPECT_EQ(DirContents(dir.path()), before);

  // Orphaned temp file -> kFsckOrphan.
  const std::string tmp =
      (fs::path(dir.path()) / ShardDirName(1) / "snapshot-junk.tmp").string();
  { std::ofstream(tmp, std::ios::binary) << "partial"; }
  report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exit_code, kFsckOrphan) << report->ToString();
  fs::remove(tmp);

  // A chain's torn tail -> kFsckTornTail. Truncate the final segment of
  // shard 3's chain mid-frame: seq 7 loses its sub-record there.
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments((fs::path(dir.path()) / ShardDirName(3)).string());
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments->empty());
  const std::string last_segment = segments->back().second;
  const std::string saved_segment_bytes = [&] {
    std::ifstream in(last_segment, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  fs::resize_file(last_segment, fs::file_size(last_segment) - 5);
  report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exit_code, kFsckTornTail) << report->ToString();
  { std::ofstream(last_segment, std::ios::binary) << saved_segment_bytes; }

  // An entire chain missing -> completeness fails mid-range -> kFsckWalGap.
  const std::string chain0 = (fs::path(dir.path()) / ShardDirName(0)).string();
  std::map<std::string, std::string> saved_chain0;
  Result<std::vector<std::pair<uint64_t, std::string>>> chain0_segments =
      ListWalSegments(chain0);
  ASSERT_TRUE(chain0_segments.ok());
  for (const auto& [seq, path] : *chain0_segments) {
    std::ifstream in(path, std::ios::binary);
    saved_chain0[path] = std::string((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
    fs::remove(path);
  }
  report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exit_code, kFsckWalGap) << report->ToString();
  for (const auto& [path, bytes] : saved_chain0) {
    std::ofstream(path, std::ios::binary) << bytes;
  }

  // A referenced shard snapshot corrupted -> kFsckBadSnapshot.
  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir.path());
  ASSERT_TRUE(manifests.ok());
  Result<ManifestInfo> newest = ReadManifest(manifests->back().second);
  ASSERT_TRUE(newest.ok());
  const std::string snap =
      (fs::path(dir.path()) / ShardDirName(2) /
       SnapshotFileName(newest->shards[2].snapshot_seq))
          .string();
  const std::string saved_snap_bytes = [&] {
    std::ifstream in(snap, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  CorruptByteAt(snap, fs::file_size(snap) / 2);
  report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exit_code, kFsckBadSnapshot) << report->ToString();

  // The same snapshot deleted -> kFsckMissingArtifact (worse than orphan).
  fs::remove(snap);
  report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exit_code, kFsckMissingArtifact) << report->ToString();
  { std::ofstream(snap, std::ios::binary) << saved_snap_bytes; }

  // A corrupted manifest -> kFsckBadManifest, plus the orphan verdict for
  // the snapshots only that manifest referenced; the exit code is the max.
  CorruptByteAt(manifests->back().second,
                fs::file_size(manifests->back().second) - 2);
  report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exit_code, kFsckBadManifest) << report->ToString();
}

TEST(ShardedDurabilityTest, FsckReportToJsonMirrorsTheReport) {
  std::vector<Round> rounds = MakeRounds(4);
  ScopedTempDir dir("fsck_json");
  const ScubaOptions opt = MakeOptions(2);
  RunDurably(rounds, opt, dir.path());

  // Clean directory: the JSON mirrors the counters and carries empty lists.
  Result<FsckReport> report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->exit_code, kFsckOk) << report->ToString();
  std::string json = report->ToJson();
  EXPECT_NE(json.find("\"sharded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"problems\":[]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"manifests_valid\":" +
                      std::to_string(report->manifests_valid)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"wal_records_scanned\":" +
                      std::to_string(report->wal_records_scanned)),
            std::string::npos)
      << json;

  // Damage the directory: the verdict and the problem text (JSON-escaped,
  // quoted) must appear.
  const std::string tmp =
      (fs::path(dir.path()) / ShardDirName(0) / "snapshot-junk.tmp").string();
  { std::ofstream(tmp, std::ios::binary) << "partial"; }
  report = FsckDurableDir(dir.path());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->exit_code, kFsckOrphan);
  json = report->ToJson();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":" + std::to_string(kFsckOrphan)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("snapshot-junk.tmp"), std::string::npos) << json;
  ASSERT_FALSE(report->problems.empty());
  EXPECT_NE(json.find("\"problems\":[\""), std::string::npos) << json;
}

TEST(ShardedDurabilityTest, PruneRetainsOnlyManifestReferencedGenerations) {
  // 10 rounds, checkpoint every 2, keep 2 -> generations 1..5 written,
  // {4, 5} retained.
  std::vector<Round> rounds = MakeRounds(10);
  ScopedTempDir dir("prune_generations");
  const ScubaOptions opt = MakeOptions(2);
  const std::string final_digest = RunDurably(rounds, opt, dir.path());

  Result<std::vector<std::pair<uint64_t, std::string>>> manifests =
      ListManifests(dir.path());
  ASSERT_TRUE(manifests.ok());
  ASSERT_EQ(manifests->size(), 2u) << "keep_last_k=2 retains 2 generations";
  EXPECT_EQ((*manifests)[0].first, 4u);
  EXPECT_EQ((*manifests)[1].first, 5u);
  for (uint32_t s = 0; s < 2; ++s) {
    Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
        ListSnapshots((fs::path(dir.path()) / ShardDirName(s)).string());
    ASSERT_TRUE(snapshots.ok());
    ASSERT_EQ(snapshots->size(), 2u) << "shard " << s;
    EXPECT_EQ((*snapshots)[0].first, 4u);
    EXPECT_EQ((*snapshots)[1].first, 5u);
  }

  // The regression: generation 4's artifacts must remain recoverable after
  // the prune. Delete generation 5's manifest (as a torn rename would leave
  // it unreadable) and recover — the fallback generation still has its
  // snapshots AND every WAL record from ITS base onward.
  fs::remove((*manifests)[1].second);
  std::unique_ptr<ShardedEngine> engine = MakeSharded(opt);
  Result<ShardedRecoveryReport> report = RecoverShardedEngine(
      dir.path(), engine.get(), /*validator=*/nullptr, /*rng=*/nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 4u);
  EXPECT_EQ(report->base_seq, 8u);
  EXPECT_EQ(report->rounds_replayed, 2u);
  EXPECT_EQ(report->next_seq, 10u);
  EXPECT_EQ(StateDigest(*engine), final_digest);
}

TEST(ShardedDurabilityTest, CheckpointRestoresAcrossShardCounts) {
  std::vector<Round> rounds = MakeRounds(5);
  ScopedTempDir dir("checkpoint_restore");
  std::unique_ptr<ShardedEngine> engine = MakeSharded(MakeOptions(4));
  for (size_t r = 0; r < rounds.size(); ++r) {
    ASSERT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    ASSERT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
  }
  const std::string digest = StateDigest(*engine);
  ASSERT_TRUE(engine->Checkpoint(dir.path()).ok());

  for (uint32_t shards : {3u, 1u, 4u}) {
    std::unique_ptr<ShardedEngine> restored = MakeSharded(MakeOptions(shards));
    ASSERT_TRUE(restored->Restore(dir.path()).ok()) << shards << " shards";
    EXPECT_EQ(StateDigest(*restored), digest) << shards << " shards";
    EXPECT_EQ(restored->StatsSnapshot().eval.evaluations, rounds.size());
  }

  // Semantically different options carry a different fingerprint: Restore
  // must refuse rather than mix incompatible states.
  ScubaOptions other = MakeOptions(2);
  other.theta_d = other.theta_d + 3.0;
  std::unique_ptr<ShardedEngine> mismatched = MakeSharded(other);
  Status s = mismatched->Restore(dir.path());
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
}

TEST(ShardedDurabilityTest, EmptySubBatchesKeepChainsContiguous) {
  // Every tuple lands in stripe 0 (all y < region_height / 4): chains 1..3
  // must still receive an empty sub-record per batch, or their sequences
  // would gap and recovery would refuse the log.
  // 5 rounds with checkpoints every 2: the final batch (seq 4) stays
  // WAL-only, so recovery exercises the merge of 1 full + 3 empty
  // sub-records.
  std::vector<Round> rounds = MakeRounds(5, /*y_span=*/40.0);
  ScopedTempDir dir("empty_subbatches");
  const ScubaOptions opt = MakeOptions(4);
  const std::string final_digest = RunDurably(rounds, opt, dir.path());

  for (uint32_t s = 0; s < 4; ++s) {
    Result<WalContents> contents = ReadWal(
        (fs::path(dir.path()) / ShardDirName(s)).string(),
        /*tolerate_routed_segment_gaps=*/true);
    ASSERT_TRUE(contents.ok()) << "chain " << s;
    for (const WalRecord& record : contents->records) {
      EXPECT_TRUE(record.routed);
      EXPECT_EQ(record.shard_count, 4u);
      if (s != 0) {
        EXPECT_TRUE(record.objects.empty()) << "chain " << s;
        EXPECT_TRUE(record.queries.empty()) << "chain " << s;
      }
    }
  }

  std::unique_ptr<ShardedEngine> engine = MakeSharded(opt);
  Result<ShardedRecoveryReport> report = RecoverShardedEngine(
      dir.path(), engine.get(), /*validator=*/nullptr, /*rng=*/nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->base_seq, 4u);
  EXPECT_EQ(report->batches_replayed, 1u);
  EXPECT_EQ(report->next_seq, 5u);
  EXPECT_EQ(StateDigest(*engine), final_digest);
}

}  // namespace
}  // namespace scuba
