// Chaos soak for the shard fault isolation layer (docs/ARCHITECTURE.md §13):
// a long seeded run with rate-based fault injection across every class,
// periodic checkpoints feeding online recovery, and both isolation policies.
// After the storm the engine must audit clean (degrade: every non-evicted
// stripe; reassign: the whole reduced layout), reproduce bit-identically
// under the same seed, and — when every incident recovered — converge to the
// uninterrupted twin's exact state hash.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/result_set.h"
#include "core/scuba_engine.h"
#include "persist/snapshot.h"
#include "shard/shard_durability.h"
#include "shard/shard_fault_injector.h"
#include "shard/shard_supervisor.h"
#include "shard/sharded_engine.h"

namespace scuba {
namespace {

namespace fs = std::filesystem;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_((fs::current_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// Deterministic drifting stream covering all four stripes of a 4-shard
/// layout, with two groups parked against stripe borders so corrupt-state
/// faults always find a border cluster to damage.
std::vector<Round> MakeRounds(int rounds) {
  const double group_y[] = {1200.0, 2460.0, 4960.0, 7400.0};
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (uint32_t i = 0; i < 64; ++i) {
      const int group = i % 4;
      const Point pos{500.0 + 2200.0 * group + 11.0 * (r % 40) +
                          7.0 * (i / 4),
                      group_y[group] + 3.0 * (i / 4 % 5)};
      if (i % 5 == 2) {
        QueryUpdate u;
        u.qid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.range_width = 150.0;
        u.range_height = 150.0;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.attrs = 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

struct ChaosOutcome {
  std::vector<ResultSet> rounds;
  uint64_t final_hash = 0;
  uint32_t final_shards = 0;
  SupervisionStats stats;
  uint64_t faults_injected = 0;
};

/// One full chaos run: durable, supervised, rate-based injection.
ChaosOutcome RunChaos(const std::vector<Round>& rounds, const std::string& dir,
                      ShardFailurePolicy policy, uint64_t seed,
                      uint32_t threads) {
  ScubaOptions opt;
  opt.shards = 4;
  opt.join_threads = threads;
  opt.checkpoint.every_n_rounds = 2;
  opt.checkpoint.keep_last_k = 2;
  opt.supervision.on_failure = policy;
  opt.supervision.max_recovery_attempts = 2;
  opt.supervision.fault_seed = seed;
  opt.supervision.fault_rate = 0.02;  // Per class per shard per round.

  Result<std::unique_ptr<ShardedEngine>> engine = ShardedEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  Result<std::unique_ptr<ShardedDurabilityManager>> manager =
      ShardedDurabilityManager::Open(dir, opt.checkpoint, engine->get(),
                                     /*validator=*/nullptr, /*rng=*/nullptr,
                                     /*crash=*/nullptr);
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  (*engine)->set_stripe_recovery([dir](ShardedEngine* e, uint32_t s) {
    return RecoverShardStripe(dir, e, s, /*validator_config=*/nullptr);
  });
  (*engine)->set_on_layout_changed(
      [&manager] { return (*manager)->OnLayoutChanged(); });

  ChaosOutcome out;
  ResultSet results;
  for (size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_TRUE((*manager)
                    ->LogBatch(static_cast<Timestamp>(r + 1), true,
                               rounds[r].objects, rounds[r].queries)
                    .ok());
    EXPECT_TRUE(
        (*engine)->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    Status s = (*engine)->Evaluate(static_cast<Timestamp>(r + 1), &results);
    EXPECT_TRUE(s.ok()) << "round " << (r + 1) << ": " << s.ToString();
    out.rounds.push_back(results);
    EXPECT_TRUE((*manager)->OnRoundComplete().ok());
  }
  out.final_hash = EngineStateHash(**engine);
  out.final_shards = (*engine)->shard_count();
  out.stats = (*engine)->supervisor()->stats();
  out.faults_injected =
      (*engine)->supervisor()->injector()->stats().TotalInjected();

  // Audit-clean after the storm: under kReassign the whole (possibly
  // reduced) layout must be clean; under kDegrade an evicted stripe keeps
  // its damage forever, so only non-evicted stripes are held to it.
  for (uint32_t s = 0; s < (*engine)->shard_count(); ++s) {
    if ((*engine)->supervisor()->record(s).health == ShardHealth::kEvicted) {
      continue;
    }
    EXPECT_TRUE((*engine)->AuditShardStripe(s).clean())
        << "shard " << s << " dirty after the storm:\n"
        << (*engine)->supervisor()->HealthDump();
  }
  return out;
}

class ChaosSoakTest
    : public ::testing::TestWithParam<std::tuple<ShardFailurePolicy,
                                                 uint32_t>> {};

TEST_P(ChaosSoakTest, StormIsDeterministicAuditCleanAndConvergent) {
  const auto [policy, threads] = GetParam();
  const int kRounds = 40;
  const uint64_t kSeed = 0xC4A05;
  const std::vector<Round> rounds = MakeRounds(kRounds);

  ScopedTempDir dir_a("chaos_a");
  ScopedTempDir dir_b("chaos_b");
  const ChaosOutcome a = RunChaos(rounds, dir_a.path(), policy, kSeed, threads);
  const ChaosOutcome b = RunChaos(rounds, dir_b.path(), policy, kSeed, threads);

  // The soak is only a soak if the storm actually hit.
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_GT(a.stats.shard_failures, 0u);
  EXPECT_GT(a.stats.degraded_rounds, 0u);

  // Same seed => same storm, same degraded rounds, same results, same state.
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r], b.rounds[r]) << "round " << (r + 1);
    EXPECT_EQ(a.rounds[r].degraded_shards(), b.rounds[r].degraded_shards())
        << "round " << (r + 1);
  }
  EXPECT_EQ(a.final_hash, b.final_hash);
  EXPECT_EQ(a.final_shards, b.final_shards);
  EXPECT_EQ(a.stats.shard_failures, b.stats.shard_failures);
  EXPECT_EQ(a.stats.shard_recoveries, b.stats.shard_recoveries);
  EXPECT_EQ(a.stats.shard_evictions, b.stats.shard_evictions);
  EXPECT_EQ(a.stats.degraded_rounds, b.stats.degraded_rounds);
  EXPECT_EQ(a.faults_injected, b.faults_injected);

  // Hash convergence with the uninterrupted twin whenever every incident
  // healed (recoveries caught up with failures and nothing was evicted).
  if (a.stats.shard_evictions == 0 &&
      a.stats.shard_recoveries == a.stats.shard_failures) {
    ScubaOptions clean_opt;
    clean_opt.shards = 4;
    clean_opt.join_threads = threads;
    Result<std::unique_ptr<ShardedEngine>> twin =
        ShardedEngine::Create(clean_opt);
    ASSERT_TRUE(twin.ok());
    ResultSet results;
    for (size_t r = 0; r < rounds.size(); ++r) {
      ASSERT_TRUE(
          (*twin)->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
      ASSERT_TRUE(
          (*twin)->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    }
    EXPECT_EQ(a.final_hash, EngineStateHash(**twin));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Storm, ChaosSoakTest,
    ::testing::Combine(::testing::Values(ShardFailurePolicy::kDegrade,
                                         ShardFailurePolicy::kReassign),
                       ::testing::Values(1u, 4u)));

}  // namespace
}  // namespace scuba
