#include "index/rtree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

RTree::Entry E(uint32_t id, double x0, double y0, double x1, double y1) {
  return RTree::Entry{id, Rect{x0, y0, x1, y1}};
}

TEST(RTreeTest, EmptyTree) {
  Result<RTree> t = RTree::BulkLoad({});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->empty());
  EXPECT_EQ(t->size(), 0u);
  EXPECT_EQ(t->height(), 0u);
  std::vector<uint32_t> out;
  t->SearchPoint({0, 0}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(t->BoundingBox().Empty());
}

TEST(RTreeTest, RejectsBadInput) {
  EXPECT_TRUE(RTree::BulkLoad({E(1, 5, 5, 1, 1)}).status().IsInvalidArgument());
  EXPECT_TRUE(
      RTree::BulkLoad({E(1, 0, 0, 1, 1)}, 1).status().IsInvalidArgument());
}

TEST(RTreeTest, SingleEntry) {
  Result<RTree> t = RTree::BulkLoad({E(7, 10, 10, 20, 20)});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 1u);
  EXPECT_EQ(t->height(), 1u);
  std::vector<uint32_t> out;
  t->SearchPoint({15, 15}, &out);
  EXPECT_EQ(out, std::vector<uint32_t>{7});
  out.clear();
  t->SearchPoint({25, 15}, &out);
  EXPECT_TRUE(out.empty());
  // Boundary counts (closed rects).
  out.clear();
  t->SearchPoint({10, 10}, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(RTreeTest, PointInOverlappingRects) {
  Result<RTree> t = RTree::BulkLoad({
      E(1, 0, 0, 10, 10),
      E(2, 5, 5, 15, 15),
      E(3, 20, 20, 30, 30),
  });
  ASSERT_TRUE(t.ok());
  std::vector<uint32_t> out;
  t->SearchPoint({7, 7}, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2}));
}

TEST(RTreeTest, SearchRect) {
  Result<RTree> t = RTree::BulkLoad({
      E(1, 0, 0, 10, 10),
      E(2, 50, 50, 60, 60),
      E(3, 100, 0, 110, 10),
  });
  ASSERT_TRUE(t.ok());
  std::vector<uint32_t> out;
  t->SearchRect(Rect{5, 5, 105, 7}, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 3}));
  out.clear();
  t->SearchRect(Rect{5, 5, 4, 4}, &out);  // empty probe
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, BuildsMultipleLevels) {
  std::vector<RTree::Entry> entries;
  for (uint32_t i = 0; i < 1000; ++i) {
    double x = (i % 100) * 10.0;
    double y = (i / 100) * 10.0;
    entries.push_back(E(i, x, y, x + 5, y + 5));
  }
  Result<RTree> t = RTree::BulkLoad(std::move(entries), 8);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 1000u);
  EXPECT_GE(t->height(), 3u);
  EXPECT_GT(t->EstimateMemoryUsage(), 1000 * sizeof(RTree::Entry));
  // Root box covers everything.
  EXPECT_TRUE(t->BoundingBox().Contains(Rect{0, 0, 995, 95}));
}

// Property: tree search equals brute-force filtering for random data and
// probes, across fan-outs.
struct RTreeParam {
  uint64_t seed;
  uint32_t fanout;
};

class RTreePropertyTest : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(RTreePropertyTest, MatchesBruteForce) {
  Rng rng(GetParam().seed);
  std::vector<RTree::Entry> entries;
  for (uint32_t i = 0; i < 500; ++i) {
    double x = rng.NextDouble(0, 950);
    double y = rng.NextDouble(0, 950);
    entries.push_back(
        E(i, x, y, x + rng.NextDouble(0.1, 80), y + rng.NextDouble(0.1, 80)));
  }
  std::vector<RTree::Entry> copy = entries;
  Result<RTree> t = RTree::BulkLoad(std::move(copy), GetParam().fanout);
  ASSERT_TRUE(t.ok());

  for (int probe = 0; probe < 100; ++probe) {
    Point p{rng.NextDouble(0, 1000), rng.NextDouble(0, 1000)};
    std::vector<uint32_t> got;
    t->SearchPoint(p, &got);
    std::set<uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got.size(), got_set.size()) << "duplicates returned";
    std::set<uint32_t> expected;
    for (const RTree::Entry& e : entries) {
      if (e.bounds.Contains(p)) expected.insert(e.id);
    }
    EXPECT_EQ(got_set, expected);
  }
  for (int probe = 0; probe < 50; ++probe) {
    double x = rng.NextDouble(0, 900);
    double y = rng.NextDouble(0, 900);
    Rect r{x, y, x + rng.NextDouble(1, 150), y + rng.NextDouble(1, 150)};
    std::vector<uint32_t> got;
    t->SearchRect(r, &got);
    std::set<uint32_t> got_set(got.begin(), got.end());
    std::set<uint32_t> expected;
    for (const RTree::Entry& e : entries) {
      if (Intersects(e.bounds, r)) expected.insert(e.id);
    }
    EXPECT_EQ(got_set, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RTreePropertyTest,
                         ::testing::Values(RTreeParam{1, 4}, RTreeParam{2, 16},
                                           RTreeParam{3, 64},
                                           RTreeParam{4, 2}));

}  // namespace
}  // namespace scuba
