#include "baseline/grid_join_engine.h"

#include <gtest/gtest.h>

#include "baseline/naive_join_engine.h"
#include "common/rng.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, Timestamp t = 0) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = t;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 40, double h = 40,
                Timestamp t = 0) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = t;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  u.range_width = w;
  u.range_height = h;
  return u;
}

std::unique_ptr<GridJoinEngine> MakeEngine(uint32_t cells = 100) {
  GridJoinOptions opt;
  opt.grid_cells = cells;
  Result<std::unique_ptr<GridJoinEngine>> e = GridJoinEngine::Create(opt);
  EXPECT_TRUE(e.ok());
  return std::move(e).value();
}

TEST(GridJoinEngineTest, CreateValidates) {
  GridJoinOptions opt;
  opt.grid_cells = 0;
  EXPECT_TRUE(GridJoinEngine::Create(opt).status().IsInvalidArgument());
  opt = GridJoinOptions{};
  opt.region = Rect{10, 0, 0, 10};
  EXPECT_TRUE(GridJoinEngine::Create(opt).status().IsInvalidArgument());
}

TEST(GridJoinEngineTest, BasicMatch) {
  std::unique_ptr<GridJoinEngine> e = MakeEngine();
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {100, 100})).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {110, 110})).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(2, {5000, 5000})).ok());
  ResultSet r;
  ASSERT_TRUE(e->Evaluate(1, &r).ok());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(1, 1));
}

TEST(GridJoinEngineTest, QuerySpanningCellsFindsAllObjects) {
  std::unique_ptr<GridJoinEngine> e = MakeEngine(100);  // 100-unit cells
  // Query centered on a cell boundary with a range covering two cells.
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {200, 150}, 160, 40)).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {130, 150})).ok());  // left cell
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(2, {270, 150})).ok());  // right cell
  ResultSet r;
  ASSERT_TRUE(e->Evaluate(1, &r).ok());
  EXPECT_TRUE(r.Contains(1, 1));
  EXPECT_TRUE(r.Contains(1, 2));
  EXPECT_EQ(r.size(), 2u);
}

TEST(GridJoinEngineTest, UpdatesRelocateEntities) {
  std::unique_ptr<GridJoinEngine> e = MakeEngine();
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {100, 100})).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {110, 110}, 0)).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {5000, 5000}, 1)).ok());
  ResultSet r;
  ASSERT_TRUE(e->Evaluate(1, &r).ok());
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(e->ObjectCount(), 1u);
  EXPECT_EQ(e->object_grid().size(), 1u);
  // Query moves too.
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {4990, 4990}, 40, 40, 1)).ok());
  ASSERT_TRUE(e->Evaluate(2, &r).ok());
  EXPECT_TRUE(r.Contains(1, 1));
}

TEST(GridJoinEngineTest, FinerGridsUseMoreMemory) {
  std::unique_ptr<GridJoinEngine> coarse = MakeEngine(50);
  std::unique_ptr<GridJoinEngine> fine = MakeEngine(150);
  Rng rng(3);
  for (uint32_t i = 0; i < 500; ++i) {
    Point p{rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    ASSERT_TRUE(coarse->IngestObjectUpdate(Obj(i, p)).ok());
    ASSERT_TRUE(fine->IngestObjectUpdate(Obj(i, p)).ok());
  }
  EXPECT_GT(fine->EstimateMemoryUsage(), coarse->EstimateMemoryUsage());
}

TEST(GridJoinEngineTest, FinerGridsDoFewerComparisons) {
  std::unique_ptr<GridJoinEngine> coarse = MakeEngine(20);
  std::unique_ptr<GridJoinEngine> fine = MakeEngine(200);
  Rng rng(5);
  ResultSet r;
  for (uint32_t i = 0; i < 300; ++i) {
    Point p{rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    ASSERT_TRUE(coarse->IngestObjectUpdate(Obj(i, p)).ok());
    ASSERT_TRUE(fine->IngestObjectUpdate(Obj(i, p)).ok());
    Point q{rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    ASSERT_TRUE(coarse->IngestQueryUpdate(Qry(i, q)).ok());
    ASSERT_TRUE(fine->IngestQueryUpdate(Qry(i, q)).ok());
  }
  ASSERT_TRUE(coarse->Evaluate(1, &r).ok());
  ASSERT_TRUE(fine->Evaluate(1, &r).ok());
  EXPECT_GT(coarse->stats().comparisons, fine->stats().comparisons);
}

// Property: the grid join agrees exactly with the naive oracle.
class GridJoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridJoinEquivalenceTest, MatchesNaiveOracle) {
  Rng rng(GetParam());
  std::unique_ptr<GridJoinEngine> grid = MakeEngine(64);
  NaiveJoinEngine naive;
  for (uint32_t i = 0; i < 400; ++i) {
    Point p{rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    LocationUpdate o = Obj(i, p);
    ASSERT_TRUE(grid->IngestObjectUpdate(o).ok());
    ASSERT_TRUE(naive.IngestObjectUpdate(o).ok());
  }
  for (uint32_t i = 0; i < 200; ++i) {
    Point p{rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    QueryUpdate q = Qry(i, p, rng.NextDouble(10, 400), rng.NextDouble(10, 400));
    ASSERT_TRUE(grid->IngestQueryUpdate(q).ok());
    ASSERT_TRUE(naive.IngestQueryUpdate(q).ok());
  }
  ResultSet rg;
  ResultSet rn;
  ASSERT_TRUE(grid->Evaluate(1, &rg).ok());
  ASSERT_TRUE(naive.Evaluate(1, &rn).ok());
  EXPECT_EQ(rg, rn) << "grid join must agree exactly with the oracle";
  EXPECT_GT(rn.size(), 0u);  // sanity: the workload produces matches
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridJoinEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace scuba
