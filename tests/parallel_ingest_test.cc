// Determinism coverage for batched (parallel) ingestion: IngestBatch at any
// ingest_threads count must leave the engine in a bit-identical state to the
// serial per-update path — same clusters (every field, member order
// included), same clusterer counters, same grid registrations, and identical
// ResultSets from every subsequent Evaluate round.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/scuba_engine.h"
#include "state_digest.h"

namespace scuba {
namespace {

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// A seeded multi-round workload exercising every ingest path: in-place
/// refreshes (co-travelling groups), departures (destination changes),
/// absorbs, brand-new entities, sparse update rates (stale members and
/// expiring clusters), and duplicate entity updates inside one batch.
std::vector<Round> MakeRounds(uint64_t seed, int rounds) {
  Rng rng(seed);
  const int kGroups = 12;
  struct Entity {
    uint32_t id;
    bool is_query;
    int group;
    Point pos;
    double range;
  };
  std::vector<Entity> entities;
  for (uint32_t i = 0; i < 220; ++i) {
    int group = static_cast<int>(rng.NextDouble(0, kGroups));
    Point base{500.0 + 700.0 * group, 500.0 + 600.0 * (group % 4)};
    entities.push_back(Entity{i, (i % 3 == 2),
                              group,
                              {base.x + rng.NextDouble(-60, 60),
                               base.y + rng.NextDouble(-60, 60)},
                              rng.NextDouble(40, 200)});
  }

  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    Round& round = out[r];
    for (Entity& e : entities) {
      if (rng.NextDouble(0, 1) < 0.25) continue;  // stale this tick
      // Groups drift together so refreshes dominate; ~8% of updates hop to
      // another group's area with a new destination (departure + re-cluster).
      if (rng.NextDouble(0, 1) < 0.08) {
        e.group = static_cast<int>(rng.NextDouble(0, kGroups));
        Point base{500.0 + 700.0 * e.group, 500.0 + 600.0 * (e.group % 4)};
        e.pos = {base.x + rng.NextDouble(-60, 60),
                 base.y + rng.NextDouble(-60, 60)};
      } else {
        e.pos = {e.pos.x + rng.NextDouble(-25, 25),
                 e.pos.y + rng.NextDouble(-25, 25)};
      }
      if (e.is_query) {
        QueryUpdate u;
        u.qid = e.id;
        u.position = e.pos;
        u.speed = 10.0 + (e.id % 5);
        u.dest_node = static_cast<NodeId>(e.group);
        u.dest_position = Point{9500, 9500};
        u.range_width = e.range;
        u.range_height = e.range;
        u.time = static_cast<Timestamp>(r + 1);
        round.queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = e.id;
        u.position = e.pos;
        u.speed = 10.0 + (e.id % 5);
        u.dest_node = static_cast<NodeId>(e.group);
        u.dest_position = Point{9500, 9500};
        u.attrs = (e.id % 4 == 0) ? 0x3u : 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        round.objects.push_back(u);
        // Occasionally deliver the same object twice in one batch (a late
        // correction): both must be applied in order, like the serial path.
        if (e.id % 37 == 0) {
          u.position = {u.position.x + 5.0, u.position.y + 5.0};
          round.objects.push_back(u);
        }
      }
    }
  }
  return out;
}

bool StatsEqual(const ClustererStats& a, const ClustererStats& b) {
  return a.clusters_created == b.clusters_created &&
         a.members_absorbed == b.members_absorbed &&
         a.members_refreshed == b.members_refreshed &&
         a.members_departed == b.members_departed &&
         a.clusters_dissolved_empty == b.clusters_dissolved_empty &&
         a.members_shed == b.members_shed;
}

struct RunOutcome {
  std::vector<ResultSet> rounds;
  std::vector<std::string> digests;
  ClustererStats clusterer;
  uint64_t dissolved_expired = 0;
};

RunOutcome RunWorkload(const std::vector<Round>& rounds, uint32_t ingest_threads,
               bool use_batch_api, double eta = 0.0) {
  ScubaOptions opt;
  opt.ingest_threads = ingest_threads;
  if (eta > 0.0) {
    opt.shedding.mode = LoadSheddingMode::kFixed;
    opt.shedding.eta = eta;
  }
  std::unique_ptr<ScubaEngine> engine =
      std::move(ScubaEngine::Create(opt).value());
  RunOutcome out;
  Timestamp now = 0;
  for (const Round& round : rounds) {
    now += 2;
    if (use_batch_api) {
      EXPECT_TRUE(engine->IngestBatch(round.objects, round.queries).ok());
    } else {
      for (const LocationUpdate& u : round.objects) {
        EXPECT_TRUE(engine->IngestObjectUpdate(u).ok());
      }
      for (const QueryUpdate& u : round.queries) {
        EXPECT_TRUE(engine->IngestQueryUpdate(u).ok());
      }
    }
    ResultSet results;
    EXPECT_TRUE(engine->Evaluate(now, &results).ok());
    out.rounds.push_back(std::move(results));
    out.digests.push_back(StateDigest(*engine));
  }
  out.clusterer = engine->StatsSnapshot().clusterer;
  out.dissolved_expired = engine->StatsSnapshot().phase.clusters_dissolved_expired;
  return out;
}

class ParallelIngestDeterminismTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelIngestDeterminismTest, BatchMatchesSerialAtEveryThreadCount) {
  std::vector<Round> rounds = MakeRounds(GetParam(), /*rounds=*/5);
  RunOutcome serial = RunWorkload(rounds, /*ingest_threads=*/1, /*use_batch_api=*/false);
  size_t total = 0;
  for (const ResultSet& r : serial.rounds) total += r.size();
  EXPECT_GT(total, 0u) << "workload must produce matches";
  EXPECT_GT(serial.clusterer.members_refreshed, 0u);
  EXPECT_GT(serial.clusterer.members_departed, 0u);

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    RunOutcome batch = RunWorkload(rounds, threads, /*use_batch_api=*/true);
    ASSERT_EQ(batch.rounds.size(), serial.rounds.size());
    for (size_t i = 0; i < serial.rounds.size(); ++i) {
      EXPECT_EQ(batch.rounds[i], serial.rounds[i])
          << "threads=" << threads << " round=" << i;
      EXPECT_EQ(batch.digests[i], serial.digests[i])
          << "threads=" << threads << " round=" << i;
    }
    EXPECT_TRUE(StatsEqual(batch.clusterer, serial.clusterer))
        << "threads=" << threads;
    EXPECT_EQ(batch.dissolved_expired, serial.dissolved_expired)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelIngestDeterminismTest,
                         ::testing::Values(7, 21, 42, 1234));

TEST(ParallelIngestTest, DeterministicUnderLoadShedding) {
  // Shedding makes ingest mutate nuclei on the hot path; the batch path must
  // still match serial bit for bit.
  std::vector<Round> rounds = MakeRounds(77, /*rounds=*/4);
  RunOutcome serial = RunWorkload(rounds, 1, /*use_batch_api=*/false, /*eta=*/0.5);
  EXPECT_GT(serial.clusterer.members_shed, 0u);
  for (uint32_t threads : {2u, 4u}) {
    RunOutcome batch = RunWorkload(rounds, threads, /*use_batch_api=*/true, 0.5);
    for (size_t i = 0; i < serial.rounds.size(); ++i) {
      EXPECT_EQ(batch.rounds[i], serial.rounds[i]) << "round=" << i;
      EXPECT_EQ(batch.digests[i], serial.digests[i]) << "round=" << i;
    }
    EXPECT_TRUE(StatsEqual(batch.clusterer, serial.clusterer));
  }
}

TEST(ParallelIngestTest, RepeatedParallelRunsAreStable) {
  // Scheduling nondeterminism must never leak into engine state: two
  // identical parallel runs produce identical digests.
  std::vector<Round> rounds = MakeRounds(99, /*rounds=*/3);
  RunOutcome first = RunWorkload(rounds, 4, /*use_batch_api=*/true);
  RunOutcome second = RunWorkload(rounds, 4, /*use_batch_api=*/true);
  EXPECT_EQ(first.digests, second.digests);
}

TEST(ParallelIngestTest, StatsReportIngestSplit) {
  std::vector<Round> rounds = MakeRounds(5, /*rounds=*/2);
  ScubaOptions opt;
  opt.ingest_threads = 4;
  std::unique_ptr<ScubaEngine> engine =
      std::move(ScubaEngine::Create(opt).value());
  ASSERT_TRUE(engine->IngestBatch(rounds[0].objects, rounds[0].queries).ok());
  ResultSet results;
  ASSERT_TRUE(engine->Evaluate(2, &results).ok());
  const EvalStats stats = engine->StatsSnapshot().eval;
  EXPECT_EQ(stats.ingest_threads, 4u);
  EXPECT_GT(stats.total_ingest_seconds, 0.0);
  EXPECT_GT(stats.total_postjoin_seconds, 0.0);
  EXPECT_GT(stats.total_ingest_worker_seconds, 0.0);
  EXPECT_GT(stats.total_postjoin_worker_seconds, 0.0);
  // The legacy aggregate stays the sum of the split, so existing consumers
  // (CSV columns, FormatStats) keep their meaning.
  EXPECT_DOUBLE_EQ(
      stats.total_maintenance_seconds,
      stats.total_ingest_seconds + stats.total_postjoin_seconds);
}

TEST(ParallelIngestTest, BatchRejectsInvalidUpdateUpfront) {
  ScubaOptions opt;
  opt.ingest_threads = 2;
  std::unique_ptr<ScubaEngine> engine =
      std::move(ScubaEngine::Create(opt).value());
  LocationUpdate good;
  good.oid = 1;
  good.position = {100, 100};
  good.speed = 10.0;
  good.dest_node = 1;
  good.dest_position = {500, 500};
  LocationUpdate bad = good;
  bad.oid = 2;
  bad.speed = -1.0;  // invalid
  std::vector<LocationUpdate> objects = {good, bad};
  EXPECT_FALSE(engine->IngestBatch(objects, {}).ok());
  // Whole-batch validation: nothing was ingested, not even the valid update.
  EXPECT_EQ(engine->store().ClusterCount(), 0u);
}

}  // namespace
}  // namespace scuba
