#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/circle.h"
#include "geometry/point.h"
#include "geometry/polar.h"
#include "geometry/rect.h"

namespace scuba {
namespace {

// ---------- Point / Vec2 ----------

TEST(PointTest, VectorArithmetic) {
  Vec2 a{1.0, 2.0};
  Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(PointTest, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  Point p{0.0, 0.0};
  p += Vec2{5.0, 5.0};
  EXPECT_EQ(p, (Point{5.0, 5.0}));
}

TEST(PointTest, NormAndNormalized) {
  Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  Vec2 n = v.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
}

TEST(PointTest, ZeroVectorNormalizesToZero) {
  Vec2 z{0.0, 0.0};
  EXPECT_EQ(z.Normalized(), (Vec2{0.0, 0.0}));
}

TEST(PointTest, PointMinusPointIsVector) {
  Point a{5.0, 7.0};
  Point b{2.0, 3.0};
  EXPECT_EQ(a - b, (Vec2{3.0, 4.0}));
  EXPECT_EQ(b + (a - b), a);
}

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, Lerp) {
  Point a{0, 0};
  Point b{10, 20};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), (Point{5, 10}));
}

TEST(PointTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual({1.0, 1.0}, {1.0 + 1e-12, 1.0}));
  EXPECT_FALSE(ApproxEqual({1.0, 1.0}, {1.1, 1.0}));
}

TEST(PointTest, ToStringFormat) {
  EXPECT_EQ((Point{1.5, -2.0}).ToString(), "(1.5, -2)");
  EXPECT_EQ((Vec2{0.0, 3.25}).ToString(), "<0, 3.25>");
}

// ---------- Polar ----------

TEST(PolarTest, Cardinal) {
  Point pole{0, 0};
  PolarCoord east = ToPolar({5, 0}, pole);
  EXPECT_DOUBLE_EQ(east.r, 5.0);
  EXPECT_DOUBLE_EQ(east.theta, 0.0);
  PolarCoord north = ToPolar({0, 5}, pole);
  EXPECT_NEAR(north.theta, M_PI / 2, 1e-12);
  PolarCoord west = ToPolar({-5, 0}, pole);
  EXPECT_NEAR(std::fabs(west.theta), M_PI, 1e-12);
}

TEST(PolarTest, PoleMapsToOrigin) {
  PolarCoord pc = ToPolar({3, 3}, {3, 3});
  EXPECT_EQ(pc.r, 0.0);
  EXPECT_EQ(pc.theta, 0.0);
}

TEST(PolarTest, FromPolarBasics) {
  Point pole{10, 10};
  Point p = FromPolar({5.0, M_PI / 2}, pole);
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 15.0, 1e-12);
}

// Property sweep: polar round-trip is exact to floating tolerance for random
// points and poles.
class PolarRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolarRoundTripTest, RoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    Point pole{rng.NextDouble(-1e4, 1e4), rng.NextDouble(-1e4, 1e4)};
    Point p{rng.NextDouble(-1e4, 1e4), rng.NextDouble(-1e4, 1e4)};
    Point back = FromPolar(ToPolar(p, pole), pole);
    EXPECT_NEAR(back.x, p.x, 1e-8);
    EXPECT_NEAR(back.y, p.y, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolarRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- Circle ----------

TEST(CircleTest, ContainsPoint) {
  Circle c{{0, 0}, 5.0};
  EXPECT_TRUE(c.Contains({3, 4}));   // on boundary
  EXPECT_TRUE(c.Contains({0, 0}));
  EXPECT_TRUE(c.Contains({2, 2}));
  EXPECT_FALSE(c.Contains({4, 4}));
}

TEST(CircleTest, ZeroRadiusIsPoint) {
  Circle c{{1, 1}, 0.0};
  EXPECT_TRUE(c.Contains({1, 1}));
  EXPECT_FALSE(c.Contains({1.0001, 1}));
}

TEST(CircleTest, OverlapsBasics) {
  EXPECT_TRUE(Overlaps({{0, 0}, 2}, {{3, 0}, 2}));     // intersecting
  EXPECT_TRUE(Overlaps({{0, 0}, 2}, {{4, 0}, 2}));     // touching
  EXPECT_FALSE(Overlaps({{0, 0}, 2}, {{4.01, 0}, 2})); // separated
  EXPECT_TRUE(Overlaps({{0, 0}, 5}, {{1, 0}, 1}));     // containment
}

TEST(CircleTest, OverlapsIsSymmetric) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    Circle a{{rng.NextDouble(-10, 10), rng.NextDouble(-10, 10)},
             rng.NextDouble(0, 5)};
    Circle b{{rng.NextDouble(-10, 10), rng.NextDouble(-10, 10)},
             rng.NextDouble(0, 5)};
    EXPECT_EQ(Overlaps(a, b), Overlaps(b, a));
  }
}

TEST(CircleTest, ContainmentImpliesOverlap) {
  Rng rng(78);
  for (int i = 0; i < 500; ++i) {
    Circle outer{{rng.NextDouble(-10, 10), rng.NextDouble(-10, 10)},
                 rng.NextDouble(1, 5)};
    Circle inner{{outer.center.x + rng.NextDouble(-0.5, 0.5),
                  outer.center.y + rng.NextDouble(-0.5, 0.5)},
                 rng.NextDouble(0, 0.4)};
    if (ContainsCircle(outer, inner)) {
      EXPECT_TRUE(Overlaps(outer, inner));
    }
  }
}

// Pins the paper's Algorithm 2 discrepancy: the (R_L - R_R)^2 formula is a
// containment test that misses genuinely overlapping clusters, which is why
// the engine uses the corrected predicate (DESIGN.md deviation 1).
TEST(CircleTest, PaperAlgorithm2FormulaIsContainmentNotOverlap) {
  Circle a{{0, 0}, 2.0};
  Circle b{{3, 0}, 2.0};
  // The circles clearly overlap (centers 3 apart, radii sum 4)...
  EXPECT_TRUE(Overlaps(a, b));
  // ...but the paper's formula dist^2 < (R_L - R_R)^2 = 0 rejects them.
  EXPECT_FALSE(SquaredDistance(a.center, b.center) <
               (a.radius - b.radius) * (a.radius - b.radius));
  EXPECT_FALSE(ContainsCircle(a, b));
}

TEST(CircleTest, ContainsCircleBasics) {
  EXPECT_TRUE(ContainsCircle({{0, 0}, 5}, {{1, 0}, 2}));
  EXPECT_FALSE(ContainsCircle({{0, 0}, 5}, {{4, 0}, 2}));
  EXPECT_FALSE(ContainsCircle({{0, 0}, 1}, {{0, 0}, 2}));  // inner larger
  EXPECT_TRUE(ContainsCircle({{0, 0}, 2}, {{0, 0}, 2}));   // identical
}

// ---------- Rect ----------

TEST(RectTest, CenteredConstruction) {
  Rect r = Rect::Centered({10, 20}, 4, 6);
  EXPECT_EQ(r.min_x, 8);
  EXPECT_EQ(r.max_x, 12);
  EXPECT_EQ(r.min_y, 17);
  EXPECT_EQ(r.max_y, 23);
  EXPECT_EQ(r.Center(), (Point{10, 20}));
  EXPECT_EQ(r.Width(), 4);
  EXPECT_EQ(r.Height(), 6);
  EXPECT_EQ(r.Area(), 24);
}

TEST(RectTest, EmptyRect) {
  Rect r{5, 5, 3, 8};  // min_x > max_x
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_FALSE(Intersects(r, Rect{0, 0, 10, 10}));
}

TEST(RectTest, ContainsPointClosed) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(r.Contains(Point{10, 10}));
  EXPECT_TRUE(r.Contains(Point{5, 5}));
  EXPECT_FALSE(r.Contains(Point{-0.001, 5}));
  EXPECT_FALSE(r.Contains(Point{5, 10.001}));
}

TEST(RectTest, ContainsRect) {
  Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.Contains(Rect{1, 1, 9, 9}));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect{5, 5, 11, 9}));
}

TEST(RectTest, RectRectIntersection) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(Intersects(a, Rect{5, 5, 15, 15}));
  EXPECT_TRUE(Intersects(a, Rect{10, 10, 20, 20}));  // corner touch
  EXPECT_FALSE(Intersects(a, Rect{10.1, 0, 20, 10}));
  EXPECT_TRUE(Intersects(a, Rect{2, 2, 3, 3}));      // containment
}

TEST(RectTest, ClosestPointInRect) {
  Rect r{0, 0, 10, 10};
  EXPECT_EQ(ClosestPointInRect(r, {5, 5}), (Point{5, 5}));      // inside
  EXPECT_EQ(ClosestPointInRect(r, {-3, 5}), (Point{0, 5}));     // left
  EXPECT_EQ(ClosestPointInRect(r, {15, 15}), (Point{10, 10}));  // corner
}

TEST(RectTest, RectCircleIntersection) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(Intersects(r, Circle{{5, 5}, 1}));      // circle inside
  EXPECT_TRUE(Intersects(r, Circle{{-1, 5}, 1.5}));   // crosses edge
  EXPECT_TRUE(Intersects(r, Circle{{-1, 5}, 1.0}));   // touches edge
  EXPECT_FALSE(Intersects(r, Circle{{-2, 5}, 1.0}));  // separated
  // Near a corner the Euclidean metric matters: center (12,12), radius 2.5
  // does not reach corner (10,10) (distance ~2.83) though the bounding boxes
  // overlap.
  EXPECT_FALSE(Intersects(r, Circle{{12, 12}, 2.5}));
  EXPECT_TRUE(Intersects(r, Circle{{12, 12}, 2.9}));
}

TEST(RectTest, ZeroRadiusCircleEqualsContains) {
  Rng rng(79);
  Rect r{0, 0, 10, 10};
  for (int i = 0; i < 500; ++i) {
    Point p{rng.NextDouble(-5, 15), rng.NextDouble(-5, 15)};
    EXPECT_EQ(r.Contains(p), Intersects(r, Circle{p, 0.0}));
  }
}

TEST(RectTest, UnionAndIntersection) {
  Rect a{0, 0, 5, 5};
  Rect b{3, 3, 10, 10};
  Rect u = Union(a, b);
  EXPECT_EQ(u, (Rect{0, 0, 10, 10}));
  Rect i = Intersection(a, b);
  EXPECT_EQ(i, (Rect{3, 3, 5, 5}));
  Rect disjoint = Intersection(a, Rect{6, 6, 7, 7});
  EXPECT_TRUE(disjoint.Empty());
}

TEST(RectTest, UnionWithEmpty) {
  Rect a{0, 0, 5, 5};
  Rect empty{1, 1, 0, 0};
  EXPECT_EQ(Union(a, empty), a);
  EXPECT_EQ(Union(empty, a), a);
}

// Property: rect-circle intersection agrees with dense point sampling.
class RectCirclePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectCirclePropertyTest, AgreesWithSampling) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Rect r{rng.NextDouble(-5, 0), rng.NextDouble(-5, 0), rng.NextDouble(0, 5),
           rng.NextDouble(0, 5)};
    Circle c{{rng.NextDouble(-8, 8), rng.NextDouble(-8, 8)},
             rng.NextDouble(0, 4)};
    if (!Intersects(r, c)) {
      // No sampled point of the disk may fall in the rect.
      for (int s = 0; s < 50; ++s) {
        double ang = rng.NextDouble(0, 2 * M_PI);
        double rad = c.radius * std::sqrt(rng.NextDouble());
        Point p{c.center.x + rad * std::cos(ang),
                c.center.y + rad * std::sin(ang)};
        EXPECT_FALSE(r.Contains(p))
            << "disjoint verdict but sampled disk point inside rect";
      }
    } else {
      // The closest rect point to the center must be within the radius.
      Point cp = ClosestPointInRect(r, c.center);
      EXPECT_LE(Distance(cp, c.center), c.radius + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectCirclePropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace scuba
