// Load shedding (paper §5, §6.6): fixed-eta and adaptive shedding semantics.

#include <gtest/gtest.h>

#include "baseline/naive_join_engine.h"
#include "core/load_shedder.h"
#include "core/scuba_engine.h"
#include "eval/accuracy.h"
#include "eval/experiment.h"
#include "stream/pipeline.h"

namespace scuba {
namespace {

// ---------- LoadShedder unit tests ----------

TEST(LoadShedderTest, NoneModeNeverSheds) {
  LoadShedder s(LoadSheddingOptions{}, 100.0);
  EXPECT_EQ(s.nucleus_radius(), 0.0);
  s.ObserveMemoryUsage(1ull << 40);
  EXPECT_EQ(s.nucleus_radius(), 0.0);
  EXPECT_EQ(s.adjustments(), 0u);
}

TEST(LoadShedderTest, FixedModePinsEta) {
  LoadSheddingOptions opt;
  opt.mode = LoadSheddingMode::kFixed;
  opt.eta = 0.5;
  LoadShedder s(opt, 100.0);
  EXPECT_DOUBLE_EQ(s.nucleus_radius(), 50.0);
  EXPECT_DOUBLE_EQ(s.eta(), 0.5);
  s.ObserveMemoryUsage(1ull << 40);  // ignored in fixed mode
  EXPECT_DOUBLE_EQ(s.nucleus_radius(), 50.0);
}

TEST(LoadShedderTest, AdaptiveTightensUnderPressure) {
  LoadSheddingOptions opt;
  opt.mode = LoadSheddingMode::kAdaptive;
  opt.memory_budget_bytes = 1000;
  opt.eta_step = 0.25;
  LoadShedder s(opt, 100.0);
  EXPECT_EQ(s.eta(), 0.0);
  s.ObserveMemoryUsage(2000);
  EXPECT_DOUBLE_EQ(s.eta(), 0.25);
  s.ObserveMemoryUsage(2000);
  s.ObserveMemoryUsage(2000);
  s.ObserveMemoryUsage(2000);
  EXPECT_DOUBLE_EQ(s.eta(), 1.0);  // capped
  s.ObserveMemoryUsage(2000);
  EXPECT_DOUBLE_EQ(s.eta(), 1.0);
  EXPECT_EQ(s.adjustments(), 4u);
}

TEST(LoadShedderTest, AdaptiveRelaxesWhenMemoryFalls) {
  LoadSheddingOptions opt;
  opt.mode = LoadSheddingMode::kAdaptive;
  opt.memory_budget_bytes = 1000;
  opt.eta_step = 0.5;
  opt.relax_fraction = 0.7;
  LoadShedder s(opt, 100.0);
  s.ObserveMemoryUsage(2000);
  EXPECT_DOUBLE_EQ(s.eta(), 0.5);
  s.ObserveMemoryUsage(900);  // within budget but above relax threshold
  EXPECT_DOUBLE_EQ(s.eta(), 0.5);
  s.ObserveMemoryUsage(600);  // below 0.7 * budget
  EXPECT_DOUBLE_EQ(s.eta(), 0.0);
}

// ---------- Engine-level shedding behaviour ----------

struct SheddingOutcome {
  AccuracyReport accuracy;
  uint64_t comparisons = 0;
  size_t peak_memory = 0;
};

SheddingOutcome RunWithEta(const ExperimentData& data, Timestamp delta,
                           double eta) {
  ScubaOptions opt;
  opt.region = data.region;
  if (eta > 0.0) {
    opt.shedding.mode = LoadSheddingMode::kFixed;
    opt.shedding.eta = eta;
  }
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  EXPECT_TRUE(engine.ok());
  NaiveJoinEngine naive;

  std::vector<ResultSet> scuba_rounds;
  std::vector<ResultSet> naive_rounds;
  EXPECT_TRUE(ReplayTrace(data.trace, engine->get(), delta,
                          [&](Timestamp, const ResultSet& r) {
                            scuba_rounds.push_back(r);
                          })
                  .ok());
  EXPECT_TRUE(ReplayTrace(data.trace, &naive, delta,
                          [&](Timestamp, const ResultSet& r) {
                            naive_rounds.push_back(r);
                          })
                  .ok());
  SheddingOutcome out;
  AccuracyAccumulator acc;
  for (size_t i = 0; i < naive_rounds.size(); ++i) {
    acc.Add(CompareResults(naive_rounds[i], scuba_rounds[i]));
  }
  out.accuracy = acc.total();
  out.comparisons = (*engine)->StatsSnapshot().eval.comparisons;
  // Shedding's memory claim is about discarded member position state, so
  // measure the cluster tables, not the grid (whose registrations grow with
  // the nucleus-inflated radii).
  out.peak_memory = (*engine)->store().EstimateMemoryUsage();
  return out;
}

class SheddingSweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.city.rows = 11;
    config.city.cols = 11;
    config.city.seed = 61;
    config.workload.num_objects = 200;
    config.workload.num_queries = 200;
    config.workload.skew = 25;
    config.workload.seed = 61;
    config.ticks = 8;
    Result<ExperimentData> data = BuildExperimentData(config);
    ASSERT_TRUE(data.ok());
    data_ = new ExperimentData(std::move(data).value());
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static ExperimentData* data_;
};

ExperimentData* SheddingSweepTest::data_ = nullptr;

TEST_F(SheddingSweepTest, NoSheddingIsExact) {
  SheddingOutcome out = RunWithEta(*data_, 2, 0.0);
  EXPECT_EQ(out.accuracy.false_positives, 0u);
  EXPECT_EQ(out.accuracy.false_negatives, 0u);
  EXPECT_GT(out.accuracy.truth_size, 0u);
}

TEST_F(SheddingSweepTest, ModerateSheddingKeepsReasonableAccuracy) {
  // Paper §6.6: "relatively good results can be produced with cluster-based
  // load shedding even if 50% of a cluster region is shed" (~79% there).
  SheddingOutcome out = RunWithEta(*data_, 2, 0.5);
  EXPECT_GE(out.accuracy.Accuracy(), 0.5);
  EXPECT_GE(out.accuracy.Recall(), 0.6);
  EXPECT_GE(out.accuracy.Precision(), 0.6);
}

TEST_F(SheddingSweepTest, AccuracyDegradesWithEta) {
  SheddingOutcome low = RunWithEta(*data_, 2, 0.25);
  SheddingOutcome high = RunWithEta(*data_, 2, 1.0);
  EXPECT_GE(low.accuracy.Accuracy(), high.accuracy.Accuracy());
  // Full shedding must actually cost accuracy on this workload, in both
  // error directions (the nucleus approximation trades FPs and FNs).
  EXPECT_LT(high.accuracy.Accuracy(), 1.0);
  EXPECT_GT(high.accuracy.false_positives + high.accuracy.false_negatives, 0u);
}

TEST_F(SheddingSweepTest, SheddingCutsComparisonsAndMemory) {
  SheddingOutcome none = RunWithEta(*data_, 2, 0.0);
  SheddingOutcome full = RunWithEta(*data_, 2, 1.0);
  EXPECT_LT(full.comparisons, none.comparisons)
      << "nucleus grouping must reduce join-within predicate evaluations";
  EXPECT_LT(full.peak_memory, none.peak_memory);
}

TEST_F(SheddingSweepTest, AdaptiveModeEngagesUnderTightBudget) {
  ScubaOptions opt;
  opt.region = data_->region;
  opt.shedding.mode = LoadSheddingMode::kAdaptive;
  opt.shedding.memory_budget_bytes = 64 * 1024;  // deliberately tiny
  opt.shedding.eta_step = 0.5;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(RunOnTrace(engine->get(), data_->trace, 2).ok());
  EXPECT_GT((*engine)->shedder().eta(), 0.0);
  EXPECT_GT((*engine)->shedder().adjustments(), 0u);
  EXPECT_GT((*engine)->StatsSnapshot().phase.members_shed_maintenance +
                (*engine)->StatsSnapshot().clusterer.members_shed,
            0u);
}

TEST_F(SheddingSweepTest, AdaptiveModeIdlesUnderLooseBudget) {
  ScubaOptions opt;
  opt.region = data_->region;
  opt.shedding.mode = LoadSheddingMode::kAdaptive;
  opt.shedding.memory_budget_bytes = 1ull << 32;  // effectively infinite
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(RunOnTrace(engine->get(), data_->trace, 2).ok());
  EXPECT_EQ((*engine)->shedder().eta(), 0.0);
}

}  // namespace
}  // namespace scuba
