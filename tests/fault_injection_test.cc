// Fault-injection harness coverage: the FaultInjector is deterministic, every
// fault class it injects is caught by the UpdateValidator under the mapped
// RejectReason, and — the central hardening property — an engine fed the
// corrupted stream through a quarantining validator ends bit-identical to an
// engine fed the clean reference stream, with a clean invariant audit every
// round.

#include "stream/fault_injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/scuba_engine.h"
#include "state_digest.h"
#include "stream/update_validator.h"

namespace scuba {
namespace {

constexpr Rect kRegion{0.0, 0.0, 10000.0, 10000.0};

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// A clean multi-round workload every tuple of which is validator-admissible:
/// unique entities per batch, timestamps equal to the batch tick, in-region
/// positions, positive speeds and ranges.
std::vector<Round> MakeCleanRounds(uint64_t seed, int rounds) {
  Rng rng(seed);
  const int kGroups = 10;
  struct Entity {
    uint32_t id;
    bool is_query;
    int group;
    Point pos;
    double range;
  };
  std::vector<Entity> entities;
  for (uint32_t i = 0; i < 150; ++i) {
    int group = static_cast<int>(rng.NextDouble(0, kGroups));
    Point base{600.0 + 800.0 * group, 600.0 + 700.0 * (group % 4)};
    entities.push_back(Entity{i, (i % 3 == 2), group,
                              {base.x + rng.NextDouble(-50, 50),
                               base.y + rng.NextDouble(-50, 50)},
                              rng.NextDouble(40, 180)});
  }
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (Entity& e : entities) {
      if (rng.NextDouble(0, 1) < 0.2) continue;  // stale this tick
      e.pos = {e.pos.x + rng.NextDouble(-20, 20),
               e.pos.y + rng.NextDouble(-20, 20)};
      if (e.is_query) {
        QueryUpdate u;
        u.qid = e.id;
        u.position = e.pos;
        u.speed = 8.0 + (e.id % 5);
        u.dest_node = static_cast<NodeId>(e.group);
        u.dest_position = Point{9000, 9000};
        u.range_width = e.range;
        u.range_height = e.range;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = e.id;
        u.position = e.pos;
        u.speed = 8.0 + (e.id % 5);
        u.dest_node = static_cast<NodeId>(e.group);
        u.dest_position = Point{9000, 9000};
        u.attrs = (e.id % 4 == 0) ? 0x3u : 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

bool SameTuple(const LocationUpdate& a, const LocationUpdate& b) {
  return a.oid == b.oid && a.position == b.position && a.time == b.time &&
         a.speed == b.speed && a.dest_node == b.dest_node &&
         a.dest_position == b.dest_position && a.attrs == b.attrs;
}

bool SameTuple(const QueryUpdate& a, const QueryUpdate& b) {
  return a.qid == b.qid && a.position == b.position && a.time == b.time &&
         a.speed == b.speed && a.dest_node == b.dest_node &&
         a.dest_position == b.dest_position &&
         a.range_width == b.range_width && a.range_height == b.range_height &&
         a.attrs == b.attrs && a.required_attrs == b.required_attrs;
}

void SetProbability(FaultPlan* plan, FaultClass fault, double p) {
  switch (fault) {
    case FaultClass::kCorruptCoordinate: plan->corrupt_coordinate = p; break;
    case FaultClass::kOffMapTeleport: plan->off_map_teleport = p; break;
    case FaultClass::kNegativeSpeed: plan->negative_speed = p; break;
    case FaultClass::kBadRange: plan->bad_range = p; break;
    case FaultClass::kNegativeTimestamp: plan->negative_timestamp = p; break;
    case FaultClass::kStaleTimestamp: plan->stale_timestamp = p; break;
    case FaultClass::kUnknownDestination: plan->unknown_destination = p; break;
    case FaultClass::kDrop: plan->drop = p; break;
    case FaultClass::kDuplicate: plan->duplicate = p; break;
    case FaultClass::kReorder: plan->reorder = p; break;
    case FaultClass::kBurst: plan->burst = p; break;
  }
}

ValidatorConfig QuarantineConfig() {
  ValidatorConfig config;
  config.policy = BadUpdatePolicy::kQuarantine;
  config.bounds = kRegion;
  config.check_bounds = true;
  return config;
}

TEST(FaultInjectorTest, SameSeedReproducesSameStream) {
  std::vector<Round> rounds = MakeCleanRounds(11, 4);
  FaultPlan plan = FaultPlan::AllFaults(0.2, kRegion, /*node_count=*/50);
  FaultInjector a(plan, /*seed=*/99);
  FaultInjector b(plan, /*seed=*/99);
  for (int r = 0; r < 4; ++r) {
    Round da = rounds[r];
    Round db = rounds[r];
    a.CorruptBatch(r + 1, &da.objects, &da.queries, nullptr, nullptr);
    b.CorruptBatch(r + 1, &db.objects, &db.queries, nullptr, nullptr);
    ASSERT_EQ(da.objects.size(), db.objects.size()) << "round " << r;
    ASSERT_EQ(da.queries.size(), db.queries.size()) << "round " << r;
    for (size_t i = 0; i < da.objects.size(); ++i) {
      // NaN != NaN, so compare the rendered tuples.
      EXPECT_EQ(da.objects[i].ToString(), db.objects[i].ToString());
    }
    for (size_t i = 0; i < da.queries.size(); ++i) {
      EXPECT_EQ(da.queries[i].ToString(), db.queries[i].ToString());
    }
  }
  EXPECT_EQ(a.stats().TotalInjected(), b.stats().TotalInjected());
  for (size_t i = 0; i < kFaultClassCount; ++i) {
    EXPECT_EQ(a.stats().injected[i], b.stats().injected[i]);
  }
}

struct ClassMapping {
  FaultClass fault;
  RejectReason reason;
};

TEST(FaultInjectorTest, EveryTupleFaultClassIsCaughtUnderItsReason) {
  const ClassMapping kMappings[] = {
      {FaultClass::kCorruptCoordinate, RejectReason::kNonFinite},
      {FaultClass::kOffMapTeleport, RejectReason::kOffMap},
      {FaultClass::kNegativeSpeed, RejectReason::kBadSpeed},
      {FaultClass::kBadRange, RejectReason::kBadRange},
      {FaultClass::kNegativeTimestamp, RejectReason::kNegativeTime},
      {FaultClass::kStaleTimestamp, RejectReason::kTimeRegression},
      {FaultClass::kUnknownDestination, RejectReason::kUnknownDestNode},
  };
  std::vector<Round> rounds = MakeCleanRounds(7, 1);
  for (const ClassMapping& m : kMappings) {
    FaultPlan plan;
    plan.region = kRegion;
    SetProbability(&plan, m.fault, 1.0);
    FaultInjector injector(plan, /*seed=*/5);
    Round dirty = rounds[0];
    const size_t objects_in = dirty.objects.size();
    const size_t queries_in = dirty.queries.size();
    injector.CorruptBatch(/*batch_time=*/1, &dirty.objects, &dirty.queries,
                          nullptr, nullptr);

    UpdateValidator validator(QuarantineConfig());
    ASSERT_TRUE(
        validator.ScreenBatch(1, &dirty.objects, &dirty.queries).ok());
    const uint64_t injected = injector.stats().Injected(m.fault);
    // kBadRange only corrupts queries; every other class hits both kinds.
    const uint64_t expect_injected =
        m.fault == FaultClass::kBadRange ? queries_in
                                         : objects_in + queries_in;
    EXPECT_EQ(injected, expect_injected) << FaultClassName(m.fault);
    EXPECT_EQ(validator.stats().Rejected(m.reason), injected)
        << FaultClassName(m.fault);
    EXPECT_EQ(validator.stats().TotalRejected(), injected)
        << FaultClassName(m.fault) << ": no collateral rejections";
  }
}

TEST(FaultInjectorTest, DropsVanishWithoutValidatorRejections) {
  std::vector<Round> rounds = MakeCleanRounds(3, 1);
  FaultPlan plan;
  plan.drop = 1.0;
  FaultInjector injector(plan, /*seed=*/1);
  Round dirty = rounds[0];
  const size_t total = dirty.objects.size() + dirty.queries.size();
  std::vector<LocationUpdate> ref_objects;
  std::vector<QueryUpdate> ref_queries;
  injector.CorruptBatch(1, &dirty.objects, &dirty.queries, &ref_objects,
                        &ref_queries);
  EXPECT_TRUE(dirty.objects.empty());
  EXPECT_TRUE(dirty.queries.empty());
  EXPECT_TRUE(ref_objects.empty());  // dropped tuples are not admissible
  EXPECT_TRUE(ref_queries.empty());
  EXPECT_EQ(injector.stats().Injected(FaultClass::kDrop), total);
}

TEST(FaultInjectorTest, DuplicatesAndBurstsRejectAsInBatchDuplicates) {
  std::vector<Round> rounds = MakeCleanRounds(13, 1);
  {
    FaultPlan plan;
    plan.duplicate = 1.0;
    FaultInjector injector(plan, /*seed=*/2);
    Round dirty = rounds[0];
    const size_t total = dirty.objects.size() + dirty.queries.size();
    injector.CorruptBatch(1, &dirty.objects, &dirty.queries, nullptr, nullptr);
    EXPECT_EQ(dirty.objects.size() + dirty.queries.size(), 2 * total);
    UpdateValidator validator(QuarantineConfig());
    ASSERT_TRUE(
        validator.ScreenBatch(1, &dirty.objects, &dirty.queries).ok());
    EXPECT_EQ(validator.stats().Rejected(RejectReason::kDuplicateInBatch),
              total);
    EXPECT_EQ(validator.stats().admitted, total);
  }
  {
    FaultPlan plan;
    plan.burst = 1.0;
    plan.burst_size = 5;
    FaultInjector injector(plan, /*seed=*/2);
    Round dirty = rounds[0];
    const size_t total = dirty.objects.size() + dirty.queries.size();
    injector.CorruptBatch(1, &dirty.objects, &dirty.queries, nullptr, nullptr);
    EXPECT_EQ(dirty.objects.size() + dirty.queries.size(), total + 5);
    EXPECT_EQ(injector.stats().Injected(FaultClass::kBurst), 5u);
    UpdateValidator validator(QuarantineConfig());
    ASSERT_TRUE(
        validator.ScreenBatch(1, &dirty.objects, &dirty.queries).ok());
    EXPECT_EQ(validator.stats().Rejected(RejectReason::kDuplicateInBatch), 5u);
    EXPECT_EQ(validator.stats().admitted, total);
  }
}

TEST(FaultInjectorTest, ReorderPermutesWithoutLosingTuples) {
  std::vector<Round> rounds = MakeCleanRounds(17, 1);
  FaultPlan plan;
  plan.reorder = 1.0;
  FaultInjector injector(plan, /*seed=*/4);
  Round dirty = rounds[0];
  const Round original = rounds[0];
  injector.CorruptBatch(1, &dirty.objects, &dirty.queries, nullptr, nullptr);
  EXPECT_EQ(injector.stats().Injected(FaultClass::kReorder), 1u);
  ASSERT_EQ(dirty.objects.size(), original.objects.size());
  auto sorted_ids = [](const std::vector<LocationUpdate>& v) {
    std::vector<uint32_t> ids;
    for (const LocationUpdate& u : v) ids.push_back(u.oid);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(sorted_ids(dirty.objects), sorted_ids(original.objects));
  bool permuted = false;
  for (size_t i = 0; i < dirty.objects.size(); ++i) {
    if (dirty.objects[i].oid != original.objects[i].oid) permuted = true;
  }
  EXPECT_TRUE(permuted);
  // A permutation of unique in-tick tuples is admissible in full.
  UpdateValidator validator(QuarantineConfig());
  ASSERT_TRUE(validator.ScreenBatch(1, &dirty.objects, &dirty.queries).ok());
  EXPECT_EQ(validator.stats().TotalRejected(), 0u);
}

TEST(FaultInjectorTest, ValidatorRecoversExactlyTheReferenceStream) {
  std::vector<Round> rounds = MakeCleanRounds(23, 8);
  FaultPlan plan = FaultPlan::AllFaults(0.15, kRegion, /*node_count=*/0);
  FaultInjector injector(plan, /*seed=*/0xFEED);
  UpdateValidator validator(QuarantineConfig());
  uint64_t dup_injected = 0;
  for (int r = 0; r < 8; ++r) {
    Round dirty = rounds[r];
    std::vector<LocationUpdate> ref_objects;
    std::vector<QueryUpdate> ref_queries;
    injector.CorruptBatch(r + 1, &dirty.objects, &dirty.queries, &ref_objects,
                          &ref_queries);
    ASSERT_TRUE(
        validator.ScreenBatch(r + 1, &dirty.objects, &dirty.queries).ok());
    ASSERT_EQ(dirty.objects.size(), ref_objects.size()) << "round " << r;
    ASSERT_EQ(dirty.queries.size(), ref_queries.size()) << "round " << r;
    for (size_t i = 0; i < ref_objects.size(); ++i) {
      EXPECT_TRUE(SameTuple(dirty.objects[i], ref_objects[i]))
          << "round " << r << " object " << i;
    }
    for (size_t i = 0; i < ref_queries.size(); ++i) {
      EXPECT_TRUE(SameTuple(dirty.queries[i], ref_queries[i]))
          << "round " << r << " query " << i;
    }
  }
  const FaultStats& fs = injector.stats();
  EXPECT_GT(fs.TotalInjected(), 0u);
  // Accounting identity: every injected fault is either rejected by the
  // validator or invisible to it (drops remove the tuple, reorders are a
  // permutation).
  EXPECT_EQ(validator.stats().TotalRejected(),
            fs.TotalInjected() - fs.Injected(FaultClass::kDrop) -
                fs.Injected(FaultClass::kReorder));
  dup_injected = fs.Injected(FaultClass::kDuplicate) +
                 fs.Injected(FaultClass::kBurst);
  EXPECT_EQ(validator.stats().Rejected(RejectReason::kDuplicateInBatch),
            dup_injected);
}

/// Feeds pre-corrupted rounds to an engine under BadUpdatePolicy::kQuarantine,
/// either through the serial per-update API or through IngestBatch at the
/// given thread count, digesting state after every Evaluate.
std::vector<std::string> RunEngineOnDirty(const std::vector<Round>& dirty,
                                          uint32_t ingest_threads,
                                          bool use_batch_api,
                                          uint64_t* quarantined_out) {
  ScubaOptions opt;
  opt.ingest_threads = ingest_threads;
  opt.on_bad_update = BadUpdatePolicy::kQuarantine;
  std::unique_ptr<ScubaEngine> engine =
      std::move(ScubaEngine::Create(opt).value());
  std::vector<std::string> digests;
  Timestamp now = 0;
  for (const Round& round : dirty) {
    now += 2;
    if (use_batch_api) {
      EXPECT_TRUE(engine->IngestBatch(round.objects, round.queries).ok());
    } else {
      for (const LocationUpdate& u : round.objects) {
        EXPECT_TRUE(engine->IngestObjectUpdate(u).ok());
      }
      for (const QueryUpdate& u : round.queries) {
        EXPECT_TRUE(engine->IngestQueryUpdate(u).ok());
      }
    }
    ResultSet results;
    EXPECT_TRUE(engine->Evaluate(now, &results).ok());
    digests.push_back(StateDigest(*engine));
  }
  *quarantined_out = engine->StatsSnapshot().eval.updates_quarantined;
  return digests;
}

TEST(FaultInjectionEngineTest, BatchQuarantineMatchesSerialAcrossThreads) {
  // Corrupt a workload with every fault class, then require the engine-level
  // quarantine path to be bit-identical between the serial per-update API and
  // IngestBatch at 1 and 4 threads.
  std::vector<Round> dirty = MakeCleanRounds(31, 5);
  FaultPlan plan = FaultPlan::AllFaults(0.1, kRegion, /*node_count=*/0);
  FaultInjector injector(plan, /*seed=*/0xD1A7);
  for (size_t r = 0; r < dirty.size(); ++r) {
    injector.CorruptBatch(static_cast<Timestamp>(r + 1), &dirty[r].objects,
                          &dirty[r].queries, nullptr, nullptr);
  }
  uint64_t serial_quarantined = 0;
  std::vector<std::string> serial =
      RunEngineOnDirty(dirty, 1, /*use_batch_api=*/false, &serial_quarantined);
  EXPECT_GT(serial_quarantined, 0u) << "workload must exercise quarantine";
  for (uint32_t threads : {1u, 4u}) {
    uint64_t batch_quarantined = 0;
    std::vector<std::string> batch =
        RunEngineOnDirty(dirty, threads, /*use_batch_api=*/true,
                         &batch_quarantined);
    EXPECT_EQ(batch_quarantined, serial_quarantined) << "threads=" << threads;
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batch[i], serial[i]) << "threads=" << threads << " round=" << i;
    }
  }
}

TEST(FaultInjectionEngineTest, ScreenedDirtyStreamMatchesCleanRunBitForBit) {
  // The end-to-end hardening property: validator(corrupted stream) drives an
  // engine to the same state and results as the clean reference stream, and
  // the invariant audit stays clean every round along the way.
  std::vector<Round> rounds = MakeCleanRounds(41, 6);
  FaultPlan plan = FaultPlan::AllFaults(0.12, kRegion, /*node_count=*/0);
  FaultInjector injector(plan, /*seed=*/0xC0FFEE);
  UpdateValidator validator(QuarantineConfig());

  ScubaOptions hardened_opt;
  hardened_opt.on_bad_update = BadUpdatePolicy::kQuarantine;
  hardened_opt.audit_every_n_rounds = 1;
  std::unique_ptr<ScubaEngine> hardened =
      std::move(ScubaEngine::Create(hardened_opt).value());
  std::unique_ptr<ScubaEngine> clean =
      std::move(ScubaEngine::Create(ScubaOptions{}).value());

  Timestamp now = 0;
  for (size_t r = 0; r < rounds.size(); ++r) {
    now += 2;
    Round dirty = rounds[r];
    std::vector<LocationUpdate> ref_objects;
    std::vector<QueryUpdate> ref_queries;
    injector.CorruptBatch(static_cast<Timestamp>(r + 1), &dirty.objects,
                          &dirty.queries, &ref_objects, &ref_queries);
    ASSERT_TRUE(validator
                    .ScreenBatch(static_cast<Timestamp>(r + 1), &dirty.objects,
                                 &dirty.queries)
                    .ok());
    ASSERT_TRUE(hardened->IngestBatch(dirty.objects, dirty.queries).ok());
    ASSERT_TRUE(clean->IngestBatch(ref_objects, ref_queries).ok());
    ResultSet hardened_results;
    ResultSet clean_results;
    ASSERT_TRUE(hardened->Evaluate(now, &hardened_results).ok());
    ASSERT_TRUE(clean->Evaluate(now, &clean_results).ok());
    EXPECT_EQ(hardened_results, clean_results) << "round " << r;
    EXPECT_EQ(StateDigest(*hardened), StateDigest(*clean)) << "round " << r;
  }
  // The validator is strictly stricter than the engine's own screen, so the
  // engine-level quarantine never fires on the screened stream.
  EXPECT_EQ(hardened->StatsSnapshot().eval.updates_quarantined, 0u);
  EXPECT_EQ(hardened->StatsSnapshot().eval.invariant_audits, rounds.size());
  EXPECT_EQ(hardened->StatsSnapshot().eval.invariant_violations, 0u);
  EXPECT_EQ(hardened->StatsSnapshot().eval.invariant_repairs, 0u);
}

TEST(FaultInjectorTest, StatsNameNonzeroClasses) {
  std::vector<Round> rounds = MakeCleanRounds(2, 1);
  FaultPlan plan;
  plan.negative_speed = 1.0;
  FaultInjector injector(plan, /*seed=*/6);
  Round dirty = rounds[0];
  injector.CorruptBatch(1, &dirty.objects, &dirty.queries, nullptr, nullptr);
  const std::string text = injector.stats().ToString();
  EXPECT_NE(text.find("negative-speed="), std::string::npos) << text;
  EXPECT_EQ(text.find("burst="), std::string::npos) << text;
}

}  // namespace
}  // namespace scuba
