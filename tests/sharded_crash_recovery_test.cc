// Sharded crash-recovery matrix (docs/ARCHITECTURE.md §12): for every crash
// point on the sharded durability path, at shards {1,2,4} and join threads
// {1,4}, a run that crashes mid-stream and is then recovered (newest
// manifest whose artifacts verify + cross-chain WAL merge) and driven to
// completion produces bit-identical per-round ResultSets and state digests
// to an uninterrupted single-engine run — including the replayed rounds.
// Plus re-partition coverage (a directory written at N shards recovers into
// M) and validator/quarantine state surviving sharded recovery.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/scuba_engine.h"
#include "gen/trace.h"
#include "persist/crash.h"
#include "shard/shard_durability.h"
#include "shard/sharded_engine.h"
#include "state_digest.h"
#include "stream/pipeline.h"
#include "stream/update_validator.h"

namespace scuba {
namespace {

namespace fs = std::filesystem;

constexpr Rect kRegion{0.0, 0.0, 10000.0, 10000.0};
constexpr int kRounds = 8;

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_((fs::current_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

std::vector<Round> MakeRounds(uint64_t seed, int rounds) {
  Rng rng(seed);
  struct Entity {
    uint32_t id;
    bool is_query;
    Point pos;
    double range;
  };
  std::vector<Entity> entities;
  for (uint32_t i = 0; i < 130; ++i) {
    int group = static_cast<int>(rng.NextDouble(0, 9));
    Point base{650.0 + 850.0 * group, 700.0 + 750.0 * (group % 4)};
    entities.push_back(Entity{i, (i % 4 == 1),
                              {base.x + rng.NextDouble(-55, 55),
                               base.y + rng.NextDouble(-55, 55)},
                              rng.NextDouble(45, 190)});
  }
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (Entity& e : entities) {
      if (rng.NextDouble(0, 1) < 0.15) continue;
      e.pos = {e.pos.x + rng.NextDouble(-22, 22),
               e.pos.y + rng.NextDouble(-22, 22)};
      if (e.is_query) {
        QueryUpdate u;
        u.qid = e.id;
        u.position = e.pos;
        u.speed = 7.0 + (e.id % 6);
        u.dest_node = static_cast<NodeId>(e.id % 4);
        u.dest_position = Point{9200, 9200};
        u.range_width = e.range;
        u.range_height = e.range;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = e.id;
        u.position = e.pos;
        u.speed = 7.0 + (e.id % 6);
        u.dest_node = static_cast<NodeId>(e.id % 4);
        u.dest_position = Point{9200, 9200};
        u.attrs = (e.id % 5 == 0) ? 0x7u : 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

ScubaOptions MakeOptions(uint32_t threads, uint32_t shards) {
  ScubaOptions opt;
  opt.join_threads = threads;
  opt.shards = shards;
  opt.on_bad_update = BadUpdatePolicy::kQuarantine;
  // Checkpoint every 2 rounds, small segments: one 8-round run exercises
  // rotation, generation retention and multi-generation fallback.
  opt.checkpoint.every_n_rounds = 2;
  opt.checkpoint.keep_last_k = 2;
  opt.checkpoint.wal_segment_bytes = 4096;
  return opt;
}

ValidatorConfig MakeValidatorConfig() {
  ValidatorConfig config;
  config.policy = BadUpdatePolicy::kQuarantine;
  config.bounds = kRegion;
  config.check_bounds = true;
  return config;
}

std::unique_ptr<ShardedEngine> MakeSharded(const ScubaOptions& opt) {
  Result<std::unique_ptr<ShardedEngine>> engine = ShardedEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

struct RunLog {
  std::vector<ResultSet> results;  ///< Per evaluated round, in order.
  std::vector<std::string> digests;
};

/// The uninterrupted twin: a plain single ScubaEngine with no durability.
/// The sharded determinism contract makes its per-round results and digests
/// the bar for every (shards, threads) recovered run.
RunLog RunBaseline(const std::vector<Round>& rounds) {
  Result<std::unique_ptr<ScubaEngine>> engine =
      ScubaEngine::Create(MakeOptions(1, 1));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  RunLog log;
  for (size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_TRUE(
        (*engine)->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    EXPECT_TRUE(
        (*engine)->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    log.results.push_back(std::move(results));
    log.digests.push_back(StateDigest(**engine));
  }
  return log;
}

/// Runs a sharded durable stream until the armed crash fires, then abandons
/// the engine (a real crash loses process memory). Returns the number of
/// fully completed rounds.
size_t RunUntilCrash(const std::vector<Round>& rounds, uint32_t threads,
                     uint32_t shards, const std::string& dir,
                     CrashInjector* crash) {
  const ScubaOptions opt = MakeOptions(threads, shards);
  std::unique_ptr<ShardedEngine> engine = MakeSharded(opt);
  UpdateValidator validator(MakeValidatorConfig());
  Result<std::unique_ptr<ShardedDurabilityManager>> manager =
      ShardedDurabilityManager::Open(dir, opt.checkpoint, engine.get(),
                                     &validator, /*rng=*/nullptr, crash);
  EXPECT_TRUE(manager.ok()) << manager.status().ToString();
  for (size_t r = 0; r < rounds.size(); ++r) {
    Status s = (*manager)->LogBatch(static_cast<Timestamp>(r + 1),
                                    /*evaluate_after=*/true, rounds[r].objects,
                                    rounds[r].queries);
    if (!s.ok()) {
      EXPECT_TRUE(CrashInjector::IsCrash(s)) << s.ToString();
      return r;  // batch r never acknowledged
    }
    EXPECT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    EXPECT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    s = (*manager)->OnRoundComplete();
    if (!s.ok()) {
      EXPECT_TRUE(CrashInjector::IsCrash(s)) << s.ToString();
      return r + 1;
    }
  }
  return rounds.size();
}

/// Recovers `dir` into a fresh engine at `shards` stripes, checks every
/// replayed round against the baseline, finishes the remaining rounds
/// durably and requires bit-identical results and digests throughout.
void RecoverAndFinish(const std::vector<Round>& rounds, uint32_t threads,
                      uint32_t shards, const std::string& dir,
                      const RunLog& base,
                      ShardedRecoveryReport* report_out = nullptr) {
  const ScubaOptions opt = MakeOptions(threads, shards);
  std::unique_ptr<ShardedEngine> engine = MakeSharded(opt);
  UpdateValidator validator(MakeValidatorConfig());
  std::vector<std::pair<Timestamp, ResultSet>> replayed;
  Result<ShardedRecoveryReport> report = RecoverShardedEngine(
      dir, engine.get(), &validator, /*rng=*/nullptr,
      [&](Timestamp now, const ResultSet& results) {
        replayed.emplace_back(now, results);
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  if (report_out != nullptr) *report_out = *report;

  EXPECT_EQ(replayed.size(), report->rounds_replayed);
  for (const auto& [now, results] : replayed) {
    const size_t r = static_cast<size_t>(now) - 1;
    ASSERT_LT(r, base.results.size());
    EXPECT_EQ(results, base.results[r]) << "replayed round " << r;
  }
  const size_t covered = static_cast<size_t>(report->next_seq);
  if (covered == 0) {
    EXPECT_EQ(StateDigest(*engine), std::string());
  } else {
    ASSERT_LE(covered, base.digests.size());
    EXPECT_EQ(StateDigest(*engine), base.digests[covered - 1]);
  }
  EXPECT_EQ(engine->StatsSnapshot().eval.evaluations, covered);

  Result<std::unique_ptr<ShardedDurabilityManager>> manager =
      ShardedDurabilityManager::Open(dir, opt.checkpoint, engine.get(),
                                     &validator, /*rng=*/nullptr,
                                     /*crash=*/nullptr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  for (size_t r = covered; r < rounds.size(); ++r) {
    ASSERT_TRUE((*manager)
                    ->LogBatch(static_cast<Timestamp>(r + 1), true,
                               rounds[r].objects, rounds[r].queries)
                    .ok());
    ASSERT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    ASSERT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    EXPECT_EQ(results, base.results[r]) << "post-recovery round " << r;
    EXPECT_EQ(StateDigest(*engine), base.digests[r])
        << "post-recovery round " << r;
    ASSERT_TRUE((*manager)->OnRoundComplete().ok());
  }
  EXPECT_EQ(StateDigest(*engine), base.digests.back());
}

struct CrashCase {
  CrashPoint point;
  /// Which occurrence fires. Chain-append points count per chain append
  /// (shards per batch); checkpoint points count per checkpoint (one every
  /// 2 rounds); between-* points only occur at shards > 1.
  uint64_t occurrence;
  bool needs_multiple_shards = false;
};

TEST(ShardedCrashRecoveryTest, EveryCrashPointRecoversBitIdentically) {
  const CrashCase kMatrix[] = {
      {CrashPoint::kBeforeWalAppend, 5},
      {CrashPoint::kMidWalAppend, 5},
      {CrashPoint::kMidShardWalAppend, 5},
      {CrashPoint::kAfterWalAppend, 5},
      {CrashPoint::kBetweenShardWalAppends, 4, /*needs_multiple_shards=*/true},
      {CrashPoint::kBeforeSnapshotWrite, 2},
      {CrashPoint::kMidShardSnapshotWrite, 2},
      {CrashPoint::kBetweenShardSnapshots, 2, /*needs_multiple_shards=*/true},
      {CrashPoint::kBeforeManifestRename, 2},
      {CrashPoint::kTornManifestRename, 2},
      {CrashPoint::kAfterManifestRename, 2},
      {CrashPoint::kMidManifestPrune, 2},
  };
  std::vector<Round> rounds = MakeRounds(0x5A4D, kRounds);
  RunLog base = RunBaseline(rounds);
  ASSERT_EQ(base.results.size(), static_cast<size_t>(kRounds));
  for (uint32_t threads : {1u, 4u}) {
    for (uint32_t shards : {1u, 2u, 4u}) {
      for (const CrashCase& c : kMatrix) {
        if (c.needs_multiple_shards && shards == 1) continue;
        SCOPED_TRACE(std::string(CrashPointName(c.point)) +
                     " shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads));
        ScopedTempDir dir("sharded_crash_" +
                          std::string(CrashPointName(c.point)) + "_s" +
                          std::to_string(shards) + "_t" +
                          std::to_string(threads));
        CrashInjector crash(c.point, c.occurrence);
        const size_t done =
            RunUntilCrash(rounds, threads, shards, dir.path(), &crash);
        ASSERT_TRUE(crash.fired()) << "crash point never reached";
        ASSERT_LT(done, static_cast<size_t>(kRounds)) << "crash came too late";

        ShardedRecoveryReport report;
        RecoverAndFinish(rounds, threads, shards, dir.path(), base, &report);
        switch (c.point) {
          case CrashPoint::kMidWalAppend:
          case CrashPoint::kMidShardWalAppend:
            EXPECT_TRUE(report.any_torn_tail);
            break;
          case CrashPoint::kBetweenShardWalAppends:
            // The fanout stopped between chains: the final sequence is short
            // of its shard_count sub-records and recovery discards it.
            EXPECT_TRUE(report.incomplete_tail_discarded);
            break;
          case CrashPoint::kTornManifestRename:
            // The torn manifest was detected and the previous generation
            // recovered instead.
            EXPECT_GE(report.generations_skipped, 1u);
            EXPECT_FALSE(report.data_loss.empty());
            break;
          default:
            break;
        }
      }
    }
  }
}

/// Re-partition on recovery: a directory crashed at N shards recovers into
/// M, finishes durably (the layout change forces a fresh manifest), and a
/// SECOND recovery — over chains spanning both layouts — still reproduces
/// the twin exactly.
TEST(ShardedCrashRecoveryTest, RecoversAcrossShardCounts) {
  const struct {
    uint32_t from;
    uint32_t to;
  } kReshards[] = {{4u, 2u}, {2u, 4u}, {4u, 1u}};
  std::vector<Round> rounds = MakeRounds(0x2E5A, kRounds);
  RunLog base = RunBaseline(rounds);
  for (const auto& rs : kReshards) {
    SCOPED_TRACE("reshard " + std::to_string(rs.from) + "->" +
                 std::to_string(rs.to));
    ScopedTempDir dir("sharded_reshard_" + std::to_string(rs.from) + "_" +
                      std::to_string(rs.to));
    CrashInjector crash(CrashPoint::kBetweenShardWalAppends, 4);
    const size_t done =
        RunUntilCrash(rounds, /*threads=*/2, rs.from, dir.path(), &crash);
    ASSERT_TRUE(crash.fired());
    ASSERT_LT(done, static_cast<size_t>(kRounds));

    ShardedRecoveryReport report;
    RecoverAndFinish(rounds, /*threads=*/2, rs.to, dir.path(), base, &report);
    EXPECT_EQ(report.engine_shards, rs.to);
    if (!report.manifest_path.empty()) {
      EXPECT_EQ(report.manifest_shards, rs.from);
    }

    // The finished directory now mixes manifests and chain epochs from both
    // layouts; recovery over that history must still land on the twin.
    std::unique_ptr<ShardedEngine> again =
        MakeSharded(MakeOptions(1, rs.to));
    UpdateValidator validator(MakeValidatorConfig());
    Result<ShardedRecoveryReport> second = RecoverShardedEngine(
        dir.path(), again.get(), &validator, /*rng=*/nullptr);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(second->next_seq, static_cast<uint64_t>(kRounds));
    EXPECT_EQ(StateDigest(*again), base.digests.back());
  }
}

/// Validator and quarantine state survive sharded recovery: per-entity
/// timestamp floors, per-reason counters and the quarantine ring all ride in
/// the manifest's coordinator blob, so a crash recovered at a checkpoint
/// boundary ends with validator stats bit-identical to the uninterrupted
/// twin's, even across a re-partition. (The crash lands on the FIRST batch
/// after a checkpoint: that batch is incomplete across chains and discarded,
/// leaving no WAL suffix — replayed WAL batches advance floors via
/// NoteAdmitted but cannot reconstruct screen counters, because rejected
/// tuples are never durable.)
TEST(ShardedCrashRecoveryTest, ValidatorStateSurvivesShardedRecovery) {
  std::vector<Round> rounds = MakeRounds(0x7A1D, kRounds);
  // Poison the stream: a stale timestamp and an off-map position per round,
  // all quarantined — floors and per-reason counters become load-bearing.
  Trace trace;
  for (size_t r = 0; r < rounds.size(); ++r) {
    TickBatch batch;
    batch.time = static_cast<Timestamp>(r + 1);
    batch.object_updates = rounds[r].objects;
    batch.query_updates = rounds[r].queries;
    if (r > 0 && !batch.object_updates.empty()) {
      LocationUpdate stale = batch.object_updates.front();
      stale.time = 0;  // behind the entity's floor
      batch.object_updates.push_back(stale);
      LocationUpdate off_map = batch.object_updates.front();
      off_map.position = Point{-5000.0, -5000.0};
      batch.object_updates.push_back(off_map);
    }
    trace.Append(std::move(batch));
  }

  // Uninterrupted twin: single engine, same screened stream.
  Result<std::unique_ptr<ScubaEngine>> twin =
      ScubaEngine::Create(MakeOptions(1, 1));
  ASSERT_TRUE(twin.ok());
  UpdateValidator twin_validator(MakeValidatorConfig());
  ASSERT_TRUE(
      ReplayTrace(trace, twin->get(), /*delta=*/2, nullptr, &twin_validator)
          .ok());
  const std::string twin_digest = StateDigest(**twin);
  const std::string twin_stats = twin_validator.FormatStats();
  ASSERT_GT(twin_validator.quarantine().total(), 0u);

  // Crashed sharded run at 4 shards, recovered into 2.
  ScopedTempDir dir("sharded_validator_recovery");
  const ScubaOptions opt4 = MakeOptions(2, 4);
  {
    std::unique_ptr<ShardedEngine> engine = MakeSharded(opt4);
    UpdateValidator validator(MakeValidatorConfig());
    // delta=2 and checkpoint-every-2-rounds put checkpoints after batches 3
    // and 7 (wal_next_seq 4 and 8). At 4 shards a batch fans out 3 s>0
    // events, so occurrence 13 fires on batch 4 — the first one past the
    // seq-4 checkpoint — and seq 4 is discarded as incomplete.
    CrashInjector crash(CrashPoint::kBetweenShardWalAppends, 13);
    Result<std::unique_ptr<ShardedDurabilityManager>> manager =
        ShardedDurabilityManager::Open(dir.path(), opt4.checkpoint,
                                       engine.get(), &validator,
                                       /*rng=*/nullptr, &crash);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    Status s = ReplayTrace(trace, engine.get(), /*delta=*/2, nullptr,
                           &validator, manager->get());
    ASSERT_FALSE(s.ok());
    ASSERT_TRUE(CrashInjector::IsCrash(s)) << s.ToString();
  }
  const ScubaOptions opt2 = MakeOptions(1, 2);
  std::unique_ptr<ShardedEngine> engine = MakeSharded(opt2);
  UpdateValidator validator(MakeValidatorConfig());
  Result<ShardedRecoveryReport> report = RecoverShardedEngine(
      dir.path(), engine.get(), &validator, /*rng=*/nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The crashed batch was discarded as incomplete, so recovery lands exactly
  // on the checkpoint: empty replay window, full validator state restored.
  ASSERT_EQ(report->base_seq, 4u);
  ASSERT_EQ(report->next_seq, 4u);
  EXPECT_TRUE(report->incomplete_tail_discarded);
  ASSERT_LT(report->next_seq, trace.TickCount());
  Result<std::unique_ptr<ShardedDurabilityManager>> manager =
      ShardedDurabilityManager::Open(dir.path(), opt2.checkpoint, engine.get(),
                                     &validator, /*rng=*/nullptr,
                                     /*crash=*/nullptr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ASSERT_TRUE(ReplayTrace(trace, engine.get(), /*delta=*/2, nullptr,
                          &validator, manager->get(),
                          static_cast<size_t>(report->next_seq))
                  .ok());

  EXPECT_EQ(StateDigest(*engine), twin_digest);
  // Identical per-reason counters AND identical per-entity floors: the
  // recovered validator made exactly the twin's admission decisions.
  EXPECT_EQ(validator.FormatStats(), twin_stats);
  EXPECT_EQ(validator.quarantine().total(), twin_validator.quarantine().total());
}

}  // namespace
}  // namespace scuba
