// Loopback end-to-end determinism for the serving front-end
// (docs/ARCHITECTURE.md §14): a driver client replaying a workload through
// ScubaServer, with ≥4 concurrent subscriber sessions folding the pushed
// delta stream via ApplyDelta, must reproduce the offline engine's per-round
// ResultSets bit-for-bit and land on the identical EngineStateHash — across
// shards {1,4} × join threads {1,4}. Subscription slices filter
// deterministically, and a supervised degraded round propagates its
// degraded-shard provenance through the delta stream to every subscriber.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/query_processor.h"
#include "core/result_set.h"
#include "core/scuba_options.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/engine_factory.h"

namespace scuba::serve {
namespace {

/// Deterministic workload: 64 entities in 4 drifting groups spread over the
/// default 10000-unit region so every stripe of a 4-shard layout owns
/// tuples. Queries get ranges wide enough to actually match.
struct TickBatch {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

std::vector<TickBatch> MakeTicks(int ticks) {
  const double group_y[] = {1200.0, 3300.0, 5400.0, 7600.0};
  std::vector<TickBatch> out(ticks);
  for (int t = 0; t < ticks; ++t) {
    for (uint32_t i = 0; i < 64; ++i) {
      const int group = i % 4;
      const Point pos{500.0 + 2200.0 * group + 13.0 * t + 7.0 * (i / 4),
                      group_y[group] + 5.0 * (i / 4 % 5)};
      if (i % 5 == 2) {
        QueryUpdate u;
        u.qid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.range_width = 600.0;
        u.range_height = 600.0;
        u.time = static_cast<Timestamp>(t + 1);
        out[t].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = i;
        u.position = pos;
        u.speed = 5.0 + group;
        u.dest_node = static_cast<NodeId>(group);
        u.dest_position = Point{9000, 9000};
        u.attrs = 0x1u;
        u.time = static_cast<Timestamp>(t + 1);
        out[t].objects.push_back(u);
      }
    }
  }
  return out;
}

/// Offline reference: the same batches through a factory-built engine at the
/// same evaluation boundaries. Returns the per-round ResultSets.
std::vector<ResultSet> OfflineRounds(const ScubaOptions& opt,
                                     const std::vector<TickBatch>& ticks,
                                     int delta, uint64_t* state_hash) {
  Result<EngineHandle> handle = MakeEngine(opt);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  std::vector<ResultSet> rounds;
  ResultSet results;
  for (size_t t = 0; t < ticks.size(); ++t) {
    EXPECT_TRUE(
        handle->engine->IngestBatch(ticks[t].objects, ticks[t].queries).ok());
    if ((t + 1) % static_cast<size_t>(delta) == 0) {
      Status s = handle->engine->Evaluate(static_cast<Timestamp>(t + 1),
                                          &results);
      EXPECT_TRUE(s.ok()) << s.ToString();
      rounds.push_back(results);
    }
  }
  *state_hash = handle->StateHash();
  return rounds;
}

ResultSet FilterToQueries(const ResultSet& full,
                          const std::vector<QueryId>& qids) {
  ResultSet out;
  for (const Match& m : full.matches()) {
    for (QueryId q : qids) {
      if (m.qid == q) {
        out.Add(m.qid, m.oid);
        break;
      }
    }
  }
  for (uint32_t s : full.degraded_shards()) out.MarkDegraded(s);
  return out;
}

struct ServerUnderTest {
  EngineHandle engine;
  std::unique_ptr<ScubaServer> server;
};

ServerUnderTest StartServer(const ScubaOptions& opt) {
  ServerUnderTest out;
  Result<EngineHandle> handle = MakeEngine(opt);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  out.engine = std::move(handle).value();
  ServeOptions serve;
  ServerDeps deps;
  deps.engine = out.engine.engine.get();
  Result<std::unique_ptr<ScubaServer>> server = ScubaServer::Create(serve, deps);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  out.server = std::move(server).value();
  EXPECT_TRUE(out.server->Start().ok());
  return out;
}

class ServeDeterminismTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(ServeDeterminismTest, DeltaStreamBitMatchesOfflineReplay) {
  const auto [shards, threads] = GetParam();
  ScubaOptions opt;
  opt.shards = shards;
  opt.join_threads = threads;
  opt.ingest_threads = threads;
  const int kTicks = 12;
  const int kDelta = 2;  // evaluate every 2nd batch, like the offline default
  const std::vector<TickBatch> ticks = MakeTicks(kTicks);

  uint64_t offline_hash = 0;
  const std::vector<ResultSet> offline =
      OfflineRounds(opt, ticks, kDelta, &offline_hash);
  ASSERT_EQ(offline.size(), static_cast<size_t>(kTicks / kDelta));

  ServerUnderTest sut = StartServer(opt);

  // One driver paces rounds; four concurrent subscribers fold the stream.
  Result<ScubaClient> driver = ScubaClient::Connect(sut.server->port());
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  // Three full-view subscribers plus one subscribed to a slice.
  const std::vector<QueryId> slice = {2, 7};
  std::vector<ScubaClient> subs;
  for (int i = 0; i < 4; ++i) {
    Result<ScubaClient> c = ScubaClient::Connect(sut.server->port());
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    subs.push_back(std::move(c).value());
    if (i == 3) {
      ASSERT_TRUE(subs.back().Subscribe(slice).ok());
    } else {
      ASSERT_TRUE(subs.back().SubscribeAll().ok());
    }
  }

  uint64_t round = 0;
  for (int t = 0; t < kTicks; ++t) {
    UpdateBatchMsg batch;
    batch.time = static_cast<Timestamp>(t + 1);
    batch.evaluate = (t + 1) % kDelta == 0;
    batch.objects = ticks[t].objects;
    batch.queries = ticks[t].queries;
    Result<TickAckMsg> ack = driver->SendBatch(batch);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    if (!batch.evaluate) continue;

    ++round;
    ASSERT_EQ(ack->round, round);
    ASSERT_EQ(ack->time, batch.time);
    const ResultSet& expected = offline[round - 1];
    EXPECT_EQ(ack->matches, expected.size());

    // Every subscriber's fold, after this round's delta, bit-matches the
    // offline round (the slice subscriber matches its filtered view).
    for (size_t i = 0; i < subs.size(); ++i) {
      ASSERT_TRUE(subs[i].PumpUntilRound(round).ok())
          << "subscriber " << i << " round " << round;
      EXPECT_EQ(subs[i].last_round(), round);
      EXPECT_EQ(subs[i].last_time(), batch.time);
      if (i == 3) {
        EXPECT_TRUE(subs[i].folded() == FilterToQueries(expected, slice))
            << "slice subscriber diverged at round " << round;
      } else {
        EXPECT_TRUE(subs[i].folded() == expected)
            << "subscriber " << i << " diverged at round " << round;
      }
    }
  }

  // No subscriber needed a coalesced catch-up, so every fold was pure
  // ApplyDelta — the strongest determinism statement.
  for (ScubaClient& sub : subs) {
    EXPECT_EQ(sub.coalesced_snapshots(), 0u);
    EXPECT_EQ(sub.deltas_received(), static_cast<uint64_t>(kTicks / kDelta));
    EXPECT_TRUE(sub.Bye().ok());
  }
  ASSERT_TRUE(driver->Shutdown().ok());
  EXPECT_TRUE(sut.server->Wait().ok());

  // The served engine ends in the identical state.
  EXPECT_EQ(sut.engine.StateHash(), offline_hash);

  ServerStats stats = sut.server->stats();
  EXPECT_EQ(stats.rounds, static_cast<uint64_t>(kTicks / kDelta));
  EXPECT_EQ(stats.batches, static_cast<uint64_t>(kTicks));
  EXPECT_EQ(stats.sessions_accepted, 5u);
  EXPECT_EQ(stats.disconnects, 0u);
}

INSTANTIATE_TEST_SUITE_P(ShardsByThreads, ServeDeterminismTest,
                         ::testing::Combine(::testing::Values(1u, 4u),
                                            ::testing::Values(1u, 4u)));

TEST(ServeE2eTest, DegradedRoundPropagatesToSubscribers) {
  // A supervised shard fault (shard 1 fails in round 3) completes the round
  // degraded; the delta stream must carry the provenance to every client.
  ScubaOptions opt;
  opt.shards = 4;
  opt.supervision.on_failure = ShardFailurePolicy::kDegrade;
  opt.supervision.fault_spec = "3:1:task-failure";
  const int kTicks = 5;
  const std::vector<TickBatch> ticks = MakeTicks(kTicks);

  uint64_t offline_hash = 0;
  const std::vector<ResultSet> offline =
      OfflineRounds(opt, ticks, /*delta=*/1, &offline_hash);
  ASSERT_EQ(offline.size(), 5u);
  ASSERT_TRUE(offline[2].degraded()) << "fault spec did not fire offline";

  ServerUnderTest sut = StartServer(opt);
  Result<ScubaClient> driver = ScubaClient::Connect(sut.server->port());
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  Result<ScubaClient> sub = ScubaClient::Connect(sut.server->port());
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  ASSERT_TRUE(sub->SubscribeAll().ok());

  for (int t = 0; t < kTicks; ++t) {
    UpdateBatchMsg batch;
    batch.time = static_cast<Timestamp>(t + 1);
    batch.evaluate = true;
    batch.objects = ticks[t].objects;
    batch.queries = ticks[t].queries;
    Result<TickAckMsg> ack = driver->SendBatch(batch);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_TRUE(sub->PumpUntilRound(t + 1).ok());
    const ResultSet& expected = offline[t];
    EXPECT_TRUE(sub->folded() == expected) << "diverged at round " << (t + 1);
    EXPECT_EQ(sub->folded().degraded(), expected.degraded())
        << "round " << (t + 1);
    EXPECT_EQ(sub->folded().degraded_shards(), expected.degraded_shards());
    EXPECT_EQ(ack->degraded, expected.degraded());
  }

  EXPECT_TRUE(sub->Bye().ok());
  ASSERT_TRUE(driver->Shutdown().ok());
  EXPECT_TRUE(sut.server->Wait().ok());
  EXPECT_EQ(sut.engine.StateHash(), offline_hash);
}

/// Delegating engine that fails Evaluate at a chosen round — drives the
/// server into its terminal-abort path with sessions still connected.
class ExplodingEngine : public QueryProcessor {
 public:
  ExplodingEngine(QueryProcessor* inner, int fail_at_round)
      : inner_(inner), fail_at_(fail_at_round) {}
  std::string_view name() const override { return inner_->name(); }
  Status IngestObjectUpdate(const LocationUpdate& u) override {
    return inner_->IngestObjectUpdate(u);
  }
  Status IngestQueryUpdate(const QueryUpdate& u) override {
    return inner_->IngestQueryUpdate(u);
  }
  Status IngestBatch(std::span<const LocationUpdate> objects,
                     std::span<const QueryUpdate> queries) override {
    return inner_->IngestBatch(objects, queries);
  }
  Status Evaluate(Timestamp now, ResultSet* results) override {
    if (++rounds_ >= fail_at_) {
      return Status::Internal("injected engine failure");
    }
    return inner_->Evaluate(now, results);
  }
  size_t EstimateMemoryUsage() const override {
    return inner_->EstimateMemoryUsage();
  }
  const EvalStats& stats() const override { return inner_->stats(); }

 private:
  QueryProcessor* inner_;
  int fail_at_;
  int rounds_ = 0;
};

TEST(ServeE2eTest, TerminalAbortWithHungUpSubscriberSendsFarewell) {
  // Serving aborts (engine failure) while one subscriber has already hung up
  // without reading its last push. The terminal farewell broadcast must not
  // trip over the dead session (writing to it fails and closes it mid-loop)
  // and the surviving driver still learns WHY serving stopped.
  ScubaOptions opt;
  Result<EngineHandle> handle = MakeEngine(opt);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ExplodingEngine engine(handle->engine.get(), /*fail_at_round=*/2);
  ServerDeps deps;
  deps.engine = &engine;
  Result<std::unique_ptr<ScubaServer>> server =
      ScubaServer::Create(ServeOptions{}, deps);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->Start().ok());

  const std::vector<TickBatch> ticks = MakeTicks(2);
  Result<ScubaClient> driver = ScubaClient::Connect((*server)->port());
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  Result<ScubaClient> sub_conn = ScubaClient::Connect((*server)->port());
  ASSERT_TRUE(sub_conn.ok()) << sub_conn.status().ToString();
  std::optional<ScubaClient> sub(std::move(sub_conn).value());
  ASSERT_TRUE(sub->SubscribeAll().ok());

  // Round 1 succeeds and pushes a delta the subscriber never reads.
  UpdateBatchMsg batch;
  batch.time = 1;
  batch.evaluate = true;
  batch.objects = ticks[0].objects;
  batch.queries = ticks[0].queries;
  ASSERT_TRUE(driver->SendBatch(batch).ok());
  // Let the push reach the subscriber's socket, then hang up abruptly — the
  // unread bytes make the close an immediate reset, so the server's farewell
  // write to this session fails mid-broadcast.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sub.reset();

  // Round 2 trips the injected engine failure: serving is now terminal.
  batch.time = 2;
  batch.objects = ticks[1].objects;
  batch.queries = ticks[1].queries;
  Result<TickAckMsg> nack = driver->SendBatch(batch);
  ASSERT_FALSE(nack.ok());
  EXPECT_EQ(nack.status().code(), StatusCode::kInternal);
  EXPECT_NE(nack.status().message().find("injected engine failure"),
            std::string::npos);

  Status terminal = (*server)->Wait();
  ASSERT_FALSE(terminal.ok());
  EXPECT_EQ(terminal.code(), StatusCode::kInternal);
}

TEST(ServeE2eTest, RegressedBatchIsRejectedWithoutPoisoningTheRound) {
  // A batch that does not advance the clock is refused per-batch (non-fatal)
  // and never touches the engine, so the accepted prefix still bit-matches
  // offline replay of that prefix.
  ScubaOptions opt;
  const std::vector<TickBatch> ticks = MakeTicks(4);
  uint64_t offline_hash = 0;
  const std::vector<ResultSet> offline =
      OfflineRounds(opt, ticks, /*delta=*/1, &offline_hash);

  ServerUnderTest sut = StartServer(opt);
  Result<ScubaClient> driver = ScubaClient::Connect(sut.server->port());
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  ASSERT_TRUE(driver->SubscribeAll().ok());

  for (int t = 0; t < 4; ++t) {
    UpdateBatchMsg batch;
    batch.time = static_cast<Timestamp>(t + 1);
    batch.evaluate = true;
    batch.objects = ticks[t].objects;
    batch.queries = ticks[t].queries;
    ASSERT_TRUE(driver->SendBatch(batch).ok());
    if (t == 1) {
      // Replay the same stamp: rejected, engine untouched.
      UpdateBatchMsg stale = batch;
      Result<TickAckMsg> nack = driver->SendBatch(stale);
      ASSERT_FALSE(nack.ok());
      EXPECT_EQ(nack.status().code(), StatusCode::kFailedPrecondition);
    }
  }
  EXPECT_TRUE(driver->folded() == offline.back());
  ASSERT_TRUE(driver->Shutdown().ok());
  EXPECT_TRUE(sut.server->Wait().ok());
  EXPECT_EQ(sut.engine.StateHash(), offline_hash);
}

}  // namespace
}  // namespace scuba::serve
