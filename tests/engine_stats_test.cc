#include "eval/engine_stats.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

EvalStats SampleStats() {
  EvalStats s;
  s.evaluations = 4;
  s.total_join_seconds = 2.0;
  s.total_maintenance_seconds = 1.0;
  s.total_results = 100;
  s.comparisons = 5000;
  s.cluster_pairs_tested = 80;
  s.cluster_pairs_overlapping = 20;
  return s;
}

TEST(EngineStatsTest, Averages) {
  EvalStats s = SampleStats();
  EXPECT_DOUBLE_EQ(AvgJoinSeconds(s), 0.5);
  EXPECT_DOUBLE_EQ(AvgMaintenanceSeconds(s), 0.25);
}

TEST(EngineStatsTest, AveragesWithNoRounds) {
  EvalStats s;
  EXPECT_EQ(AvgJoinSeconds(s), 0.0);
  EXPECT_EQ(AvgMaintenanceSeconds(s), 0.0);
}

TEST(EngineStatsTest, Selectivity) {
  EvalStats s = SampleStats();
  EXPECT_DOUBLE_EQ(JoinBetweenSelectivity(s), 0.25);
  EvalStats none;
  EXPECT_EQ(JoinBetweenSelectivity(none), 0.0);
}

TEST(EngineStatsTest, FormatMentionsFields) {
  std::string out = FormatStats("scuba", SampleStats());
  EXPECT_NE(out.find("scuba"), std::string::npos);
  EXPECT_NE(out.find("evals=4"), std::string::npos);
  EXPECT_NE(out.find("results=100"), std::string::npos);
  EXPECT_NE(out.find("pairs=20/80"), std::string::npos);
}

TEST(EngineStatsTest, FormatAddsDurabilityOnlyWhenPresent) {
  // Non-durable runs keep the historical line byte for byte.
  std::string clean = FormatStats("scuba", SampleStats());
  EXPECT_EQ(clean.find("wal-records="), std::string::npos);
  EXPECT_EQ(clean.find("replayed-rounds="), std::string::npos);

  EvalStats s = SampleStats();
  s.wal_records_appended = 8;
  s.wal_bytes_appended = 4096;
  s.checkpoints_written = 2;
  s.recovery_replay_rounds = 3;
  std::string durable = FormatStats("scuba", s);
  EXPECT_NE(durable.find("wal-records=8"), std::string::npos);
  EXPECT_NE(durable.find("wal-bytes=4096"), std::string::npos);
  EXPECT_NE(durable.find("checkpoints=2"), std::string::npos);
  EXPECT_NE(durable.find("replayed-rounds=3"), std::string::npos);
  EXPECT_EQ(durable.find(clean), 0u) << "historical prefix must be intact";
}

}  // namespace
}  // namespace scuba
