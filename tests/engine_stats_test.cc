#include "eval/engine_stats.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

EvalStats SampleStats() {
  EvalStats s;
  s.evaluations = 4;
  s.total_join_seconds = 2.0;
  s.total_maintenance_seconds = 1.0;
  s.total_results = 100;
  s.comparisons = 5000;
  s.cluster_pairs_tested = 80;
  s.cluster_pairs_overlapping = 20;
  return s;
}

TEST(EngineStatsTest, Averages) {
  EvalStats s = SampleStats();
  EXPECT_DOUBLE_EQ(AvgJoinSeconds(s), 0.5);
  EXPECT_DOUBLE_EQ(AvgMaintenanceSeconds(s), 0.25);
}

TEST(EngineStatsTest, AveragesWithNoRounds) {
  EvalStats s;
  EXPECT_EQ(AvgJoinSeconds(s), 0.0);
  EXPECT_EQ(AvgMaintenanceSeconds(s), 0.0);
}

TEST(EngineStatsTest, Selectivity) {
  EvalStats s = SampleStats();
  EXPECT_DOUBLE_EQ(JoinBetweenSelectivity(s), 0.25);
  EvalStats none;
  EXPECT_EQ(JoinBetweenSelectivity(none), 0.0);
}

TEST(EngineStatsTest, FormatMentionsFields) {
  std::string out = FormatStats("scuba", SampleStats());
  EXPECT_NE(out.find("scuba"), std::string::npos);
  EXPECT_NE(out.find("evals=4"), std::string::npos);
  EXPECT_NE(out.find("results=100"), std::string::npos);
  EXPECT_NE(out.find("pairs=20/80"), std::string::npos);
}

}  // namespace
}  // namespace scuba
