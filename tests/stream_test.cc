#include "stream/pipeline.h"

#include <gtest/gtest.h>

#include "baseline/naive_join_engine.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "stream/clock.h"

namespace scuba {
namespace {

TEST(SimulationClockTest, CreateValidatesDelta) {
  EXPECT_TRUE(SimulationClock::Create(0).status().IsInvalidArgument());
  EXPECT_TRUE(SimulationClock::Create(-1).status().IsInvalidArgument());
  EXPECT_TRUE(SimulationClock::Create(2).ok());
}

TEST(SimulationClockTest, AdvanceFiresEveryDelta) {
  SimulationClock clock = std::move(SimulationClock::Create(3).value());
  EXPECT_EQ(clock.now(), 0);
  EXPECT_FALSE(clock.Advance());  // t=1
  EXPECT_FALSE(clock.Advance());  // t=2
  EXPECT_TRUE(clock.Advance());   // t=3
  EXPECT_FALSE(clock.Advance());  // t=4
  EXPECT_EQ(clock.now(), 4);
  EXPECT_EQ(clock.TicksUntilEvaluation(), 2);
}

TEST(SimulationClockTest, DeltaOneFiresEveryTick) {
  SimulationClock clock = std::move(SimulationClock::Create(1).value());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(clock.Advance());
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : city_(DefaultBenchmarkCity(51)) {
    WorkloadOptions opt;
    opt.num_objects = 30;
    opt.num_queries = 30;
    opt.skew = 10;
    opt.seed = 51;
    Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
    EXPECT_TRUE(sim.ok());
    sim_ = std::make_unique<ObjectSimulator>(std::move(sim).value());
  }

  RoadNetwork city_;
  std::unique_ptr<ObjectSimulator> sim_;
  NaiveJoinEngine engine_;
};

TEST_F(PipelineTest, CreateValidates) {
  EXPECT_TRUE(StreamPipeline::Create(nullptr, &engine_, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), nullptr, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), &engine_, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), &engine_, 2, 1.5)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PipelineTest, EvaluatesEveryDelta) {
  Result<StreamPipeline> p = StreamPipeline::Create(sim_.get(), &engine_, 2);
  ASSERT_TRUE(p.ok());
  int sink_calls = 0;
  Timestamp last_time = 0;
  ASSERT_TRUE(p->RunTicks(10, [&](Timestamp t, const ResultSet& r) {
                 (void)r;
                 ++sink_calls;
                 EXPECT_EQ(t % 2, 0);
                 EXPECT_GT(t, last_time);
                 last_time = t;
               }).ok());
  EXPECT_EQ(sink_calls, 5);
  EXPECT_EQ(p->evaluations(), 5u);
  EXPECT_EQ(p->now(), 10);
  EXPECT_EQ(engine_.stats().evaluations, 5u);
}

TEST_F(PipelineTest, NullSinkIsFine) {
  Result<StreamPipeline> p = StreamPipeline::Create(sim_.get(), &engine_, 2);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->RunTicks(4).ok());
  EXPECT_EQ(p->evaluations(), 2u);
}

TEST_F(PipelineTest, EngineSeesAllUpdates) {
  Result<StreamPipeline> p = StreamPipeline::Create(sim_.get(), &engine_, 2);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->RunTicks(2).ok());
  EXPECT_EQ(engine_.ObjectCount(), 30u);
  EXPECT_EQ(engine_.QueryCount(), 30u);
}

TEST(ReplayTraceTest, Validates) {
  Trace t;
  EXPECT_TRUE(ReplayTrace(t, nullptr, 2).IsInvalidArgument());
  NaiveJoinEngine e;
  EXPECT_TRUE(ReplayTrace(t, &e, 0).IsInvalidArgument());
  EXPECT_TRUE(ReplayTrace(t, &e, 2).ok());  // empty trace: no-op
}

TEST(ReplayTraceTest, ReplaysBatchesAndEvaluates) {
  RoadNetwork city = DefaultBenchmarkCity(52);
  WorkloadOptions opt;
  opt.num_objects = 20;
  opt.num_queries = 20;
  opt.seed = 52;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim.ok());
  ObjectSimulator s = std::move(sim).value();
  Trace trace = RecordTrace(&s, 6);

  NaiveJoinEngine live;
  int evals = 0;
  ASSERT_TRUE(ReplayTrace(trace, &live, 3, [&](Timestamp t, const ResultSet& r) {
                 (void)t;
                 (void)r;
                 ++evals;
               }).ok());
  EXPECT_EQ(evals, 2);
  EXPECT_EQ(live.ObjectCount(), 20u);
}

TEST(ReplayTraceTest, LivePipelineAndReplayAgree) {
  // Running an engine live and replaying the recorded trace into a second
  // engine must produce identical final results.
  RoadNetwork city = DefaultBenchmarkCity(53);
  WorkloadOptions opt;
  opt.num_objects = 40;
  opt.num_queries = 40;
  opt.skew = 8;
  opt.seed = 53;

  // Record the trace from one simulator.
  Result<ObjectSimulator> sim1 = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim1.ok());
  ObjectSimulator s1 = std::move(sim1).value();
  Trace trace = RecordTrace(&s1, 6);

  // Live: identical workload (fresh simulator), engine inline.
  Result<ObjectSimulator> sim2 = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim2.ok());
  ObjectSimulator s2 = std::move(sim2).value();
  NaiveJoinEngine live;
  Result<StreamPipeline> p = StreamPipeline::Create(&s2, &live, 2);
  ASSERT_TRUE(p.ok());
  ResultSet live_last;
  ASSERT_TRUE(p->RunTicks(6, [&](Timestamp, const ResultSet& r) {
                 live_last = r;
               }).ok());

  NaiveJoinEngine replayed;
  ResultSet replay_last;
  ASSERT_TRUE(ReplayTrace(trace, &replayed, 2,
                          [&](Timestamp, const ResultSet& r) {
                            replay_last = r;
                          })
                  .ok());
  EXPECT_EQ(live_last, replay_last);
}

}  // namespace
}  // namespace scuba
