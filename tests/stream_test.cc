#include "stream/pipeline.h"

#include <gtest/gtest.h>

#include <limits>

#include "baseline/naive_join_engine.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "stream/clock.h"
#include "stream/update_validator.h"

namespace scuba {
namespace {

TEST(SimulationClockTest, CreateValidatesDelta) {
  EXPECT_TRUE(SimulationClock::Create(0).status().IsInvalidArgument());
  EXPECT_TRUE(SimulationClock::Create(-1).status().IsInvalidArgument());
  EXPECT_TRUE(SimulationClock::Create(2).ok());
}

TEST(SimulationClockTest, AdvanceFiresEveryDelta) {
  SimulationClock clock = std::move(SimulationClock::Create(3).value());
  EXPECT_EQ(clock.now(), 0);
  EXPECT_FALSE(clock.Advance());  // t=1
  EXPECT_FALSE(clock.Advance());  // t=2
  EXPECT_TRUE(clock.Advance());   // t=3
  EXPECT_FALSE(clock.Advance());  // t=4
  EXPECT_EQ(clock.now(), 4);
  EXPECT_EQ(clock.TicksUntilEvaluation(), 2);
}

TEST(SimulationClockTest, DeltaOneFiresEveryTick) {
  SimulationClock clock = std::move(SimulationClock::Create(1).value());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(clock.Advance());
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : city_(DefaultBenchmarkCity(51)) {
    WorkloadOptions opt;
    opt.num_objects = 30;
    opt.num_queries = 30;
    opt.skew = 10;
    opt.seed = 51;
    Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
    EXPECT_TRUE(sim.ok());
    sim_ = std::make_unique<ObjectSimulator>(std::move(sim).value());
  }

  RoadNetwork city_;
  std::unique_ptr<ObjectSimulator> sim_;
  NaiveJoinEngine engine_;
};

TEST_F(PipelineTest, CreateValidates) {
  EXPECT_TRUE(StreamPipeline::Create(nullptr, &engine_, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), nullptr, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), &engine_, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), &engine_, 2, 1.5)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), &engine_, 2, -0.1)
                  .status()
                  .IsInvalidArgument());
  // NaN fails every comparison, so a naive range test would admit it.
  EXPECT_TRUE(StreamPipeline::Create(sim_.get(), &engine_, 2,
                                     std::numeric_limits<double>::quiet_NaN())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PipelineTest, EvaluatesEveryDelta) {
  Result<StreamPipeline> p = StreamPipeline::Create(sim_.get(), &engine_, 2);
  ASSERT_TRUE(p.ok());
  int sink_calls = 0;
  Timestamp last_time = 0;
  ASSERT_TRUE(p->RunTicks(10, [&](Timestamp t, const ResultSet& r) {
                 (void)r;
                 ++sink_calls;
                 EXPECT_EQ(t % 2, 0);
                 EXPECT_GT(t, last_time);
                 last_time = t;
               }).ok());
  EXPECT_EQ(sink_calls, 5);
  EXPECT_EQ(p->evaluations(), 5u);
  EXPECT_EQ(p->now(), 10);
  EXPECT_EQ(engine_.stats().evaluations, 5u);
}

TEST_F(PipelineTest, NullSinkIsFine) {
  Result<StreamPipeline> p = StreamPipeline::Create(sim_.get(), &engine_, 2);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->RunTicks(4).ok());
  EXPECT_EQ(p->evaluations(), 2u);
}

TEST_F(PipelineTest, EngineSeesAllUpdates) {
  Result<StreamPipeline> p = StreamPipeline::Create(sim_.get(), &engine_, 2);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(p->RunTicks(2).ok());
  EXPECT_EQ(engine_.ObjectCount(), 30u);
  EXPECT_EQ(engine_.QueryCount(), 30u);
}

TEST(ReplayTraceTest, Validates) {
  Trace t;
  EXPECT_TRUE(ReplayTrace(t, nullptr, 2).IsInvalidArgument());
  NaiveJoinEngine e;
  EXPECT_TRUE(ReplayTrace(t, &e, 0).IsInvalidArgument());
  EXPECT_TRUE(ReplayTrace(t, &e, 2).ok());  // empty trace: no-op
}

TEST(ReplayTraceTest, ReplaysBatchesAndEvaluates) {
  RoadNetwork city = DefaultBenchmarkCity(52);
  WorkloadOptions opt;
  opt.num_objects = 20;
  opt.num_queries = 20;
  opt.seed = 52;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim.ok());
  ObjectSimulator s = std::move(sim).value();
  Trace trace = RecordTrace(&s, 6);

  NaiveJoinEngine live;
  int evals = 0;
  ASSERT_TRUE(ReplayTrace(trace, &live, 3, [&](Timestamp t, const ResultSet& r) {
                 (void)t;
                 (void)r;
                 ++evals;
               }).ok());
  EXPECT_EQ(evals, 2);
  EXPECT_EQ(live.ObjectCount(), 20u);
}

TEST(ReplayTraceTest, LivePipelineAndReplayAgree) {
  // Running an engine live and replaying the recorded trace into a second
  // engine must produce identical final results.
  RoadNetwork city = DefaultBenchmarkCity(53);
  WorkloadOptions opt;
  opt.num_objects = 40;
  opt.num_queries = 40;
  opt.skew = 8;
  opt.seed = 53;

  // Record the trace from one simulator.
  Result<ObjectSimulator> sim1 = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim1.ok());
  ObjectSimulator s1 = std::move(sim1).value();
  Trace trace = RecordTrace(&s1, 6);

  // Live: identical workload (fresh simulator), engine inline.
  Result<ObjectSimulator> sim2 = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim2.ok());
  ObjectSimulator s2 = std::move(sim2).value();
  NaiveJoinEngine live;
  Result<StreamPipeline> p = StreamPipeline::Create(&s2, &live, 2);
  ASSERT_TRUE(p.ok());
  ResultSet live_last;
  ASSERT_TRUE(p->RunTicks(6, [&](Timestamp, const ResultSet& r) {
                 live_last = r;
               }).ok());

  NaiveJoinEngine replayed;
  ResultSet replay_last;
  ASSERT_TRUE(ReplayTrace(trace, &replayed, 2,
                          [&](Timestamp, const ResultSet& r) {
                            replay_last = r;
                          })
                  .ok());
  EXPECT_EQ(live_last, replay_last);
}

/// A tiny trace whose batch stamps are taken verbatim from `times`, one
/// well-formed object update per batch.
Trace TraceWithTimes(const std::vector<Timestamp>& times) {
  Trace trace;
  for (size_t i = 0; i < times.size(); ++i) {
    TickBatch batch;
    batch.time = times[i];
    LocationUpdate u;
    u.oid = static_cast<uint32_t>(i + 1);
    u.position = Point{100.0 + 10.0 * i, 100.0};
    u.time = times[i];
    u.speed = 5.0;
    u.dest_node = 0;
    u.dest_position = Point{500.0, 500.0};
    batch.object_updates.push_back(u);
    trace.Append(std::move(batch));
  }
  return trace;
}

TEST(ReplayTraceTest, NonMonotonicBatchTimeFailsPrecondition) {
  NaiveJoinEngine engine;
  // Stalled and regressed stamps both violate the consecutive-tick contract.
  EXPECT_TRUE(ReplayTrace(TraceWithTimes({1, 1}), &engine, 2)
                  .IsFailedPrecondition());
  EXPECT_TRUE(ReplayTrace(TraceWithTimes({1, 2, 1}), &engine, 2)
                  .IsFailedPrecondition());
}

TEST(ReplayTraceTest, QuarantineValidatorStillFailsNonMonotonicBatches) {
  // Only kRepair opts into resynchronization; a quarantining validator keeps
  // the strict batch-time contract.
  NaiveJoinEngine engine;
  ValidatorConfig config;
  config.policy = BadUpdatePolicy::kQuarantine;
  UpdateValidator validator(config);
  EXPECT_TRUE(ReplayTrace(TraceWithTimes({1, 1}), &engine, 2, nullptr,
                          &validator)
                  .IsFailedPrecondition());
}

TEST(ReplayTraceTest, RepairValidatorResyncsNonMonotonicBatches) {
  NaiveJoinEngine engine;
  ValidatorConfig config;
  config.policy = BadUpdatePolicy::kRepair;
  UpdateValidator validator(config);
  std::vector<Timestamp> sink_times;
  ASSERT_TRUE(ReplayTrace(TraceWithTimes({1, 1, 1}), &engine, 1,
                          [&](Timestamp t, const ResultSet&) {
                            sink_times.push_back(t);
                          },
                          &validator)
                  .ok());
  // Batches resync to consecutive ticks and every update is admitted (its
  // stamp repaired up to the resynced batch time).
  EXPECT_EQ(sink_times, (std::vector<Timestamp>{1, 2, 3}));
  EXPECT_EQ(engine.ObjectCount(), 3u);
  EXPECT_EQ(validator.stats().admitted, 3u);
  EXPECT_EQ(validator.stats().repaired, 2u);  // stamps 1,1 lifted to 2,3
  EXPECT_EQ(validator.stats().TotalRejected(), 0u);
}

}  // namespace
}  // namespace scuba
