#include "common/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scuba {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.StdDev(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(5.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Mean(), 5.0);
  EXPECT_EQ(h.Min(), 5.0);
  EXPECT_EQ(h.Max(), 5.0);
  EXPECT_EQ(h.StdDev(), 0.0);
  EXPECT_EQ(h.Percentile(0), 5.0);
  EXPECT_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_NEAR(h.StdDev(), std::sqrt(2.0), 1e-12);
}

TEST(HistogramTest, PercentileNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(50), 50.0);
  EXPECT_EQ(h.Percentile(99), 99.0);
  EXPECT_EQ(h.Percentile(100), 100.0);
  EXPECT_EQ(h.Percentile(1), 1.0);
}

TEST(HistogramTest, PercentileClampsInput) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_EQ(h.Percentile(-10), 1.0);
  EXPECT_EQ(h.Percentile(200), 2.0);
}

TEST(HistogramTest, PercentileUnsortedInput) {
  Histogram h;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) h.Add(v);
  EXPECT_EQ(h.Percentile(50), 5.0);
}

TEST(HistogramTest, AddAfterPercentileInvalidatesCache) {
  Histogram h;
  h.Add(1.0);
  EXPECT_EQ(h.Percentile(100), 1.0);
  h.Add(10.0);
  EXPECT_EQ(h.Percentile(100), 10.0);
}

TEST(HistogramTest, Merge) {
  Histogram a;
  a.Add(1.0);
  a.Add(2.0);
  Histogram b;
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
  EXPECT_EQ(a.Max(), 3.0);
  EXPECT_EQ(b.count(), 1);  // source untouched
}

TEST(HistogramTest, Clear) {
  Histogram h;
  h.Add(1.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, ToStringMentionsFields) {
  Histogram h;
  h.Add(2.0);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("mean=2"), std::string::npos);
}

}  // namespace
}  // namespace scuba
