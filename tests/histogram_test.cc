#include "common/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace scuba {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.StdDev(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(5.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Mean(), 5.0);
  EXPECT_EQ(h.Min(), 5.0);
  EXPECT_EQ(h.Max(), 5.0);
  EXPECT_EQ(h.StdDev(), 0.0);
  EXPECT_EQ(h.Percentile(0), 5.0);
  EXPECT_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_NEAR(h.StdDev(), std::sqrt(2.0), 1e-12);
}

TEST(HistogramTest, PercentileNearestRank) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(50), 50.0);
  EXPECT_EQ(h.Percentile(99), 99.0);
  EXPECT_EQ(h.Percentile(100), 100.0);
  EXPECT_EQ(h.Percentile(1), 1.0);
}

TEST(HistogramTest, PercentileClampsInput) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_EQ(h.Percentile(-10), 1.0);
  EXPECT_EQ(h.Percentile(200), 2.0);
}

TEST(HistogramTest, PercentileUnsortedInput) {
  Histogram h;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) h.Add(v);
  EXPECT_EQ(h.Percentile(50), 5.0);
}

TEST(HistogramTest, AddAfterPercentileInvalidatesCache) {
  Histogram h;
  h.Add(1.0);
  EXPECT_EQ(h.Percentile(100), 1.0);
  h.Add(10.0);
  EXPECT_EQ(h.Percentile(100), 10.0);
}

TEST(HistogramTest, Merge) {
  Histogram a;
  a.Add(1.0);
  a.Add(2.0);
  Histogram b;
  b.Add(3.0);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
  EXPECT_EQ(a.Max(), 3.0);
  EXPECT_EQ(b.count(), 1);  // source untouched
}

TEST(HistogramTest, BucketedAddAndStats) {
  Result<Histogram> h = Histogram::WithBuckets({1.0, 2.0, 4.0});
  ASSERT_TRUE(h.ok());
  for (double v : {0.5, 1.5, 1.5, 3.0, 10.0}) h->Add(v);
  EXPECT_TRUE(h->bucketed());
  EXPECT_EQ(h->count(), 5);
  EXPECT_DOUBLE_EQ(h->sum(), 16.5);
  EXPECT_DOUBLE_EQ(h->Min(), 0.5);
  EXPECT_DOUBLE_EQ(h->Max(), 10.0);
  ASSERT_EQ(h->bucket_counts().size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(h->bucket_counts()[0], 1u);
  EXPECT_EQ(h->bucket_counts()[1], 2u);
  EXPECT_EQ(h->bucket_counts()[2], 1u);
  EXPECT_EQ(h->bucket_counts()[3], 1u);
}

TEST(HistogramTest, BucketedPercentileInterpolates) {
  Result<Histogram> h = Histogram::WithBuckets({10.0, 20.0});
  ASSERT_TRUE(h.ok());
  for (int i = 0; i < 10; ++i) h->Add(5.0);
  // All samples in the first bucket: p100 reaches the bucket's upper edge.
  EXPECT_GT(h->Percentile(50), 0.0);
  EXPECT_LE(h->Percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(h->Percentile(100), 10.0);
}

TEST(HistogramTest, BucketedRejectsBadBounds) {
  EXPECT_FALSE(Histogram::WithBuckets({}).ok());
  EXPECT_FALSE(Histogram::WithBuckets({1.0, 1.0}).ok());
  EXPECT_FALSE(Histogram::WithBuckets({2.0, 1.0}).ok());
  Result<Histogram> nan = Histogram::WithBuckets({std::nan("")});
  EXPECT_FALSE(nan.ok());
  EXPECT_EQ(Histogram::WithBuckets({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HistogramTest, MergeMismatchedBucketLayoutsIsInvalidArgument) {
  Result<Histogram> a = Histogram::WithBuckets({1.0, 2.0});
  Result<Histogram> b = Histogram::WithBuckets({1.0, 3.0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->Add(0.5);
  b->Add(2.5);
  Status s = a->Merge(*b);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The failed merge left the target untouched.
  EXPECT_EQ(a->count(), 1);
  EXPECT_DOUBLE_EQ(a->sum(), 0.5);
}

TEST(HistogramTest, MergeMixedModesIsInvalidArgument) {
  Histogram sample;
  sample.Add(1.0);
  Result<Histogram> bucketed = Histogram::WithBuckets({1.0});
  ASSERT_TRUE(bucketed.ok());
  EXPECT_EQ(sample.Merge(*bucketed).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bucketed->Merge(sample).code(), StatusCode::kInvalidArgument);
}

TEST(HistogramTest, MergeMatchingBucketsSums) {
  Result<Histogram> a = Histogram::WithBuckets({1.0, 2.0});
  Result<Histogram> b = Histogram::WithBuckets({1.0, 2.0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->Add(0.5);
  b->Add(1.5);
  b->Add(9.0);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->count(), 3);
  EXPECT_DOUBLE_EQ(a->sum(), 11.0);
  EXPECT_DOUBLE_EQ(a->Min(), 0.5);
  EXPECT_DOUBLE_EQ(a->Max(), 9.0);
  EXPECT_EQ(a->bucket_counts()[2], 1u);  // overflow bucket came across
}

TEST(HistogramTest, FromBucketDataReconstructsShard) {
  Result<Histogram> h =
      Histogram::FromBucketData({1.0, 2.0}, {3, 2, 1}, 7.5);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->count(), 6);
  EXPECT_DOUBLE_EQ(h->sum(), 7.5);
  // Wrong count vector length is rejected.
  EXPECT_EQ(Histogram::FromBucketData({1.0, 2.0}, {3, 2}, 5.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HistogramTest, Clear) {
  Histogram h;
  h.Add(1.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, ToStringMentionsFields) {
  Histogram h;
  h.Add(2.0);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("mean=2"), std::string::npos);
}

}  // namespace
}  // namespace scuba
