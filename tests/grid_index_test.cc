#include "index/grid_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

GridIndex MakeGrid(double extent = 100.0, uint32_t cells = 10) {
  Result<GridIndex> g = GridIndex::Create(Rect{0, 0, extent, extent}, cells);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(GridIndexTest, CreateRejectsBadArgs) {
  EXPECT_TRUE(
      GridIndex::Create(Rect{0, 0, 10, 10}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      GridIndex::Create(Rect{10, 0, 0, 10}, 5).status().IsInvalidArgument());
  EXPECT_TRUE(
      GridIndex::Create(Rect{0, 0, 0, 10}, 5).status().IsInvalidArgument());
}

TEST(GridIndexTest, Geometry) {
  GridIndex g = MakeGrid(100.0, 10);
  EXPECT_EQ(g.CellCount(), 100u);
  EXPECT_EQ(g.cells_per_side(), 10u);
  EXPECT_EQ(g.CellIndexOf({5, 5}), 0u);
  EXPECT_EQ(g.CellIndexOf({15, 5}), 1u);
  EXPECT_EQ(g.CellIndexOf({5, 15}), 10u);
  EXPECT_EQ(g.CellIndexOf({95, 95}), 99u);
}

TEST(GridIndexTest, OutOfRegionPointsClampToBorder) {
  GridIndex g = MakeGrid(100.0, 10);
  EXPECT_EQ(g.CellIndexOf({-50, -50}), 0u);
  EXPECT_EQ(g.CellIndexOf({150, 150}), 99u);
  EXPECT_EQ(g.CellIndexOf({50, -50}), 5u);
  EXPECT_EQ(g.CellIndexOf({100.0, 100.0}), 99u);  // max boundary
}

TEST(GridIndexTest, CellBounds) {
  GridIndex g = MakeGrid(100.0, 10);
  EXPECT_EQ(g.CellBounds(0), (Rect{0, 0, 10, 10}));
  EXPECT_EQ(g.CellBounds(11), (Rect{10, 10, 20, 20}));
  EXPECT_EQ(g.CellBounds(99), (Rect{90, 90, 100, 100}));
}

TEST(GridIndexTest, InsertPointAndLookup) {
  GridIndex g = MakeGrid();
  ASSERT_TRUE(g.Insert(7, Point{15, 25}).ok());
  EXPECT_TRUE(g.Contains(7));
  EXPECT_EQ(g.size(), 1u);
  const std::vector<uint32_t>& entries = g.EntriesNear({15, 25});
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], 7u);
  EXPECT_TRUE(g.EntriesNear({95, 95}).empty());
}

TEST(GridIndexTest, DuplicateInsertFails) {
  GridIndex g = MakeGrid();
  ASSERT_TRUE(g.Insert(1, Point{5, 5}).ok());
  EXPECT_TRUE(g.Insert(1, Point{50, 50}).IsAlreadyExists());
}

TEST(GridIndexTest, InsertRectSpansCells) {
  GridIndex g = MakeGrid(100.0, 10);
  ASSERT_TRUE(g.Insert(3, Rect{5, 5, 25, 15}).ok());
  // Overlaps cells (0,0),(1,0),(2,0),(0,1),(1,1),(2,1).
  EXPECT_EQ(g.EntriesNear({6, 6}).size(), 1u);
  EXPECT_EQ(g.EntriesNear({24, 14}).size(), 1u);
  EXPECT_TRUE(g.EntriesNear({6, 26}).empty());
}

TEST(GridIndexTest, InsertEmptyRectFails) {
  GridIndex g = MakeGrid();
  EXPECT_TRUE(g.Insert(3, Rect{5, 5, 4, 4}).IsInvalidArgument());
}

TEST(GridIndexTest, InsertCircleRefinesCorners) {
  GridIndex g = MakeGrid(100.0, 10);
  // Circle centered on a cell-corner junction with radius that reaches the
  // 4 adjacent cells but NOT the diagonal cells' interiors beyond... use a
  // circle at (50,50), r=12: bounding box covers cells 3..6 in each axis
  // (x from 38 to 62), 9 candidate cells; corner cells like (30..40,30..40)
  // are outside the disk.
  ASSERT_TRUE(g.Insert(9, Circle{{50, 50}, 12}).ok());
  EXPECT_EQ(g.EntriesNear({45, 45}).size(), 1u);  // cell containing center
  EXPECT_EQ(g.EntriesNear({55, 45}).size(), 1u);
  EXPECT_EQ(g.EntriesNear({45, 39}).size(), 1u);  // below: disk reaches 38
  // Diagonal cell [30,40)x[30,40): closest point (40,40) is distance
  // sqrt(200) ~ 14.1 > 12 from the center: must not be registered.
  EXPECT_TRUE(g.EntriesNear({35, 35}).empty());
}

TEST(GridIndexTest, ZeroRadiusCircleActsAsPoint) {
  GridIndex g = MakeGrid();
  ASSERT_TRUE(g.Insert(4, Circle{{33, 44}, 0.0}).ok());
  EXPECT_EQ(g.EntriesNear({33, 44}).size(), 1u);
  EXPECT_EQ(g.size(), 1u);
}

TEST(GridIndexTest, RemoveErasesEverywhere) {
  GridIndex g = MakeGrid(100.0, 10);
  ASSERT_TRUE(g.Insert(5, Rect{5, 5, 35, 35}).ok());
  ASSERT_TRUE(g.Remove(5).ok());
  EXPECT_FALSE(g.Contains(5));
  EXPECT_EQ(g.size(), 0u);
  for (uint32_t c = 0; c < g.CellCount(); ++c) {
    EXPECT_TRUE(g.CellEntries(c).empty());
  }
}

TEST(GridIndexTest, RemoveMissingIsNotFound) {
  GridIndex g = MakeGrid();
  EXPECT_TRUE(g.Remove(42).IsNotFound());
}

TEST(GridIndexTest, UpdateMoves) {
  GridIndex g = MakeGrid();
  ASSERT_TRUE(g.Insert(1, Point{5, 5}).ok());
  ASSERT_TRUE(g.Update(1, Point{95, 95}).ok());
  EXPECT_TRUE(g.EntriesNear({5, 5}).empty());
  EXPECT_EQ(g.EntriesNear({95, 95}).size(), 1u);
  EXPECT_EQ(g.size(), 1u);
}

TEST(GridIndexTest, UpdateMissingIsNotFound) {
  GridIndex g = MakeGrid();
  EXPECT_TRUE(g.Update(1, Point{5, 5}).IsNotFound());
}

TEST(GridIndexTest, UpdateWithEmptyRectLeavesKeyIntact) {
  GridIndex g = MakeGrid();
  ASSERT_TRUE(g.Insert(1, Point{5, 5}).ok());
  EXPECT_TRUE(g.Update(1, Rect{9, 9, 2, 2}).IsInvalidArgument());
  // The failed update must not have stranded the key half-removed.
  EXPECT_TRUE(g.Contains(1));
  EXPECT_EQ(g.EntriesNear({5, 5}).size(), 1u);
}

TEST(GridIndexTest, CollectInRectDedups) {
  GridIndex g = MakeGrid(100.0, 10);
  // Key 8 spans 4 cells; collecting over all of them must return it once.
  ASSERT_TRUE(g.Insert(8, Rect{5, 5, 25, 25}).ok());
  ASSERT_TRUE(g.Insert(9, Point{50, 50}).ok());
  std::vector<uint32_t> out;
  g.CollectInRect(Rect{0, 0, 100, 100}, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{8, 9}));
}

TEST(GridIndexTest, CollectInEmptyRectIsNoop) {
  GridIndex g = MakeGrid();
  ASSERT_TRUE(g.Insert(1, Point{5, 5}).ok());
  std::vector<uint32_t> out;
  g.CollectInRect(Rect{5, 5, 4, 4}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(GridIndexTest, ClearRemovesEverything) {
  GridIndex g = MakeGrid();
  ASSERT_TRUE(g.Insert(1, Point{5, 5}).ok());
  ASSERT_TRUE(g.Insert(2, Point{15, 15}).ok());
  g.Clear();
  EXPECT_EQ(g.size(), 0u);
  EXPECT_FALSE(g.Contains(1));
  // Reinsert works after clear.
  EXPECT_TRUE(g.Insert(1, Point{5, 5}).ok());
}

TEST(GridIndexTest, MemoryGrowsWithEntriesAndCells) {
  GridIndex small = MakeGrid(100.0, 10);
  GridIndex big = MakeGrid(100.0, 100);
  EXPECT_GT(big.EstimateMemoryUsage(), small.EstimateMemoryUsage());
  size_t before = small.EstimateMemoryUsage();
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(small.Insert(i, Point{static_cast<double>(i), 50.0}).ok());
  }
  EXPECT_GT(small.EstimateMemoryUsage(), before);
}

// Property: the set of keys found via cells overlapping a probe rect equals a
// brute-force filter over tracked placements.
class GridIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridIndexPropertyTest, CollectMatchesBruteForce) {
  Rng rng(GetParam());
  GridIndex g = MakeGrid(1000.0, 20);
  struct Entry {
    uint32_t key;
    Rect bounds;
  };
  std::vector<Entry> entries;
  for (uint32_t k = 0; k < 200; ++k) {
    double x = rng.NextDouble(0, 950);
    double y = rng.NextDouble(0, 950);
    Rect r{x, y, x + rng.NextDouble(0.1, 50), y + rng.NextDouble(0.1, 50)};
    ASSERT_TRUE(g.Insert(k, r).ok());
    entries.push_back({k, r});
  }
  for (int probe = 0; probe < 50; ++probe) {
    double x = rng.NextDouble(0, 900);
    double y = rng.NextDouble(0, 900);
    Rect pr{x, y, x + rng.NextDouble(1, 100), y + rng.NextDouble(1, 100)};
    std::vector<uint32_t> got;
    g.CollectInRect(pr, &got);
    std::set<uint32_t> got_set(got.begin(), got.end());
    // Everything whose bounds intersect the probe must be found (the grid may
    // legitimately return extras that share cells without true overlap).
    for (const Entry& e : entries) {
      if (Intersects(e.bounds, pr)) {
        EXPECT_TRUE(got_set.count(e.key))
            << "missing key " << e.key << " for probe";
      }
    }
    // And no duplicates.
    EXPECT_EQ(got.size(), got_set.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexPropertyTest,
                         ::testing::Values(101, 202, 303));

TEST(GridIndexTest, GenerationCountsEveryMutation) {
  GridIndex grid = GridIndex::Create(Rect{0, 0, 1000, 1000}, 10).value();
  EXPECT_EQ(grid.generation(), 0u);
  ASSERT_TRUE(grid.Insert(1, Point{100, 100}).ok());
  const uint64_t after_insert = grid.generation();
  EXPECT_GT(after_insert, 0u);
  // Update re-places the key: the generation must advance (consumers caching
  // FlattenEntries snapshots key on it).
  ASSERT_TRUE(grid.Update(1, Point{900, 900}).ok());
  const uint64_t after_update = grid.generation();
  EXPECT_GT(after_update, after_insert);
  ASSERT_TRUE(grid.Remove(1).ok());
  const uint64_t after_remove = grid.generation();
  EXPECT_GT(after_remove, after_update);
  // Reads leave the generation alone.
  std::vector<uint32_t> offsets, entries;
  grid.FlattenEntries(&offsets, &entries);
  (void)grid.CellEntries(0);
  EXPECT_EQ(grid.generation(), after_remove);
  grid.Clear();
  EXPECT_GT(grid.generation(), after_remove);
}

}  // namespace
}  // namespace scuba
