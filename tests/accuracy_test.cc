#include "eval/accuracy.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

ResultSet Make(std::initializer_list<Match> matches) {
  ResultSet r;
  for (const Match& m : matches) r.Add(m.qid, m.oid);
  r.Normalize();
  return r;
}

TEST(AccuracyTest, IdenticalSetsArePerfect) {
  ResultSet truth = Make({{1, 1}, {1, 2}, {2, 3}});
  AccuracyReport r = CompareResults(truth, truth);
  EXPECT_EQ(r.true_positives, 3u);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_EQ(r.Precision(), 1.0);
  EXPECT_EQ(r.Recall(), 1.0);
  EXPECT_EQ(r.Accuracy(), 1.0);
  EXPECT_EQ(r.F1(), 1.0);
}

TEST(AccuracyTest, BothEmptyIsPerfect) {
  AccuracyReport r = CompareResults(ResultSet{}, ResultSet{});
  EXPECT_EQ(r.Accuracy(), 1.0);
  EXPECT_EQ(r.Precision(), 1.0);
  EXPECT_EQ(r.Recall(), 1.0);
}

TEST(AccuracyTest, FalsePositivesOnly) {
  ResultSet truth = Make({{1, 1}});
  ResultSet reported = Make({{1, 1}, {1, 2}, {2, 1}});
  AccuracyReport r = CompareResults(truth, reported);
  EXPECT_EQ(r.true_positives, 1u);
  EXPECT_EQ(r.false_positives, 2u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_NEAR(r.Precision(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(r.Recall(), 1.0);
  EXPECT_NEAR(r.Accuracy(), 1.0 / 3.0, 1e-12);
}

TEST(AccuracyTest, FalseNegativesOnly) {
  ResultSet truth = Make({{1, 1}, {1, 2}, {3, 3}});
  ResultSet reported = Make({{1, 2}});
  AccuracyReport r = CompareResults(truth, reported);
  EXPECT_EQ(r.true_positives, 1u);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.false_negatives, 2u);
  EXPECT_EQ(r.Precision(), 1.0);
  EXPECT_NEAR(r.Recall(), 1.0 / 3.0, 1e-12);
}

TEST(AccuracyTest, MixedErrors) {
  ResultSet truth = Make({{1, 1}, {2, 2}});
  ResultSet reported = Make({{1, 1}, {9, 9}});
  AccuracyReport r = CompareResults(truth, reported);
  EXPECT_EQ(r.true_positives, 1u);
  EXPECT_EQ(r.false_positives, 1u);
  EXPECT_EQ(r.false_negatives, 1u);
  EXPECT_NEAR(r.Accuracy(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.F1(), 0.5, 1e-12);
}

TEST(AccuracyTest, EmptyReportedAgainstNonEmptyTruth) {
  ResultSet truth = Make({{1, 1}});
  AccuracyReport r = CompareResults(truth, ResultSet{});
  EXPECT_EQ(r.Recall(), 0.0);
  EXPECT_EQ(r.Precision(), 1.0);  // vacuous precision
  EXPECT_EQ(r.Accuracy(), 0.0);
  EXPECT_EQ(r.F1(), 0.0);
}

TEST(AccuracyTest, AccumulatorSums) {
  AccuracyAccumulator acc;
  ResultSet truth = Make({{1, 1}, {2, 2}});
  acc.Add(CompareResults(truth, Make({{1, 1}})));
  acc.Add(CompareResults(truth, Make({{1, 1}, {2, 2}, {3, 3}})));
  EXPECT_EQ(acc.rounds(), 2u);
  EXPECT_EQ(acc.total().true_positives, 3u);
  EXPECT_EQ(acc.total().false_negatives, 1u);
  EXPECT_EQ(acc.total().false_positives, 1u);
  EXPECT_EQ(acc.total().truth_size, 4u);
}

TEST(AccuracyTest, ToStringMentionsCounts) {
  ResultSet truth = Make({{1, 1}});
  std::string s = CompareResults(truth, truth).ToString();
  EXPECT_NE(s.find("tp=1"), std::string::npos);
  EXPECT_NE(s.find("accuracy=1"), std::string::npos);
}

}  // namespace
}  // namespace scuba
