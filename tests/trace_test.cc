#include "gen/trace.h"

#include <gtest/gtest.h>

#include "gen/workload_generator.h"
#include "network/grid_city.h"

namespace scuba {
namespace {

Trace SmallTrace(int ticks = 4, uint64_t seed = 31) {
  RoadNetwork city = DefaultBenchmarkCity(seed);
  WorkloadOptions opt;
  opt.num_objects = 20;
  opt.num_queries = 15;
  opt.skew = 5;
  opt.seed = seed;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, opt);
  EXPECT_TRUE(sim.ok());
  ObjectSimulator s = std::move(sim).value();
  return RecordTrace(&s, ticks);
}

TEST(TraceTest, RecordProducesOneBatchPerTick) {
  Trace t = SmallTrace(5);
  EXPECT_EQ(t.TickCount(), 5u);
  for (size_t i = 0; i < t.TickCount(); ++i) {
    EXPECT_EQ(t.batch(i).time, static_cast<Timestamp>(i + 1));
    EXPECT_EQ(t.batch(i).object_updates.size(), 20u);  // 100% update rate
    EXPECT_EQ(t.batch(i).query_updates.size(), 15u);
  }
  EXPECT_EQ(t.TotalUpdates(), 5u * 35u);
}

TEST(TraceTest, PartialUpdateFraction) {
  RoadNetwork city = DefaultBenchmarkCity(32);
  WorkloadOptions opt;
  opt.num_objects = 200;
  opt.num_queries = 200;
  opt.seed = 32;
  Result<ObjectSimulator> sim = GenerateWorkload(&city, opt);
  ASSERT_TRUE(sim.ok());
  ObjectSimulator s = std::move(sim).value();
  Trace t = RecordTrace(&s, 3, 0.25);
  for (size_t i = 0; i < t.TickCount(); ++i) {
    size_t n = t.batch(i).object_updates.size() +
               t.batch(i).query_updates.size();
    EXPECT_GT(n, 40u);
    EXPECT_LT(n, 160u);
  }
}

TEST(TraceTest, SerializeParseRoundTrip) {
  Trace t = SmallTrace(3);
  std::string text = t.Serialize();
  Result<Trace> back = Trace::Parse(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->TickCount(), t.TickCount());
  for (size_t i = 0; i < t.TickCount(); ++i) {
    const TickBatch& a = t.batch(i);
    const TickBatch& b = back->batch(i);
    EXPECT_EQ(a.time, b.time);
    ASSERT_EQ(a.object_updates.size(), b.object_updates.size());
    ASSERT_EQ(a.query_updates.size(), b.query_updates.size());
    for (size_t j = 0; j < a.object_updates.size(); ++j) {
      EXPECT_EQ(a.object_updates[j].oid, b.object_updates[j].oid);
      EXPECT_EQ(a.object_updates[j].position, b.object_updates[j].position);
      EXPECT_EQ(a.object_updates[j].speed, b.object_updates[j].speed);
      EXPECT_EQ(a.object_updates[j].dest_node, b.object_updates[j].dest_node);
      EXPECT_EQ(a.object_updates[j].attrs, b.object_updates[j].attrs);
    }
    for (size_t j = 0; j < a.query_updates.size(); ++j) {
      EXPECT_EQ(a.query_updates[j].qid, b.query_updates[j].qid);
      EXPECT_EQ(a.query_updates[j].position, b.query_updates[j].position);
      EXPECT_EQ(a.query_updates[j].range_width, b.query_updates[j].range_width);
      EXPECT_EQ(a.query_updates[j].range_height,
                b.query_updates[j].range_height);
    }
  }
}

TEST(TraceTest, ParseRejectsMissingHeader) {
  EXPECT_TRUE(Trace::Parse("tick 1\n").status().IsCorruption());
}

TEST(TraceTest, ParseRejectsUpdateBeforeTick) {
  EXPECT_TRUE(Trace::Parse("scuba-trace 1\no 1 0 0 1 5 0 0 0 0\n")
                  .status()
                  .IsCorruption());
}

TEST(TraceTest, ParseRejectsMalformedRecords) {
  EXPECT_TRUE(Trace::Parse("scuba-trace 1\ntick banana\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(Trace::Parse("scuba-trace 1\ntick 1\no 1 xyz\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(Trace::Parse("scuba-trace 1\ntick 1\nz 1 2 3\n")
                  .status()
                  .IsCorruption());
}

TEST(TraceTest, ParseEmptyTraceIsOk) {
  Result<Trace> t = Trace::Parse("scuba-trace 1\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->TickCount(), 0u);
}

TEST(TraceTest, MemoryUsageGrowsWithTicks) {
  Trace small = SmallTrace(1);
  Trace big = SmallTrace(8);
  EXPECT_GT(big.EstimateMemoryUsage(), small.EstimateMemoryUsage());
}

TEST(TraceTest, UpdateToStringIsReadable) {
  Trace t = SmallTrace(1);
  ASSERT_FALSE(t.batch(0).object_updates.empty());
  std::string s = t.batch(0).object_updates[0].ToString();
  EXPECT_NE(s.find("obj"), std::string::npos);
  ASSERT_FALSE(t.batch(0).query_updates.empty());
  std::string qs = t.batch(0).query_updates[0].ToString();
  EXPECT_NE(qs.find("query"), std::string::npos);
  EXPECT_NE(qs.find("range"), std::string::npos);
}

}  // namespace
}  // namespace scuba
