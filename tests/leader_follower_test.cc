#include "cluster/leader_follower.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, double speed = 10.0, NodeId dest = 1,
                   Timestamp t = 0) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = t;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = Point{5000, 5000};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double speed = 10.0, NodeId dest = 1,
                Timestamp t = 0) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = t;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = Point{5000, 5000};
  u.range_width = 20;
  u.range_height = 20;
  return u;
}

class LeaderFollowerTest : public ::testing::Test {
 protected:
  LeaderFollowerTest()
      : grid_(std::move(
            GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value())),
        clusterer_(ClustererOptions{100.0, 10.0, false, true}, &store_,
                   &grid_) {}

  ClusterStore store_;
  GridIndex grid_;
  LeaderFollowerClusterer clusterer_;
};

TEST_F(LeaderFollowerTest, FirstUpdateFormsSingletonCluster) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50})).ok());
  EXPECT_EQ(store_.ClusterCount(), 1u);
  EXPECT_EQ(clusterer_.stats().clusters_created, 1u);
  EXPECT_EQ(store_.HomeOf({EntityKind::kObject, 1}), 0u);
  EXPECT_TRUE(grid_.Contains(0));
  EXPECT_TRUE(store_.ValidateConsistency().ok());
}

TEST_F(LeaderFollowerTest, CompatibleUpdateIsAbsorbed) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50})).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {60, 50})).ok());
  EXPECT_EQ(store_.ClusterCount(), 1u);
  EXPECT_EQ(clusterer_.stats().members_absorbed, 1u);
  EXPECT_EQ(store_.HomeOf({EntityKind::kObject, 2}), 0u);
  EXPECT_EQ(store_.GetCluster(0)->size(), 2u);
}

TEST_F(LeaderFollowerTest, QueriesClusterWithObjects) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50})).ok());
  ASSERT_TRUE(clusterer_.ProcessQueryUpdate(Qry(9, {55, 50})).ok());
  EXPECT_EQ(store_.ClusterCount(), 1u);
  EXPECT_TRUE(store_.GetCluster(0)->HasMixedKinds());
}

TEST_F(LeaderFollowerTest, DifferentDestinationSplitsClusters) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50}, 10.0, 1)).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {55, 50}, 10.0, 2)).ok());
  EXPECT_EQ(store_.ClusterCount(), 2u);
}

TEST_F(LeaderFollowerTest, DistanceThresholdSplitsClusters) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50})).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {250, 50})).ok());
  EXPECT_EQ(store_.ClusterCount(), 2u);
}

TEST_F(LeaderFollowerTest, SpeedThresholdSplitsClusters) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50}, 10.0)).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {55, 50}, 40.0)).ok());
  EXPECT_EQ(store_.ClusterCount(), 2u);
}

TEST_F(LeaderFollowerTest, RefreshInPlace) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50}, 10.0, 1, 0)).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {60, 50}, 10.0, 1, 1)).ok());
  EXPECT_EQ(store_.ClusterCount(), 1u);
  EXPECT_EQ(clusterer_.stats().members_refreshed, 1u);
  EXPECT_EQ(store_.GetCluster(0)->size(), 1u);
  EXPECT_TRUE(ApproxEqual(store_.GetCluster(0)->centroid(), {60, 50}, 1e-9));
}

TEST_F(LeaderFollowerTest, DepartureOnDestinationChange) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50}, 10.0, 1)).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {55, 50}, 10.0, 1)).ok());
  ASSERT_EQ(store_.ClusterCount(), 1u);
  // Object 2 passes a node: destination changes to 3 -> leaves, new cluster.
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {58, 50}, 10.0, 3)).ok());
  EXPECT_EQ(store_.ClusterCount(), 2u);
  EXPECT_EQ(clusterer_.stats().members_departed, 1u);
  EXPECT_NE(store_.HomeOf({EntityKind::kObject, 1}),
            store_.HomeOf({EntityKind::kObject, 2}));
  EXPECT_TRUE(store_.ValidateConsistency().ok());
}

TEST_F(LeaderFollowerTest, SingletonDepartureDissolvesCluster) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50}, 10.0, 1)).ok());
  ClusterId first = store_.HomeOf({EntityKind::kObject, 1});
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {52, 50}, 10.0, 2)).ok());
  EXPECT_EQ(store_.ClusterCount(), 1u);
  EXPECT_EQ(store_.GetCluster(first), nullptr);  // old cluster dissolved
  EXPECT_EQ(clusterer_.stats().clusters_dissolved_empty, 1u);
  EXPECT_FALSE(grid_.Contains(first));
  EXPECT_TRUE(store_.ValidateConsistency().ok());
}

TEST_F(LeaderFollowerTest, DepartingMemberMayJoinAnotherCluster) {
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50}, 10.0, 1)).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {500, 500}, 10.0, 2)).ok());
  // Object 1 moves next to object 2 and now heads to node 2.
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {505, 500}, 10.0, 2)).ok());
  EXPECT_EQ(store_.ClusterCount(), 1u);
  EXPECT_EQ(store_.HomeOf({EntityKind::kObject, 1}),
            store_.HomeOf({EntityKind::kObject, 2}));
}

TEST(LeaderFollowerPaddingTest, OwnCellProbeMissesNeighborCellCluster) {
  // Paper behaviour (step 1 probes only the update's own cell, clusters
  // registered under exact bounds, i.e. padding 0): a compatible cluster
  // 10 units away but across a cell border is not found.
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());
  ClustererOptions opt{100.0, 10.0, false, true, /*grid_sync_padding=*/0.0};
  LeaderFollowerClusterer clusterer(opt, &store, &grid);
  ASSERT_TRUE(clusterer.ProcessObjectUpdate(Obj(1, {95, 50})).ok());
  ASSERT_TRUE(clusterer.ProcessObjectUpdate(Obj(2, {105, 50})).ok());
  EXPECT_EQ(store.ClusterCount(), 2u);
}

TEST_F(LeaderFollowerTest, PaddedRegistrationWidensCandidateSearch) {
  // With the default 100-unit registration padding, the same neighbour-cell
  // cluster is visible as a candidate and absorbs the update.
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {95, 50})).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {105, 50})).ok());
  EXPECT_EQ(store_.ClusterCount(), 1u);
}

TEST_F(LeaderFollowerTest, GridTracksClusterGrowth) {
  // A query member's reach extends the registered JoinBounds across the cell
  // border, so probes from the neighbouring cell see the cluster too.
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {195, 50})).ok());
  ASSERT_TRUE(clusterer_.ProcessQueryUpdate(Qry(1, {190, 50})).ok());
  ASSERT_EQ(store_.ClusterCount(), 1u);
  const MovingCluster* c = store_.GetCluster(0);
  EXPECT_GT(c->query_reach(), 0.0);
  EXPECT_EQ(grid_.EntriesNear({195, 50}).size(), 1u);
  EXPECT_EQ(grid_.EntriesNear({205, 50}).size(), 1u);
}

TEST_F(LeaderFollowerTest, AttrsTablesMaintained) {
  LocationUpdate u = Obj(1, {50, 50});
  u.attrs = kAttrRedCar;
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(u).ok());
  EXPECT_EQ(*store_.ObjectAttrs(1), kAttrRedCar);
  QueryUpdate q = Qry(2, {55, 50});
  q.attrs = kAttrChild;
  ASSERT_TRUE(clusterer_.ProcessQueryUpdate(q).ok());
  EXPECT_EQ(*store_.QueryAttrs(2), kAttrChild);
}

TEST_F(LeaderFollowerTest, IngestTimeSheddingMarksMembers) {
  clusterer_.set_nucleus_radius(50.0);
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(1, {50, 50})).ok());
  ASSERT_TRUE(clusterer_.ProcessObjectUpdate(Obj(2, {52, 50})).ok());
  EXPECT_GE(clusterer_.stats().members_shed, 1u);
  const MovingCluster* c = store_.GetCluster(0);
  size_t shed = 0;
  for (const ClusterMember& m : c->members()) shed += m.shed ? 1 : 0;
  EXPECT_GE(shed, 1u);
}

TEST_F(LeaderFollowerTest, ManyUpdatesKeepConsistency) {
  // Stress the full path: two groups moving, occasional destination flips.
  for (int t = 0; t < 20; ++t) {
    for (uint32_t i = 0; i < 10; ++i) {
      NodeId dest = (t > 10 && i % 3 == 0) ? 7 : 1;
      double x = 50 + 10.0 * t + i;
      ASSERT_TRUE(
          clusterer_.ProcessObjectUpdate(Obj(i, {x, 50}, 10.0, dest, t)).ok());
      ASSERT_TRUE(
          clusterer_
              .ProcessQueryUpdate(Qry(i, {x, 5000 + 0.5 * i}, 10.0, dest, t))
              .ok());
    }
    ASSERT_TRUE(store_.ValidateConsistency().ok()) << "tick " << t;
    EXPECT_EQ(grid_.size(), store_.ClusterCount());
  }
}

TEST(LeaderFollowerProbeTest, ThetaDiskProbeFindsFartherClusters) {
  // A compatible cluster sits in the neighbouring cell, centroid 90 units
  // away with radius 0: the paper's own-cell probe misses it, the theta_d
  // disk probe finds it.
  auto make = [](bool probe_disk) {
    ClusterStore store;
    GridIndex grid =
        std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());
    // Padding 0 isolates the probe-mode difference from registration padding.
    LeaderFollowerClusterer clusterer(
        ClustererOptions{100.0, 10.0, probe_disk, true,
                         /*grid_sync_padding=*/0.0},
        &store, &grid);
    LocationUpdate a = Obj(1, {95, 50});
    LocationUpdate b = Obj(2, {185, 50});  // next cell, 90 apart
    EXPECT_TRUE(clusterer.ProcessObjectUpdate(a).ok());
    EXPECT_TRUE(clusterer.ProcessObjectUpdate(b).ok());
    return store.ClusterCount();
  };
  EXPECT_EQ(make(false), 2u);  // paper behaviour: separate clusters
  EXPECT_EQ(make(true), 1u);   // ablation: merged
}

}  // namespace
}  // namespace scuba
