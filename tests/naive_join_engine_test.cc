#include "baseline/naive_join_engine.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, Timestamp t = 0) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = t;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 40, double h = 40,
                Timestamp t = 0) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = t;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  u.range_width = w;
  u.range_height = h;
  return u;
}

TEST(NaiveJoinEngineTest, BasicMatch) {
  NaiveJoinEngine e;
  ASSERT_TRUE(e.IngestQueryUpdate(Qry(1, {100, 100})).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(1, {110, 110})).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(2, {150, 100})).ok());
  ResultSet r;
  ASSERT_TRUE(e.Evaluate(1, &r).ok());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(1, 1));
  EXPECT_EQ(e.stats().comparisons, 2u);
}

TEST(NaiveJoinEngineTest, BoundaryIsInclusive) {
  NaiveJoinEngine e;
  ASSERT_TRUE(e.IngestQueryUpdate(Qry(1, {100, 100}, 40, 40)).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(1, {120, 100})).ok());  // on edge
  ResultSet r;
  ASSERT_TRUE(e.Evaluate(1, &r).ok());
  EXPECT_TRUE(r.Contains(1, 1));
}

TEST(NaiveJoinEngineTest, LatestUpdateWins) {
  NaiveJoinEngine e;
  ASSERT_TRUE(e.IngestQueryUpdate(Qry(1, {100, 100})).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(1, {110, 110}, 0)).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(1, {500, 500}, 1)).ok());  // moved away
  ResultSet r;
  ASSERT_TRUE(e.Evaluate(1, &r).ok());
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(e.ObjectCount(), 1u);
}

TEST(NaiveJoinEngineTest, NullResultsRejected) {
  NaiveJoinEngine e;
  EXPECT_TRUE(e.Evaluate(1, nullptr).IsInvalidArgument());
}

TEST(NaiveJoinEngineTest, EmptyEvaluation) {
  NaiveJoinEngine e;
  ResultSet r;
  ASSERT_TRUE(e.Evaluate(1, &r).ok());
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(e.stats().evaluations, 1u);
}

TEST(NaiveJoinEngineTest, MemoryGrowsWithEntities) {
  NaiveJoinEngine e;
  size_t before = e.EstimateMemoryUsage();
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(e.IngestObjectUpdate(Obj(i, {1.0 * i, 0})).ok());
  }
  EXPECT_GT(e.EstimateMemoryUsage(), before);
}

}  // namespace
}  // namespace scuba
