#include "cluster/cluster_quality.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  u.range_width = 10;
  u.range_height = 10;
  return u;
}

TEST(ClusterQualityTest, EmptyStore) {
  ClusterStore store;
  ClusterQuality q = EvaluateClusterQuality(store);
  EXPECT_EQ(q.cluster_count, 0u);
  EXPECT_EQ(q.member_count, 0u);
  EXPECT_EQ(q.avg_members, 0.0);
  EXPECT_EQ(q.mean_squared_distance, 0.0);
}

TEST(ClusterQualityTest, CountsAndAverages) {
  ClusterStore store;
  // Cluster 0: 2 objects at distance 5 each from the centroid.
  MovingCluster a = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  a.AbsorbObject(Obj(2, {10, 0}));
  ASSERT_TRUE(store.AddCluster(std::move(a)).ok());
  // Cluster 1: a mixed singleton... needs 1 member only.
  MovingCluster b = MovingCluster::FromQuery(1, Qry(1, {50, 50}));
  ASSERT_TRUE(store.AddCluster(std::move(b)).ok());
  // Cluster 2: mixed pair.
  MovingCluster c = MovingCluster::FromObject(2, Obj(9, {200, 200}));
  c.AbsorbQuery(Qry(9, {202, 200}));
  ASSERT_TRUE(store.AddCluster(std::move(c)).ok());

  ClusterQuality q = EvaluateClusterQuality(store);
  EXPECT_EQ(q.cluster_count, 3u);
  EXPECT_EQ(q.member_count, 5u);
  EXPECT_EQ(q.singleton_count, 1u);
  EXPECT_EQ(q.mixed_count, 1u);
  EXPECT_NEAR(q.avg_members, 5.0 / 3.0, 1e-9);
  EXPECT_GT(q.avg_radius, 0.0);
  EXPECT_GE(q.max_radius, q.avg_radius);
  // Cluster 0 contributes 25+25, cluster 1 contributes 0, cluster 2: 1+1.
  EXPECT_NEAR(q.mean_squared_distance, (25.0 + 25.0 + 0.0 + 1.0 + 1.0) / 5.0,
              1e-6);
}

TEST(ClusterQualityTest, TighterClustersScoreLowerMsd) {
  ClusterStore tight_store;
  MovingCluster t = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  t.AbsorbObject(Obj(2, {1, 0}));
  ASSERT_TRUE(tight_store.AddCluster(std::move(t)).ok());

  ClusterStore loose_store;
  MovingCluster l = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  l.AbsorbObject(Obj(2, {80, 0}));
  ASSERT_TRUE(loose_store.AddCluster(std::move(l)).ok());

  EXPECT_LT(EvaluateClusterQuality(tight_store).mean_squared_distance,
            EvaluateClusterQuality(loose_store).mean_squared_distance);
}

TEST(ClusterQualityTest, ToStringMentionsFields) {
  ClusterStore store;
  ASSERT_TRUE(
      store.AddCluster(MovingCluster::FromObject(0, Obj(1, {0, 0}))).ok());
  std::string s = EvaluateClusterQuality(store).ToString();
  EXPECT_NE(s.find("clusters=1"), std::string::npos);
  EXPECT_NE(s.find("msd="), std::string::npos);
}

}  // namespace
}  // namespace scuba
