#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace scuba {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossForkJoinRounds) {
  // The join phase runs every round on one persistent pool; each Wait() must
  // be a clean barrier for the next batch.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, PerTaskBuffersNeedNoSynchronization) {
  // The executor's pattern: each task owns a buffer slot; Wait() publishes
  // the writes to the submitting thread.
  constexpr int kTasks = 8;
  ThreadPool pool(4);
  std::vector<uint64_t> sums(kTasks, 0);
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&sums, t] {
      for (int i = 0; i < 1000; ++i) sums[t] += static_cast<uint64_t>(i);
    });
  }
  pool.Wait();
  for (int t = 0; t < kTasks; ++t) EXPECT_EQ(sums[t], 499500u);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace scuba
