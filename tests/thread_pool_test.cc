#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace scuba {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossForkJoinRounds) {
  // The join phase runs every round on one persistent pool; each Wait() must
  // be a clean barrier for the next batch.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, PerTaskBuffersNeedNoSynchronization) {
  // The executor's pattern: each task owns a buffer slot; Wait() publishes
  // the writes to the submitting thread.
  constexpr int kTasks = 8;
  ThreadPool pool(4);
  std::vector<uint64_t> sums(kTasks, 0);
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&sums, t] {
      for (int i = 0; i < 1000; ++i) sums[t] += static_cast<uint64_t>(i);
    });
  }
  pool.Wait();
  for (int t = 0; t < kTasks; ++t) EXPECT_EQ(sums[t], 499500u);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

// --- RunTaskSet exception barrier ---

TEST(RunTaskSetTest, CleanTaskSetRunsEveryIndexAndReturnsOk) {
  ThreadPool pool(4);
  std::vector<int> hit(16, 0);
  Status s = RunTaskSet(&pool, 16, [&hit](uint32_t t) { hit[t] = 1; });
  EXPECT_TRUE(s.ok());
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(RunTaskSetTest, ThrowingTaskBecomesInternalStatusNotTermination) {
  ThreadPool pool(4);
  Status s = RunTaskSet(&pool, 8, [](uint32_t t) {
    if (t == 5) throw std::runtime_error("task 5 blew up");
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("task 5 blew up"), std::string::npos);
}

TEST(RunTaskSetTest, EveryTaskRunsEvenWhenOneThrows) {
  // A failure must not leave tasks queued on the pool: the pool has to be a
  // clean barrier for the next batch.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  Status s = RunTaskSet(&pool, 32, [&ran](uint32_t t) {
    ran.fetch_add(1);
    if (t % 7 == 0) throw std::runtime_error("boom");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ran.load(), 32);
  // The pool is reusable after the failed round.
  std::atomic<int> again{0};
  EXPECT_TRUE(RunTaskSet(&pool, 8, [&again](uint32_t) {
                again.fetch_add(1);
              }).ok());
  EXPECT_EQ(again.load(), 8);
}

TEST(RunTaskSetTest, LowestFailingIndexWinsAtEveryThreadCount) {
  // Deterministic failure surfacing: tasks 3 and 11 both throw; the reported
  // error must be task 3's regardless of scheduling.
  for (uint32_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 10; ++round) {
      Status s = RunTaskSet(&pool, 16, [](uint32_t t) {
        if (t == 3) throw std::runtime_error("first");
        if (t == 11) throw std::runtime_error("second");
      });
      ASSERT_EQ(s.code(), StatusCode::kInternal);
      EXPECT_NE(s.message().find("first"), std::string::npos) << s.ToString();
      EXPECT_EQ(s.message().find("second"), std::string::npos) << s.ToString();
    }
  }
}

TEST(RunTaskSetTest, SingleTaskRunsInlineWithoutAPool) {
  int hits = 0;
  EXPECT_TRUE(RunTaskSet(nullptr, 1, [&hits](uint32_t) { ++hits; }).ok());
  EXPECT_EQ(hits, 1);
  Status s = RunTaskSet(nullptr, 1, [](uint32_t) {
    throw std::runtime_error("inline failure");
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("inline failure"), std::string::npos);
}

TEST(RunTaskSetTest, NonStandardExceptionIsCaughtToo) {
  ThreadPool pool(2);
  Status s = RunTaskSet(&pool, 4, [](uint32_t t) {
    if (t == 2) throw 42;  // not derived from std::exception
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(RunTaskSetTest, BusySecondsAccumulateOnSuccessAndFailure) {
  ThreadPool pool(2);
  double busy = 0.0;
  EXPECT_TRUE(RunTaskSet(&pool, 4, [](uint32_t) {}, &busy).ok());
  EXPECT_GE(busy, 0.0);
  const double before = busy;
  Status s = RunTaskSet(&pool, 4, [](uint32_t t) {
    if (t == 0) throw std::runtime_error("boom");
  }, &busy);
  EXPECT_FALSE(s.ok());
  EXPECT_GE(busy, before);
}

}  // namespace
}  // namespace scuba
