#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace_span.h"

namespace scuba {
namespace {

TEST(MetricsRegistryTest, CounterAccumulatesAcrossThreads) {
  MetricsRegistry registry;
  Counter counter = registry.RegisterCounter("test_events_total", "events");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "test_events_total");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap[0].counter, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter a = registry.RegisterCounter("dup_total", "first");
  Counter b = registry.RegisterCounter("dup_total", "second");
  a.Increment(3);
  b.Increment(4);
  std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].counter, 7u);  // both handles hit the same storage
  EXPECT_EQ(snap[0].help, "first");
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(MetricsRegistryTest, KindCollisionYieldsDetachedHandle) {
  MetricsRegistry registry;
  Counter counter = registry.RegisterCounter("clash", "counter");
  ASSERT_TRUE(static_cast<bool>(counter));
  Gauge gauge = registry.RegisterGauge("clash", "gauge");
  EXPECT_FALSE(static_cast<bool>(gauge));
  gauge.Set(42.0);  // no-op, must not corrupt the counter
  Result<HistogramMetric> histogram =
      registry.RegisterHistogram("clash", "histogram", {1.0, 2.0});
  EXPECT_TRUE(histogram.status().IsInvalidArgument());
  counter.Increment();
  std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap[0].counter, 1u);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  Gauge gauge = registry.RegisterGauge("level", "current level");
  gauge.Set(1.5);
  gauge.Set(-2.25);
  std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].gauge, -2.25);
}

TEST(MetricsRegistryTest, HistogramMergesShardsInSnapshot) {
  MetricsRegistry registry;
  Result<HistogramMetric> histogram =
      registry.RegisterHistogram("lat_seconds", "latency", {0.1, 1.0});
  ASSERT_TRUE(histogram.ok()) << histogram.status().ToString();
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      HistogramMetric h = *histogram;
      h.Observe(0.05);   // first bucket
      h.Observe(0.5);    // second bucket
      h.Observe(100.0);  // overflow bucket
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const Histogram& merged = snap[0].histogram;
  EXPECT_EQ(merged.count(), 3u * kThreads);
  ASSERT_TRUE(merged.bucketed());
  ASSERT_EQ(merged.bucket_counts().size(), 3u);
  EXPECT_EQ(merged.bucket_counts()[0], static_cast<uint64_t>(kThreads));
  EXPECT_EQ(merged.bucket_counts()[1], static_cast<uint64_t>(kThreads));
  EXPECT_EQ(merged.bucket_counts()[2], static_cast<uint64_t>(kThreads));
  EXPECT_NEAR(merged.sum(), kThreads * 100.55, 1e-9);
}

TEST(MetricsRegistryTest, RejectsBadHistogramBounds) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.RegisterHistogram("h", "x", {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.RegisterHistogram("h", "x", {2.0, 1.0})
                  .status()
                  .IsInvalidArgument());
  // Re-registration with different bounds must not silently alias.
  ASSERT_TRUE(registry.RegisterHistogram("h", "x", {1.0, 2.0}).ok());
  EXPECT_TRUE(registry.RegisterHistogram("h", "x", {1.0, 3.0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.RegisterHistogram("h", "x", {1.0, 2.0}).ok());
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.RegisterCounter("scuba_rounds_total", "rounds").Increment(4);
  registry.RegisterGauge("scuba_clusters", "clusters").Set(7.0);
  Result<HistogramMetric> h =
      registry.RegisterHistogram("scuba_join_seconds", "join", {0.5});
  ASSERT_TRUE(h.ok());
  h->Observe(0.05);
  h->Observe(5.0);
  const std::string text = registry.PrometheusExposition();
  EXPECT_NE(text.find("# TYPE scuba_rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("scuba_rounds_total 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scuba_clusters gauge"), std::string::npos);
  EXPECT_NE(text.find("scuba_clusters 7"), std::string::npos);
  EXPECT_NE(text.find("scuba_join_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("scuba_join_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("scuba_join_seconds_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, DetachedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  HistogramMetric histogram;
  counter.Increment();
  gauge.Set(1.0);
  histogram.Observe(1.0);  // must not crash
  EXPECT_FALSE(static_cast<bool>(counter));
  EXPECT_FALSE(static_cast<bool>(gauge));
  EXPECT_FALSE(static_cast<bool>(histogram));
}

TEST(TraceCollectorTest, BuildsRoundTree) {
  TraceCollector tc;
  EXPECT_FALSE(tc.active());
  EXPECT_EQ(tc.EnsureSpan(0, "noop"), -1);  // inert before BeginRound

  tc.BeginRound(3);
  ASSERT_TRUE(tc.active());
  EXPECT_EQ(tc.round(), 3u);
  const int32_t join = tc.EnsureSpan(tc.root(), "join");
  const int32_t within = tc.EnsureSpan(join, "within");
  tc.Accumulate(join, 1.0, 2.0);
  tc.Accumulate(within, 0.25);
  // Re-entering (parent, name) returns the same node and accumulates.
  EXPECT_EQ(tc.EnsureSpan(join, "within"), within);
  tc.Accumulate(within, 0.25);
  const int32_t shard0 = tc.EnsureSpan(join, "shard", 0);
  const int32_t shard1 = tc.EnsureSpan(join, "shard", 1);
  EXPECT_NE(shard0, shard1);  // distinct instances by index
  EXPECT_EQ(tc.EnsureSpan(join, "shard", 1), shard1);
  const int32_t ingest = tc.EnsureSpan(tc.root(), "ingest");
  tc.Accumulate(ingest, 0.5);
  tc.FinalizeRoot();

  const std::vector<SpanRecord>& spans = tc.spans();
  ASSERT_GE(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "round");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_DOUBLE_EQ(spans[0].wall_seconds, 1.5);  // join + ingest
  EXPECT_EQ(spans[join].parent, 0);
  EXPECT_DOUBLE_EQ(spans[join].worker_seconds, 2.0);
  EXPECT_EQ(spans[within].parent, join);
  EXPECT_DOUBLE_EQ(spans[within].wall_seconds, 0.5);
  EXPECT_EQ(spans[within].count, 2u);
  EXPECT_EQ(spans[shard1].index, 1);

  tc.BeginRound(4);  // fresh tree
  EXPECT_EQ(tc.round(), 4u);
  EXPECT_EQ(tc.spans().size(), 1u);
}

TEST(TraceSpanTest, RaiiAccumulatesIntoCollector) {
  TraceCollector tc;
  tc.BeginRound(1);
  {
    TraceSpan join(&tc, "join");
    join.AddWorkerSeconds(0.75);
    { TraceSpan within(join, "within"); }
    { TraceSpan within(join, "within"); }
  }
  tc.FinalizeRoot();
  const std::vector<SpanRecord>& spans = tc.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "join");
  EXPECT_EQ(spans[1].count, 1u);
  EXPECT_GE(spans[1].wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(spans[1].worker_seconds, 0.75);
  EXPECT_EQ(spans[2].name, "within");
  EXPECT_EQ(spans[2].parent, 1);
  EXPECT_EQ(spans[2].count, 2u);

  TraceSpan detached;  // no collector: complete no-op
  detached.AddWorkerSeconds(1.0);
  detached.Stop();
}

}  // namespace
}  // namespace scuba
