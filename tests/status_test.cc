#include "common/status.h"

#include <gtest/gtest.h>

// GCC 12 emits a spurious -Wmaybe-uninitialized deep inside std::variant's
// destructor when a Result<int> local is fully inlined at -O2 (GCC PR
// 105142 family). Library code is unaffected; silence it for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace scuba {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad theta");
}

TEST(StatusTest, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
}

TEST(StatusTest, DataLossIsDistinctFromCorruption) {
  // kCorruption flags inconsistent in-memory state; kDataLoss flags durable
  // bytes that cannot be trusted (torn WAL tail, checksum-failed snapshot).
  Status s = Status::DataLoss("torn tail");
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_EQ(s.ToString(), "DataLoss: torn tail");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::NotFound("x");
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsInternal());
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, OkStatusIsRejected) {
  // Constructing a Result from an OK status is a programming error; the
  // Result degrades to an Internal error rather than silently "succeeding"
  // with no value.
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(100, 'x');
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 100u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Status FailingHelper() { return Status::OutOfRange("boom"); }

Status UsesReturnIfError(bool fail, bool* reached_end) {
  if (fail) {
    SCUBA_RETURN_IF_ERROR(FailingHelper());
  } else {
    SCUBA_RETURN_IF_ERROR(Status::OK());
  }
  *reached_end = true;
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  bool reached = false;
  Status s = UsesReturnIfError(true, &reached);
  EXPECT_TRUE(s.IsOutOfRange());
  EXPECT_FALSE(reached);
}

TEST(ResultTest, ReturnIfErrorPassesThroughOk) {
  bool reached = false;
  Status s = UsesReturnIfError(false, &reached);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(reached);
}

}  // namespace
}  // namespace scuba
