// End-to-end telemetry coverage (docs/ARCHITECTURE.md §9): the JSONL round
// stream is schema-valid, counter/gauge content is bit-identical across
// thread counts, and telemetry never perturbs engine results or state.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/scuba_engine.h"
#include "persist/snapshot.h"

namespace scuba {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON checker: validates syntax and extracts the
// top-level object keys. Enough to golden-test the emitter without a JSON
// dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Validate(std::vector<std::string>* top_keys) {
    pos_ = 0;
    SkipWs();
    if (Peek() != '{') return false;
    if (!ParseObject(top_keys)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char Next() { return pos_ < text_.size() ? text_[pos_++] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return ParseObject(nullptr);
      case '[':
        return ParseArray();
      case '"':
        return ParseString(nullptr);
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject(std::vector<std::string>* keys) {
    if (Next() != '{') return false;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (keys != nullptr) keys->push_back(key);
      SkipWs();
      if (Next() != ':') return false;
      if (!ParseValue()) return false;
      SkipWs();
      const char c = Next();
      if (c == '}') return true;
      if (c != ',') return false;
    }
  }

  bool ParseArray() {
    if (Next() != '[') return false;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      const char c = Next();
      if (c == ']') return true;
      if (c != ',') return false;
    }
  }

  bool ParseString(std::string* out) {
    if (Next() != '"') return false;
    while (pos_ < text_.size()) {
      const char c = Next();
      if (c == '"') return true;
      if (c == '\\') {
        const char e = Next();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(Next()))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
        if (out != nullptr) *out += '?';  // escapes don't matter for keys
      } else if (out != nullptr) {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

/// Extracts the value of a `"key":<number-or-string>` field from a JSON
/// fragment, or "" if absent. The emitter writes fixed-order objects, so a
/// string scan is exact here.
std::string FieldValue(const std::string& json, const std::string& key,
                       size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos) return "";
  size_t start = at + needle.size();
  size_t end = start;
  if (json[start] == '"') {
    end = json.find('"', start + 1);
    return json.substr(start + 1, end - start - 1);
  }
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != ']') {
    ++end;
  }
  return json.substr(start, end - start);
}

/// All metric entries of one kind from a round line, as "name=..." strings
/// carrying the deterministic fields only.
std::vector<std::string> MetricEntries(const std::string& line,
                                       const std::string& kind) {
  std::vector<std::string> out;
  size_t at = 0;
  while ((at = line.find("{\"name\":\"", at)) != std::string::npos) {
    const size_t end = line.find('}', at);
    const std::string entry = line.substr(at, end - at + 1);
    at = end;
    if (FieldValue(entry, "kind") != kind) continue;
    if (kind == "counter") {
      out.push_back(FieldValue(entry, "name") + " delta=" +
                    FieldValue(entry, "delta") + " total=" +
                    FieldValue(entry, "total"));
    } else if (kind == "gauge") {
      out.push_back(FieldValue(entry, "name") + " value=" +
                    FieldValue(entry, "value"));
    } else {
      out.push_back(FieldValue(entry, "name"));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Deterministic multi-round workload (smaller cousin of the one in
// parallel_ingest_test.cc).
// ---------------------------------------------------------------------------

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

std::vector<Round> MakeRounds(uint64_t seed, int rounds) {
  Rng rng(seed);
  const int kGroups = 6;
  struct Entity {
    uint32_t id;
    bool is_query;
    int group;
    Point pos;
  };
  std::vector<Entity> entities;
  for (uint32_t i = 0; i < 90; ++i) {
    const int group = static_cast<int>(rng.NextDouble(0, kGroups));
    Point base{600.0 + 900.0 * group, 600.0 + 700.0 * (group % 3)};
    entities.push_back(Entity{i, (i % 3 == 2), group,
                              {base.x + rng.NextDouble(-50, 50),
                               base.y + rng.NextDouble(-50, 50)}});
  }
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (Entity& e : entities) {
      if (rng.NextDouble(0, 1) < 0.2) continue;  // stale this tick
      e.pos = {e.pos.x + rng.NextDouble(-20, 20),
               e.pos.y + rng.NextDouble(-20, 20)};
      if (e.is_query) {
        QueryUpdate u;
        u.qid = e.id;
        u.position = e.pos;
        u.speed = 10.0 + (e.id % 5);
        u.dest_node = static_cast<NodeId>(e.group);
        u.dest_position = Point{9500, 9500};
        u.range_width = 120;
        u.range_height = 120;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = e.id;
        u.position = e.pos;
        u.speed = 10.0 + (e.id % 5);
        u.dest_node = static_cast<NodeId>(e.group);
        u.dest_position = Point{9500, 9500};
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

struct RunResult {
  std::vector<ResultSet> results;
  std::vector<uint64_t> hashes;
};

RunResult RunWorkload(const std::vector<Round>& rounds, ScubaOptions opt) {
  std::unique_ptr<ScubaEngine> engine =
      std::move(ScubaEngine::Create(opt).value());
  RunResult out;
  Timestamp now = 0;
  for (const Round& round : rounds) {
    now += 2;
    EXPECT_TRUE(engine->IngestBatch(round.objects, round.queries).ok());
    ResultSet results;
    EXPECT_TRUE(engine->Evaluate(now, &results).ok());
    out.results.push_back(std::move(results));
    out.hashes.push_back(EngineStateHash(*engine));
  }
  EXPECT_TRUE(engine->FlushTelemetry().ok());
  return out;
}

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

TEST(TelemetryTest, MetricsAndTraceFilesValidateAgainstSchema) {
  const std::string metrics_path = TmpPath("schema_metrics.jsonl");
  const std::string trace_path = TmpPath("schema_trace.jsonl");
  ScubaOptions opt;
  opt.telemetry.metrics_out = metrics_path;
  opt.telemetry.trace_out = trace_path;
  const int kRounds = 4;
  RunWorkload(MakeRounds(11, kRounds), opt);

  const std::set<std::string> kMetricsKeys = {
      "schema_version", "kind", "round",  "metrics",
      "engine",         "stream", "prometheus"};
  const std::set<std::string> kTraceKeys = {"schema_version", "kind", "round",
                                            "engine", "stream", "spans",
                                            "join"};

  // --- metrics file: meta, one line per round, final exposition ---
  std::vector<std::string> lines = ReadLines(metrics_path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRounds) + 2);
  uint64_t expect_round = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::vector<std::string> keys;
    ASSERT_TRUE(JsonChecker(lines[i]).Validate(&keys))
        << "metrics line " << i << " is not valid JSON: " << lines[i];
    for (const std::string& k : keys) {
      EXPECT_TRUE(kMetricsKeys.count(k)) << "unknown metrics key: " << k;
    }
    const std::string kind = FieldValue(lines[i], "kind");
    if (i == 0) {
      EXPECT_EQ(kind, "meta");
      EXPECT_EQ(FieldValue(lines[i], "schema_version"), "4");
      EXPECT_EQ(FieldValue(lines[i], "stream"), "metrics");
    } else if (i + 1 == lines.size()) {
      EXPECT_EQ(kind, "exposition");
      EXPECT_NE(FieldValue(lines[i], "prometheus").find("scuba_rounds_total"),
                std::string::npos);
    } else {
      EXPECT_EQ(kind, "round");
      EXPECT_EQ(FieldValue(lines[i], "round"), std::to_string(++expect_round));
      // Every round advances the round counter by exactly one.
      const std::vector<std::string> counters =
          MetricEntries(lines[i], "counter");
      bool saw_rounds = false;
      for (const std::string& c : counters) {
        if (c == "scuba_rounds_total delta=1 total=" +
                     std::to_string(expect_round)) {
          saw_rounds = true;
        }
      }
      EXPECT_TRUE(saw_rounds) << lines[i];
    }
  }

  // --- trace file: meta then one span tree per round ---
  lines = ReadLines(trace_path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRounds) + 1);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::vector<std::string> keys;
    ASSERT_TRUE(JsonChecker(lines[i]).Validate(&keys))
        << "trace line " << i << " is not valid JSON: " << lines[i];
    for (const std::string& k : keys) {
      EXPECT_TRUE(kTraceKeys.count(k)) << "unknown trace key: " << k;
    }
    if (i == 0) {
      EXPECT_EQ(FieldValue(lines[i], "stream"), "trace");
      continue;
    }
    EXPECT_EQ(FieldValue(lines[i], "kind"), "round");
    // The root span is first and named "round"; the engine phases hang off it.
    EXPECT_EQ(FieldValue(lines[i], "name"), "round");
    for (const char* phase : {"ingest", "join", "postjoin"}) {
      EXPECT_NE(lines[i].find("\"name\":\"" + std::string(phase) + "\""),
                std::string::npos)
          << "round " << i << " missing phase " << phase << ": " << lines[i];
    }
    // Wall times are finite, non-negative numbers (JsonDouble already clamps
    // non-finite, so presence of a parseable value is the check; negativity
    // would print a leading '-').
    size_t at = 0;
    while ((at = lines[i].find("\"wall_seconds\":", at)) != std::string::npos) {
      at += 15;
      EXPECT_NE(lines[i][at], '-') << lines[i];
    }
  }
}

TEST(TelemetryTest, CountersAndGaugesBitIdenticalAcrossThreads) {
  const std::vector<Round> rounds = MakeRounds(23, 5);
  std::vector<std::vector<std::string>> per_thread_rounds;
  for (uint32_t threads : {1u, 4u}) {
    const std::string path =
        TmpPath("determinism_" + std::to_string(threads) + ".jsonl");
    ScubaOptions opt;
    opt.ingest_threads = threads;
    opt.join_threads = threads;
    opt.telemetry.metrics_out = path;
    RunWorkload(rounds, opt);

    std::vector<std::string> round_payloads;
    for (const std::string& line : ReadLines(path)) {
      if (FieldValue(line, "kind") != "round") continue;
      // Deterministic content only: counters (name, delta, total) and gauges
      // (name, value). Histogram deltas are timings — scheduling-dependent by
      // design — and are excluded.
      std::string payload = "round=" + FieldValue(line, "round");
      for (const std::string& c : MetricEntries(line, "counter")) {
        payload += "\n  " + c;
      }
      for (const std::string& g : MetricEntries(line, "gauge")) {
        payload += "\n  " + g;
      }
      round_payloads.push_back(payload);
    }
    EXPECT_EQ(round_payloads.size(), rounds.size());
    per_thread_rounds.push_back(std::move(round_payloads));
  }
  ASSERT_EQ(per_thread_rounds.size(), 2u);
  for (size_t r = 0; r < per_thread_rounds[0].size(); ++r) {
    EXPECT_EQ(per_thread_rounds[0][r], per_thread_rounds[1][r])
        << "metric content diverged between 1 and 4 threads at round " << r;
  }
}

TEST(TelemetryTest, TelemetryDoesNotPerturbResultsOrState) {
  const std::vector<Round> rounds = MakeRounds(31, 4);
  ScubaOptions off;
  off.join_threads = 2;
  off.ingest_threads = 2;
  ScubaOptions on = off;
  on.telemetry.enabled = true;  // collect-only: no files
  ScubaOptions files = off;
  files.telemetry.metrics_out = TmpPath("perturb_metrics.jsonl");
  files.telemetry.trace_out = TmpPath("perturb_trace.jsonl");

  const RunResult base = RunWorkload(rounds, off);
  for (const ScubaOptions& opt : {on, files}) {
    const RunResult instrumented = RunWorkload(rounds, opt);
    ASSERT_EQ(instrumented.results.size(), base.results.size());
    for (size_t r = 0; r < base.results.size(); ++r) {
      EXPECT_EQ(instrumented.results[r], base.results[r]) << "round " << r;
      EXPECT_EQ(instrumented.hashes[r], base.hashes[r]) << "round " << r;
    }
  }
}

TEST(TelemetryTest, ProgrammaticAccessAndCheckpointSpansExist) {
  // Collect-only mode: metrics available through ScubaEngine::telemetry()
  // without any output file.
  ScubaOptions opt;
  opt.telemetry.enabled = true;
  std::unique_ptr<ScubaEngine> engine =
      std::move(ScubaEngine::Create(opt).value());
  ASSERT_NE(engine->telemetry(), nullptr);
  const std::vector<Round> rounds = MakeRounds(47, 2);
  Timestamp now = 0;
  for (const Round& round : rounds) {
    now += 2;
    ASSERT_TRUE(engine->IngestBatch(round.objects, round.queries).ok());
    ResultSet results;
    ASSERT_TRUE(engine->Evaluate(now, &results).ok());
  }
  uint64_t rounds_total = 0;
  uint64_t results_total = 0;
  // The current (second) round has not flushed yet; force it.
  ASSERT_TRUE(engine->FlushTelemetry().ok());
  for (const MetricSnapshot& m : engine->telemetry()->registry().Snapshot()) {
    if (m.name == "scuba_rounds_total") rounds_total = m.counter;
    if (m.name == "scuba_results_total") results_total = m.counter;
  }
  EXPECT_EQ(rounds_total, rounds.size());
  EXPECT_GT(results_total, 0u);
}

TEST(TelemetryTest, OpenFailureSurfacesAtCreate) {
  ScubaOptions opt;
  opt.telemetry.metrics_out = "/nonexistent-dir/metrics.jsonl";
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace scuba
