#include "gen/workload_generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "network/grid_city.h"

namespace scuba {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : city_(DefaultBenchmarkCity(11)) {}
  RoadNetwork city_;
};

TEST_F(WorkloadTest, RejectsNullOrEmptyNetwork) {
  WorkloadOptions opt;
  EXPECT_TRUE(GenerateWorkload(nullptr, opt).status().IsInvalidArgument());
}

TEST_F(WorkloadTest, ValidatesOptions) {
  WorkloadOptions opt;
  opt.num_objects = 0;
  opt.num_queries = 0;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());

  opt = WorkloadOptions{};
  opt.skew = 0;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());

  opt = WorkloadOptions{};
  opt.min_speed_factor = 0.9;
  opt.max_speed_factor = 0.5;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());

  opt = WorkloadOptions{};
  opt.min_range = 100;
  opt.max_range = 50;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());

  opt = WorkloadOptions{};
  opt.attr_probability = 1.5;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());

  opt = WorkloadOptions{};
  opt.speed_jitter = -1;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());
}

TEST_F(WorkloadTest, CountsAndIdRanges) {
  WorkloadOptions opt;
  opt.num_objects = 120;
  opt.num_queries = 80;
  opt.skew = 10;
  opt.seed = 3;
  Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  EXPECT_EQ(sim->EntityCount(), 200u);

  std::set<uint32_t> oids;
  std::set<uint32_t> qids;
  for (const SimEntity& e : sim->entities()) {
    if (e.kind == EntityKind::kObject) {
      oids.insert(e.id);
    } else {
      qids.insert(e.id);
    }
  }
  EXPECT_EQ(oids.size(), 120u);
  EXPECT_EQ(qids.size(), 80u);
  EXPECT_EQ(*oids.rbegin(), 119u);  // dense [0, 120)
  EXPECT_EQ(*qids.rbegin(), 79u);
}

TEST_F(WorkloadTest, SkewControlsGroupSizes) {
  WorkloadOptions opt;
  opt.num_objects = 100;
  opt.num_queries = 100;
  opt.skew = 20;
  opt.seed = 7;
  Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(sim.ok());
  std::map<uint32_t, int> group_sizes;
  for (const SimEntity& e : sim->entities()) group_sizes[e.group]++;
  // Groups are capped at the skew; counts can exceed total/skew only because
  // capped mixed groups leave a single-kind tail.
  EXPECT_GE(group_sizes.size(), 10u);
  EXPECT_LE(group_sizes.size(), 14u);
  int full_groups = 0;
  int total = 0;
  for (const auto& [g, n] : group_sizes) {
    (void)g;
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 20);
    total += n;
    if (n == 20) ++full_groups;
  }
  EXPECT_EQ(total, 200);
  EXPECT_GE(full_groups, 8);
}

TEST_F(WorkloadTest, FullMixFractionMixesEveryObjectGroup) {
  WorkloadOptions opt;
  opt.num_objects = 100;
  opt.num_queries = 100;
  opt.skew = 50;
  opt.mixed_group_fraction = 1.0;
  opt.max_mixed_group_queries = 4;
  opt.seed = 13;
  Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(sim.ok());
  std::map<uint32_t, std::pair<int, int>> mix;  // group -> (objects, queries)
  for (const SimEntity& e : sim->entities()) {
    if (e.kind == EntityKind::kObject) {
      mix[e.group].first++;
    } else {
      mix[e.group].second++;
    }
  }
  // With fraction 1, every group holding objects carries 1..4 monitoring
  // queries; once objects run out the remaining groups are query-only.
  size_t mixed = 0;
  for (const auto& [g, counts] : mix) {
    (void)g;
    if (counts.first > 0) {
      EXPECT_GE(counts.second, 1);
      EXPECT_LE(counts.second, 4);
      ++mixed;
    }
  }
  EXPECT_GT(mixed, 0u);
}

TEST_F(WorkloadTest, RejectsZeroMixedGroupQueryCap) {
  WorkloadOptions opt;
  opt.max_mixed_group_queries = 0;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());
}

TEST_F(WorkloadTest, ZeroMixFractionKeepsGroupsSingleKind) {
  WorkloadOptions opt;
  opt.num_objects = 100;
  opt.num_queries = 100;
  opt.skew = 25;
  opt.mixed_group_fraction = 0.0;
  opt.seed = 13;
  Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(sim.ok());
  std::map<uint32_t, std::pair<int, int>> mix;
  for (const SimEntity& e : sim->entities()) {
    if (e.kind == EntityKind::kObject) {
      mix[e.group].first++;
    } else {
      mix[e.group].second++;
    }
  }
  for (const auto& [g, counts] : mix) {
    (void)g;
    EXPECT_TRUE(counts.first == 0 || counts.second == 0)
        << "group " << g << " mixes kinds despite fraction 0";
  }
}

TEST_F(WorkloadTest, RejectsBadMixFraction) {
  WorkloadOptions opt;
  opt.mixed_group_fraction = 1.5;
  EXPECT_TRUE(GenerateWorkload(&city_, opt).status().IsInvalidArgument());
}

TEST_F(WorkloadTest, GroupMembersShareRouteAndStartClose) {
  WorkloadOptions opt;
  opt.num_objects = 40;
  opt.num_queries = 40;
  opt.skew = 20;
  opt.start_spread = 60.0;
  opt.seed = 17;
  Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(sim.ok());
  std::map<uint32_t, std::vector<const SimEntity*>> by_group;
  for (const SimEntity& e : sim->entities()) by_group[e.group].push_back(&e);
  for (const auto& [g, members] : by_group) {
    (void)g;
    for (const SimEntity* m : members) {
      EXPECT_EQ(m->route, members[0]->route);
      EXPECT_LE(Distance(m->position, members[0]->position),
                opt.start_spread + 1e-9);
      EXPECT_NEAR(m->speed_factor, members[0]->speed_factor,
                  2 * opt.speed_jitter + 1e-9);
    }
  }
}

TEST_F(WorkloadTest, QueryRangesWithinBounds) {
  WorkloadOptions opt;
  opt.num_objects = 10;
  opt.num_queries = 50;
  opt.min_range = 30.0;
  opt.max_range = 90.0;
  opt.seed = 19;
  Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(sim.ok());
  for (const SimEntity& e : sim->entities()) {
    if (e.kind != EntityKind::kQuery) continue;
    EXPECT_GE(e.range_width, 30.0);
    EXPECT_LT(e.range_width, 90.0);
    EXPECT_GE(e.range_height, 30.0);
    EXPECT_LT(e.range_height, 90.0);
  }
}

TEST_F(WorkloadTest, DeterministicForSeed) {
  WorkloadOptions opt;
  opt.num_objects = 30;
  opt.num_queries = 30;
  opt.seed = 21;
  Result<ObjectSimulator> a = GenerateWorkload(&city_, opt);
  Result<ObjectSimulator> b = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->EntityCount(), b->EntityCount());
  for (size_t i = 0; i < a->EntityCount(); ++i) {
    EXPECT_EQ(a->entities()[i].position, b->entities()[i].position);
    EXPECT_EQ(a->entities()[i].route, b->entities()[i].route);
  }
}

TEST_F(WorkloadTest, Skew1MakesDistinctGroups) {
  WorkloadOptions opt;
  opt.num_objects = 20;
  opt.num_queries = 20;
  opt.skew = 1;
  opt.seed = 23;
  Result<ObjectSimulator> sim = GenerateWorkload(&city_, opt);
  ASSERT_TRUE(sim.ok());
  std::set<uint32_t> groups;
  for (const SimEntity& e : sim->entities()) groups.insert(e.group);
  EXPECT_EQ(groups.size(), 40u);
}

}  // namespace
}  // namespace scuba
