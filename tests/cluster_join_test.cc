#include "core/cluster_join.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, NodeId dest = 1) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 60, double h = 60,
                NodeId dest = 1) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  u.range_width = w;
  u.range_height = h;
  return u;
}

struct JoinFixture {
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());

  MovingCluster* Add(MovingCluster cluster) {
    ClusterId cid = cluster.cid();
    cluster.RecomputeTightBounds();
    EXPECT_TRUE(grid.Insert(cid, cluster.JoinBounds()).ok());
    EXPECT_TRUE(store.AddCluster(std::move(cluster)).ok());
    return store.GetCluster(cid);
  }
};

TEST(ClusterJoinTest, RejectsNullResults) {
  JoinFixture f;
  ClusterJoinExecutor executor;
  EXPECT_TRUE(executor.Execute(f.store, f.grid, nullptr).IsInvalidArgument());
}

TEST(ClusterJoinTest, EmptyStoreYieldsEmpty) {
  JoinFixture f;
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(executor.counters().pairs_tested, 0u);
}

TEST(ClusterJoinTest, MixedClusterSelfJoin) {
  JoinFixture f;
  MovingCluster c = MovingCluster::FromObject(f.store.NextClusterId(),
                                              Obj(1, {100, 100}));
  c.AbsorbQuery(Qry(1, {110, 100}));
  f.Add(std::move(c));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_TRUE(results.Contains(1, 1));
  EXPECT_EQ(executor.counters().within_joins_single, 1u);
  EXPECT_EQ(executor.counters().within_joins_pair, 0u);
}

TEST(ClusterJoinTest, CrossClusterPairJoin) {
  JoinFixture f;
  f.Add(MovingCluster::FromObject(f.store.NextClusterId(), Obj(1, {100, 100}, 1)));
  f.Add(MovingCluster::FromQuery(f.store.NextClusterId(),
                                 Qry(1, {120, 100}, 80, 80, 2)));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_TRUE(results.Contains(1, 1));
  EXPECT_EQ(executor.counters().within_joins_pair, 1u);
  EXPECT_EQ(executor.counters().pairs_overlapping, 1u);
}

TEST(ClusterJoinTest, PairDedupAcrossSharedCells) {
  // Two big clusters sharing many grid cells must be pair-joined exactly once.
  JoinFixture f;
  MovingCluster a = MovingCluster::FromObject(f.store.NextClusterId(),
                                              Obj(1, {500, 500}, 1));
  a.AbsorbObject(Obj(2, {900, 900}, 1));
  MovingCluster b = MovingCluster::FromQuery(f.store.NextClusterId(),
                                             Qry(1, {600, 600}, 100, 100, 2));
  b.AbsorbQuery(Qry(2, {800, 800}, 100, 100, 2));
  f.Add(std::move(a));
  f.Add(std::move(b));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_EQ(executor.counters().pairs_tested, 1u);
  EXPECT_EQ(executor.counters().within_joins_pair, 1u);
}

TEST(ClusterJoinTest, SameKindPairsAreSkipped) {
  JoinFixture f;
  f.Add(MovingCluster::FromObject(f.store.NextClusterId(), Obj(1, {100, 100}, 1)));
  f.Add(MovingCluster::FromObject(f.store.NextClusterId(), Obj(2, {110, 100}, 2)));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_EQ(executor.counters().pairs_tested, 0u);
}

TEST(ClusterJoinTest, FineFilterSkipsUnreachableQueries) {
  // Cluster pair overlaps via a far-reaching query, but a second small query
  // in the same cluster cannot reach the object cluster: the fine filter
  // must skip its member loop (1 comparison, not 1 + |objects|).
  JoinFixture f;
  MovingCluster objs = MovingCluster::FromObject(f.store.NextClusterId(),
                                                 Obj(1, {500, 100}, 1));
  objs.AbsorbObject(Obj(2, {510, 100}, 1));
  objs.AbsorbObject(Obj(3, {520, 100}, 1));
  MovingCluster qrys = MovingCluster::FromQuery(
      f.store.NextClusterId(), Qry(1, {100, 100}, 900, 900, 2));  // reaches
  qrys.AbsorbQuery(Qry(2, {100, 100}, 10, 10, 2));                // cannot
  f.Add(std::move(objs));
  f.Add(std::move(qrys));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  // Query 1 matches all three objects; query 2 matches none.
  EXPECT_EQ(results.size(), 3u);
  // One fine-filter bounds check per query; only query 1 reaches the member
  // loop (3 objects).
  EXPECT_EQ(executor.counters().bounds_checks, 2u);
  EXPECT_EQ(executor.counters().comparisons, 3u);
}

TEST(ClusterJoinTest, NucleusGroupingSharesPredicates) {
  JoinFixture f;
  MovingCluster objs = MovingCluster::FromObject(f.store.NextClusterId(),
                                                 Obj(1, {500, 100}, 1));
  for (uint32_t i = 2; i <= 10; ++i) {
    objs.AbsorbObject(Obj(i, {500.0 + i, 100}, 1));
  }
  EXPECT_EQ(objs.ShedPositions(50.0), 10u);  // everyone into one nucleus
  f.Add(std::move(objs));
  f.Add(MovingCluster::FromQuery(f.store.NextClusterId(),
                                 Qry(1, {520, 100}, 100, 100, 2)));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  // All ten objects match through ONE nucleus predicate (the fine filter is
  // a bounds check, not a comparison): 10 results.
  EXPECT_EQ(results.size(), 10u);
  EXPECT_EQ(executor.counters().bounds_checks, 1u);
  EXPECT_EQ(executor.counters().comparisons, 1u);
}

TEST(ClusterJoinTest, CountersAccumulateAcrossExecutes) {
  JoinFixture f;
  MovingCluster c = MovingCluster::FromObject(f.store.NextClusterId(),
                                              Obj(1, {100, 100}));
  c.AbsorbQuery(Qry(1, {110, 100}));
  f.Add(std::move(c));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  uint64_t after_one = executor.counters().comparisons;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());
  EXPECT_EQ(executor.counters().comparisons, 2 * after_one);
  EXPECT_EQ(executor.counters().within_joins_single, 2u);
}

// Property: the executor result over singleton clusters equals brute force.
class ClusterJoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterJoinPropertyTest, SingletonClustersMatchBruteForce) {
  Rng rng(GetParam());
  JoinFixture f;
  std::vector<LocationUpdate> objs;
  std::vector<QueryUpdate> qrys;
  for (uint32_t i = 0; i < 150; ++i) {
    LocationUpdate o =
        Obj(i, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)},
            static_cast<NodeId>(i));
    objs.push_back(o);
    f.Add(MovingCluster::FromObject(f.store.NextClusterId(), o));
  }
  for (uint32_t i = 0; i < 100; ++i) {
    QueryUpdate q =
        Qry(i, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)},
            rng.NextDouble(20, 400), rng.NextDouble(20, 400),
            static_cast<NodeId>(1000 + i));
    qrys.push_back(q);
    f.Add(MovingCluster::FromQuery(f.store.NextClusterId(), q));
  }
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &results).ok());

  ResultSet expected;
  for (const QueryUpdate& q : qrys) {
    for (const LocationUpdate& o : objs) {
      if (q.Range().Contains(o.position)) expected.Add(q.qid, o.oid);
    }
  }
  expected.Normalize();
  EXPECT_EQ(results, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterJoinPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(ClusterJoinTest, FlattenSnapshotReusedWhileGridUnchanged) {
  JoinFixture f;
  for (int i = 0; i < 10; ++i) {
    MovingCluster c = MovingCluster::FromObject(
        f.store.NextClusterId(), Obj(i + 1, {100.0 + 40 * i, 100.0}));
    c.AbsorbQuery(Qry(i + 1, {110.0 + 40 * i, 105.0}, 80, 80));
    f.Add(std::move(c));
  }
  ClusterJoinExecutor executor;
  ResultSet first, second, third;
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &first).ok());
  EXPECT_EQ(executor.flatten_reuses(), 0u);

  // Same grid generation: the CSR snapshot must be reused, with identical
  // results.
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &second).ok());
  EXPECT_EQ(executor.flatten_reuses(), 1u);
  EXPECT_EQ(first, second);

  // Any grid mutation invalidates the snapshot.
  const ClusterId cid = f.store.SortedClusterIds().front();
  ASSERT_TRUE(f.grid.Update(cid, Circle{{5000, 5000}, 60}).ok());
  ASSERT_TRUE(executor.Execute(f.store, f.grid, &third).ok());
  EXPECT_EQ(executor.flatten_reuses(), 1u);
}

TEST(ClusterJoinTest, FlattenSnapshotNotSharedAcrossGrids) {
  // The cache keys on (grid identity, generation): a different grid with a
  // coincidentally equal generation must not reuse the snapshot.
  JoinFixture f1, f2;
  f1.Add(MovingCluster::FromObject(f1.store.NextClusterId(), Obj(1, {50, 50})));
  f2.Add(MovingCluster::FromObject(f2.store.NextClusterId(),
                                   Obj(2, {9000, 9000})));
  ClusterJoinExecutor executor;
  ResultSet results;
  ASSERT_TRUE(executor.Execute(f1.store, f1.grid, &results).ok());
  ASSERT_TRUE(executor.Execute(f2.store, f2.grid, &results).ok());
  EXPECT_EQ(executor.flatten_reuses(), 0u);
}

}  // namespace
}  // namespace scuba
