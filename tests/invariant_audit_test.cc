// Invariant auditor + self-healing coverage. ScubaEngineAuditPeer (a
// declared friend of ScubaEngine) deliberately desynchronizes the cluster
// grid from the cluster store; the tests then require AuditInvariants() to
// pinpoint the exact divergence, RebuildGridFromStore() to restore a clean
// audit with unchanged join results, and the periodic Evaluate hook to
// self-heal grid damage (or surface unrepairable store damage as
// kCorruption).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/scuba_engine.h"
#include "state_digest.h"

namespace scuba {

/// Test back door matching the `friend class ScubaEngineAuditPeer`
/// declaration: hands tests mutable access to the engine's internal grid and
/// store so they can inject precisely the divergences the auditor claims to
/// detect.
class ScubaEngineAuditPeer {
 public:
  explicit ScubaEngineAuditPeer(ScubaEngine* engine) : engine_(engine) {}

  GridIndex& grid() { return engine_->grid_; }
  ClusterStore& store() { return engine_->store_; }

 private:
  ScubaEngine* engine_;
};

namespace {

/// Deterministic clustered workload: `kGroups` co-travelling groups of
/// objects and queries, one update round per call.
void IngestRound(ScubaEngine* engine, int round) {
  const int kGroups = 4;
  for (uint32_t i = 0; i < 48; ++i) {
    // Blocks of four consecutive ids (three objects + one query) share a
    // group, so every cluster mixes kinds and join-within produces matches.
    const int group = static_cast<int>(i / 4) % kGroups;
    const Point pos{800.0 + 1500.0 * group + 8.0 * (i % 4) +
                        2.0 * static_cast<int>(i / 16) + 3.0 * round,
                    900.0 + 1100.0 * (group % 2) + 6.0 * (i % 4) +
                        5.0 * static_cast<int>(i / 16)};
    if (i % 4 == 3) {
      QueryUpdate u;
      u.qid = i;
      u.position = pos;
      u.speed = 6.0 + group;
      u.dest_node = static_cast<NodeId>(group);
      u.dest_position = Point{9000, 9000};
      u.range_width = 120.0;
      u.range_height = 120.0;
      u.time = static_cast<Timestamp>(round);
      ASSERT_TRUE(engine->IngestQueryUpdate(u).ok());
    } else {
      LocationUpdate u;
      u.oid = i;
      u.position = pos;
      u.speed = 6.0 + group;
      u.dest_node = static_cast<NodeId>(group);
      u.dest_position = Point{9000, 9000};
      u.time = static_cast<Timestamp>(round);
      ASSERT_TRUE(engine->IngestObjectUpdate(u).ok());
    }
  }
}

std::unique_ptr<ScubaEngine> MakeEngine(const ScubaOptions& options = {}) {
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  EXPECT_TRUE(engine.ok());
  return std::move(engine).value();
}

/// True iff any retained violation message contains `needle`.
bool MentionedIn(const InvariantAuditReport& report, const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(InvariantAuditTest, CleanEngineAuditsClean) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine();
  IngestRound(engine.get(), 1);
  ResultSet results;
  ASSERT_TRUE(engine->Evaluate(2, &results).ok());

  const InvariantAuditReport report = engine->AuditInvariants();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.clusters_checked, 0u);
  EXPECT_GT(report.members_checked, 0u);
  EXPECT_GT(report.grid_keys_checked, 0u);
  EXPECT_NE(report.ToString().find("clean"), std::string::npos);
}

TEST(InvariantAuditTest, MissingGridRegistrationIsPinpointed) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine();
  IngestRound(engine.get(), 1);
  ScubaEngineAuditPeer peer(engine.get());
  const ClusterId victim = engine->store().SortedClusterIds().front();
  ASSERT_TRUE(peer.grid().Remove(victim).ok());

  const InvariantAuditReport report = engine->AuditInvariants();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(MentionedIn(report, "cluster " + std::to_string(victim)))
      << report.ToString();
  EXPECT_TRUE(MentionedIn(report, "missing from the cluster grid"))
      << report.ToString();
}

TEST(InvariantAuditTest, OrphanGridKeyIsPinpointed) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine();
  IngestRound(engine.get(), 1);
  ScubaEngineAuditPeer peer(engine.get());
  ASSERT_TRUE(peer.grid().Insert(999983u, Point{50.0, 50.0}).ok());

  const InvariantAuditReport report = engine->AuditInvariants();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(MentionedIn(report, "orphan key 999983")) << report.ToString();
}

TEST(InvariantAuditTest, ShrunkenRegisteredBoundsArePinpointed) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine();
  IngestRound(engine.get(), 1);
  ScubaEngineAuditPeer peer(engine.get());
  const ClusterId victim = engine->store().SortedClusterIds().front();
  MovingCluster* cluster = peer.store().GetCluster(victim);
  ASSERT_NE(cluster, nullptr);
  cluster->set_registered_bounds(Circle{cluster->centroid(), 1e-3});

  const InvariantAuditReport report = engine->AuditInvariants();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(MentionedIn(report, "registered bounds no longer cover"))
      << report.ToString();
}

TEST(InvariantAuditTest, ViolationMessagesCapButCountingContinues) {
  std::unique_ptr<ScubaEngine> engine = MakeEngine();
  IngestRound(engine.get(), 1);
  ScubaEngineAuditPeer peer(engine.get());
  // More orphans than the message cap: every one is counted, only the first
  // kMaxViolationMessages are retained verbatim.
  const size_t orphans = InvariantAuditReport::kMaxViolationMessages + 8;
  for (size_t i = 0; i < orphans; ++i) {
    ASSERT_TRUE(
        peer.grid().Insert(900000u + static_cast<uint32_t>(i), Point{1, 1}).ok());
  }
  const InvariantAuditReport report = engine->AuditInvariants();
  EXPECT_EQ(report.violations_total, orphans);
  EXPECT_EQ(report.violations.size(),
            InvariantAuditReport::kMaxViolationMessages);
  EXPECT_NE(report.ToString().find("more"), std::string::npos)
      << report.ToString();
}

TEST(InvariantAuditTest, RebuildRestoresCleanAuditAndJoinResults) {
  // Twin engines over the same workload; one gets its grid vandalized three
  // ways, rebuilt, and must then join identically to the untouched twin.
  std::unique_ptr<ScubaEngine> damaged = MakeEngine();
  std::unique_ptr<ScubaEngine> control = MakeEngine();
  IngestRound(damaged.get(), 1);
  IngestRound(control.get(), 1);

  ScubaEngineAuditPeer peer(damaged.get());
  std::vector<ClusterId> cids = damaged->store().SortedClusterIds();
  ASSERT_GE(cids.size(), 2u);
  ASSERT_TRUE(peer.grid().Remove(cids[0]).ok());
  ASSERT_TRUE(peer.grid().Insert(999983u, Point{50.0, 50.0}).ok());
  MovingCluster* shrunk = peer.store().GetCluster(cids[1]);
  ASSERT_NE(shrunk, nullptr);
  shrunk->set_registered_bounds(Circle{shrunk->centroid(), 1e-3});
  ASSERT_FALSE(damaged->AuditInvariants().clean());

  ASSERT_TRUE(damaged->RebuildGridFromStore().ok());
  const InvariantAuditReport report = damaged->AuditInvariants();
  EXPECT_TRUE(report.clean()) << report.ToString();

  ResultSet damaged_results;
  ResultSet control_results;
  ASSERT_TRUE(damaged->Evaluate(2, &damaged_results).ok());
  ASSERT_TRUE(control->Evaluate(2, &control_results).ok());
  EXPECT_GT(control_results.size(), 0u) << "workload must produce matches";
  EXPECT_EQ(damaged_results, control_results);

  // And the healed engine keeps working on later rounds.
  IngestRound(damaged.get(), 3);
  IngestRound(control.get(), 3);
  ASSERT_TRUE(damaged->Evaluate(4, &damaged_results).ok());
  ASSERT_TRUE(control->Evaluate(4, &control_results).ok());
  EXPECT_EQ(damaged_results, control_results);
}

TEST(InvariantAuditTest, PostJoinHealsMissingRegistrationBeforeAudit) {
  // A cluster dropped from the grid is lazily re-registered by post-join
  // maintenance (PlanClusterGridSync treats an unregistered cluster as
  // needing registration), so the periodic audit already sees a clean grid:
  // no repair is charged for this divergence class.
  ScubaOptions options;
  options.audit_every_n_rounds = 1;
  std::unique_ptr<ScubaEngine> engine = MakeEngine(options);
  IngestRound(engine.get(), 1);
  ResultSet results;
  ASSERT_TRUE(engine->Evaluate(2, &results).ok());

  ScubaEngineAuditPeer peer(engine.get());
  const ClusterId victim = engine->store().SortedClusterIds().front();
  ASSERT_TRUE(peer.grid().Remove(victim).ok());

  ASSERT_TRUE(engine->Evaluate(4, &results).ok());
  EXPECT_TRUE(peer.grid().Contains(victim));
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_violations, 0u);
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_repairs, 0u);
}

TEST(InvariantAuditTest, EvaluateSelfHealsGridDivergence) {
  ScubaOptions options;
  options.audit_every_n_rounds = 1;
  std::unique_ptr<ScubaEngine> engine = MakeEngine(options);
  IngestRound(engine.get(), 1);
  ResultSet results;
  ASSERT_TRUE(engine->Evaluate(2, &results).ok());
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_audits, 1u);
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_violations, 0u);

  // Inflate one cluster's registered-bounds memo without touching its actual
  // cell placement. Post-join cannot notice (the memo claims the cluster is
  // generously covered, so no resync is planned), but the audit's cell
  // placement cross-check catches the divergence — only the hook heals this.
  ScubaEngineAuditPeer peer(engine.get());
  const ClusterId victim = engine->store().SortedClusterIds().front();
  MovingCluster* cluster = peer.store().GetCluster(victim);
  ASSERT_NE(cluster, nullptr);
  cluster->set_registered_bounds(
      Circle{cluster->centroid(), cluster->radius() + 5000.0});

  // The round's audit hook finds the divergence, rebuilds the grid and
  // re-audits clean — Evaluate itself succeeds.
  ASSERT_TRUE(engine->Evaluate(4, &results).ok());
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_repairs, 1u);
  EXPECT_GE(engine->StatsSnapshot().eval.invariant_violations, 1u);
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_audits, 3u);  // 1 clean + audit/re-audit
  EXPECT_TRUE(engine->AuditInvariants().clean());

  // Subsequent rounds audit clean without further repairs.
  ASSERT_TRUE(engine->Evaluate(6, &results).ok());
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_repairs, 1u);
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_audits, 4u);
}

TEST(InvariantAuditTest, AuditCadenceFollowsOption) {
  ScubaOptions options;
  options.audit_every_n_rounds = 2;
  std::unique_ptr<ScubaEngine> engine = MakeEngine(options);
  ResultSet results;
  for (int round = 1; round <= 4; ++round) {
    IngestRound(engine.get(), round);
    ASSERT_TRUE(engine->Evaluate(2 * round, &results).ok());
  }
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_audits, 2u);  // rounds 2 and 4 only
}

TEST(InvariantAuditTest, StoreCorruptionSurfacesAsCorruption) {
  ScubaOptions options;
  options.audit_every_n_rounds = 1;
  std::unique_ptr<ScubaEngine> engine = MakeEngine(options);
  IngestRound(engine.get(), 1);

  // Damage the store itself: erase one member's home-table entry. A grid
  // rebuild cannot recover that, so the self-heal path must give up loudly.
  ScubaEngineAuditPeer peer(engine.get());
  const ClusterId victim = engine->store().SortedClusterIds().front();
  const MovingCluster* cluster = engine->store().GetCluster(victim);
  ASSERT_NE(cluster, nullptr);
  ASSERT_FALSE(cluster->members().empty());
  const ClusterMember& member = cluster->members().front();
  ASSERT_TRUE(
      peer.store().ClearHome(EntityRef{member.kind, member.id}).ok());

  ResultSet results;
  Status s = engine->Evaluate(2, &results);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(engine->StatsSnapshot().eval.invariant_repairs, 1u);  // the rebuild was tried
}

TEST(InvariantAuditTest, EmptyEngineAuditsClean) {
  // No clusters, no grid keys: the audit must report clean (not trip over
  // empty tables) — this is also the state right after a fresh Restore of an
  // empty checkpoint.
  std::unique_ptr<ScubaEngine> engine = MakeEngine();
  const InvariantAuditReport report = engine->AuditInvariants();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.clusters_checked, 0u);
  EXPECT_EQ(report.grid_keys_checked, 0u);
  // Rebuilding an empty grid is a harmless no-op, too.
  EXPECT_TRUE(engine->RebuildGridFromStore().ok());
  EXPECT_TRUE(engine->AuditInvariants().clean());
}

TEST(InvariantAuditTest, RebuildIsIdempotent) {
  // A rebuild discards the lazy registration memo and re-registers every
  // cluster from scratch, so it may legitimately tighten bounds relative to
  // incremental maintenance — but it must be a fixed point: a SECOND rebuild
  // on the rebuilt state is a digest-exact no-op, and the audit stays clean.
  std::unique_ptr<ScubaEngine> engine = MakeEngine();
  IngestRound(engine.get(), 1);
  ResultSet results;
  ASSERT_TRUE(engine->Evaluate(2, &results).ok());

  ASSERT_TRUE(engine->RebuildGridFromStore().ok());
  EXPECT_TRUE(engine->AuditInvariants().clean());
  const std::string rebuilt = StateDigest(*engine);
  ASSERT_TRUE(engine->RebuildGridFromStore().ok());
  EXPECT_EQ(StateDigest(*engine), rebuilt) << "second rebuild must be a no-op";
  EXPECT_TRUE(engine->AuditInvariants().clean());

  // And the rebuilt engine still evaluates identically to an untouched twin.
  std::unique_ptr<ScubaEngine> control = MakeEngine();
  IngestRound(control.get(), 1);
  ResultSet control_results;
  ASSERT_TRUE(control->Evaluate(2, &control_results).ok());
  IngestRound(engine.get(), 2);
  IngestRound(control.get(), 2);
  ResultSet after;
  ResultSet control_after;
  ASSERT_TRUE(engine->Evaluate(4, &after).ok());
  ASSERT_TRUE(control->Evaluate(4, &control_after).ok());
  EXPECT_EQ(after, control_after);
}

}  // namespace
}  // namespace scuba
