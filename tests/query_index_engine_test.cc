#include "baseline/query_index_engine.h"

#include <gtest/gtest.h>

#include "baseline/naive_join_engine.h"
#include "common/rng.h"
#include "eval/experiment.h"
#include "stream/pipeline.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, Timestamp t = 0) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = t;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 40, double h = 40,
                Timestamp t = 0) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = t;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{100, 0};
  u.range_width = w;
  u.range_height = h;
  return u;
}

TEST(QueryIndexEngineTest, BasicMatch) {
  QueryIndexEngine e;
  ASSERT_TRUE(e.IngestQueryUpdate(Qry(1, {100, 100})).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(1, {110, 110})).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(2, {5000, 5000})).ok());
  ResultSet r;
  ASSERT_TRUE(e.Evaluate(1, &r).ok());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(1, 1));
  EXPECT_EQ(e.name(), "query-index");
}

TEST(QueryIndexEngineTest, RejectsNullAndBadOptions) {
  QueryIndexEngine e;
  EXPECT_TRUE(e.Evaluate(1, nullptr).IsInvalidArgument());
  QueryIndexOptions bad;
  bad.max_node_entries = 1;
  QueryIndexEngine e2(bad);
  ResultSet r;
  EXPECT_TRUE(e2.Evaluate(1, &r).IsInvalidArgument());
}

TEST(QueryIndexEngineTest, LatestUpdateWins) {
  QueryIndexEngine e;
  ASSERT_TRUE(e.IngestQueryUpdate(Qry(1, {100, 100}, 40, 40, 0)).ok());
  ASSERT_TRUE(e.IngestQueryUpdate(Qry(1, {5000, 5000}, 40, 40, 1)).ok());
  ASSERT_TRUE(e.IngestObjectUpdate(Obj(1, {110, 110})).ok());
  ResultSet r;
  ASSERT_TRUE(e.Evaluate(1, &r).ok());
  EXPECT_TRUE(r.empty());  // query moved away; tree rebuilt from latest
  EXPECT_EQ(e.QueryCount(), 1u);
}

TEST(QueryIndexEngineTest, TreeRebuiltEachRound) {
  QueryIndexEngine e;
  for (uint32_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        e.IngestQueryUpdate(Qry(i, {i * 30.0, i * 30.0})).ok());
  }
  ResultSet r;
  ASSERT_TRUE(e.Evaluate(1, &r).ok());
  EXPECT_GE(e.LastTreeHeight(), 2u);
  EXPECT_EQ(e.stats().evaluations, 1u);
  EXPECT_GT(e.stats().total_maintenance_seconds, 0.0);
}

TEST(QueryIndexEngineTest, RejectsMalformedUpdates) {
  QueryIndexEngine e;
  LocationUpdate bad = Obj(1, {0, 0});
  bad.speed = -1;
  EXPECT_TRUE(e.IngestObjectUpdate(bad).IsInvalidArgument());
  EXPECT_EQ(e.ObjectCount(), 0u);
}

// Property: query-index results equal the naive oracle.
class QueryIndexEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryIndexEquivalenceTest, MatchesNaiveOracle) {
  Rng rng(GetParam());
  QueryIndexEngine qindex;
  NaiveJoinEngine naive;
  for (uint32_t i = 0; i < 400; ++i) {
    LocationUpdate o =
        Obj(i, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)});
    ASSERT_TRUE(qindex.IngestObjectUpdate(o).ok());
    ASSERT_TRUE(naive.IngestObjectUpdate(o).ok());
  }
  for (uint32_t i = 0; i < 200; ++i) {
    QueryUpdate q =
        Qry(i, {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)},
            rng.NextDouble(10, 400), rng.NextDouble(10, 400));
    ASSERT_TRUE(qindex.IngestQueryUpdate(q).ok());
    ASSERT_TRUE(naive.IngestQueryUpdate(q).ok());
  }
  ResultSet a;
  ResultSet b;
  ASSERT_TRUE(qindex.Evaluate(1, &a).ok());
  ASSERT_TRUE(naive.Evaluate(1, &b).ok());
  EXPECT_EQ(a, b);
  EXPECT_GT(b.size(), 0u);
  // The point of the index: far fewer comparisons than |O| x |Q|.
  EXPECT_LT(qindex.stats().comparisons, naive.stats().comparisons / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryIndexEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(QueryIndexEngineTest, EndToEndOnTrace) {
  ExperimentConfig config;
  config.city.rows = 9;
  config.city.cols = 9;
  config.workload.num_objects = 120;
  config.workload.num_queries = 120;
  config.workload.skew = 10;
  config.ticks = 6;
  Result<ExperimentData> data = BuildExperimentData(config);
  ASSERT_TRUE(data.ok());
  QueryIndexEngine qindex;
  NaiveJoinEngine naive;
  Result<EngineRunResult> a = RunOnTrace(&qindex, data->trace, config.delta);
  Result<EngineRunResult> b = RunOnTrace(&naive, data->trace, config.delta);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->final_results, b->final_results);
}

}  // namespace
}  // namespace scuba
