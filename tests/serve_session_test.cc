// Session-manager policy tests (src/serve/session.h) — socket-free by
// design, so the bounded-queue / slow-consumer / admission behavior is
// provable without a running server:
//
//  - one delta per round per ready subscribed session, stamped by its cursor;
//  - kCoalesce replaces a slow consumer's backlog with ONE snapshot, keeps
//    its memory bounded, and never stalls the fast sessions;
//  - kDisconnect dooms the slow consumer with a fatal error frame;
//  - a partially-written head frame survives coalescing (no torn stream);
//  - LoadShedder-backed admission refuses sessions over the memory budget.

#include "serve/session.h"

#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.h"

namespace scuba::serve {
namespace {

/// Unframes one queued frame's bytes back into its payload.
std::string Payload(const OutFrame& frame) {
  FrameDecoder decoder;
  decoder.Append(frame.bytes);
  std::string payload;
  Result<bool> got = decoder.Next(&payload);
  EXPECT_TRUE(got.ok() && *got) << "queued frame does not decode";
  return payload;
}

ResultSet MakeResults(std::initializer_list<Match> matches) {
  ResultSet r;
  for (const Match& m : matches) r.Add(m.qid, m.oid);
  r.Normalize();
  return r;
}

TEST(SessionTest, FilterResultsSubsetKeepsOrderAndProvenance) {
  Session session(1, -1);
  session.Subscribe(1);
  session.Subscribe(3);
  ResultSet global = MakeResults({{1, 5}, {2, 5}, {3, 1}, {3, 2}});
  global.MarkDegraded(2);
  ResultSet filtered = session.FilterResults(global);
  EXPECT_EQ(filtered.matches(),
            (std::vector<Match>{{1, 5}, {3, 1}, {3, 2}}));
  EXPECT_TRUE(filtered.degraded());
  EXPECT_EQ(filtered.degraded_shards(), std::vector<uint32_t>{2});

  Session all(2, -1);
  all.SubscribeAll();
  EXPECT_TRUE(all.FilterResults(global) == global);
}

TEST(SessionManagerTest, AcceptEnforcesSessionCap) {
  ServeOptions options;
  options.max_sessions = 2;
  SessionManager manager(options, nullptr);
  ASSERT_TRUE(manager.Accept(10).ok());
  ASSERT_TRUE(manager.Accept(11).ok());
  Result<Session*> refused = manager.Accept(12);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  manager.Close(10);
  EXPECT_TRUE(manager.Accept(12).ok());
}

TEST(SessionManagerTest, PushRoundTargetsReadySubscribedSessionsOnly) {
  ServeOptions options;
  SessionManager manager(options, nullptr);
  Session* subscribed = *manager.Accept(1);
  subscribed->set_ready("a");
  subscribed->SubscribeAll();
  Session* not_ready = *manager.Accept(2);
  not_ready->SubscribeAll();
  Session* no_subscription = *manager.Accept(3);
  no_subscription->set_ready("c");

  ResultSet global = MakeResults({{1, 1}, {2, 2}});
  manager.PushRound(1, 10, global);

  EXPECT_TRUE(not_ready->queue().empty());
  EXPECT_TRUE(no_subscription->queue().empty());
  ASSERT_EQ(subscribed->queue().size(), 1u);
  EXPECT_EQ(subscribed->queue().front().type, MessageType::kDelta);
  ResultDelta delta;
  ASSERT_TRUE(DecodeDelta(Payload(subscribed->queue().front()), &delta).ok());
  EXPECT_EQ(delta.round, 1u);
  EXPECT_EQ(delta.time, 10);
  EXPECT_TRUE(ApplyDelta(ResultSet(), delta) == global);
}

TEST(SessionManagerTest, EmptyRoundsStillPushStampedDeltas) {
  // Subscribers align deltas with rounds; an unchanged answer is still a
  // (empty) delta, so gaps always mean loss.
  ServeOptions options;
  SessionManager manager(options, nullptr);
  Session* s = *manager.Accept(1);
  s->set_ready("a");
  s->SubscribeAll();
  ResultSet global = MakeResults({{1, 1}});
  manager.PushRound(1, 10, global);
  manager.PushRound(2, 20, global);  // no change
  ASSERT_EQ(s->queue().size(), 2u);
  ResultDelta second;
  ASSERT_TRUE(DecodeDelta(Payload(s->queue().back()), &second).ok());
  EXPECT_EQ(second.round, 2u);
  EXPECT_TRUE(second.Empty());
}

TEST(SessionManagerTest, CoalesceBoundsSlowConsumerWithoutStallingFast) {
  ServeOptions options;
  options.slow_consumer = SlowConsumerPolicy::kCoalesce;
  options.max_queue_bytes = 256;  // a few delta frames
  SessionManager manager(options, nullptr);
  Session* slow = *manager.Accept(1);
  slow->set_ready("slow");
  slow->SubscribeAll();
  Session* fast = *manager.Accept(2);
  fast->set_ready("fast");
  fast->SubscribeAll();

  // 40 rounds of churning results; `fast` drains its queue every round,
  // `slow` never reads a byte.
  ResultSet global;
  uint64_t fast_deltas = 0;
  for (uint32_t round = 1; round <= 40; ++round) {
    global = MakeResults({{round, 1}, {round, 2}, {round + 1, 7}});
    manager.PushRound(round, round, global);
    while (!fast->queue().empty()) {
      ++fast_deltas;
      manager.ConsumeWritten(fast, fast->queue().front().bytes.size());
    }
  }

  // The fast session saw every round.
  EXPECT_EQ(fast_deltas, 40u);
  // The slow session's backlog stayed bounded: at most the byte cap plus the
  // one in-flight snapshot that replaced its history.
  EXPECT_GT(manager.coalesces(), 0u);
  EXPECT_FALSE(slow->doomed());
  EXPECT_LE(slow->queue().size(), 4u);
  ASSERT_FALSE(slow->queue().empty());
  // The backlog still folds to the current answer: a coalesced snapshot
  // (standing in for the dropped history) followed by whole, consecutive
  // deltas.
  ResultSet folded;
  uint64_t at_round = 0;
  bool saw_snapshot = false;
  for (const OutFrame& frame : slow->queue()) {
    const std::string payload = Payload(frame);
    if (frame.type == MessageType::kSnapshot) {
      SnapshotMsg snap;
      ASSERT_TRUE(DecodeSnapshot(payload, &snap).ok());
      EXPECT_TRUE(snap.coalesced);
      saw_snapshot = true;
      ResultSet base;
      for (const Match& m : snap.matches) base.Add(m.qid, m.oid);
      folded = base;
      at_round = snap.round;
    } else {
      ASSERT_EQ(frame.type, MessageType::kDelta);
      ResultDelta delta;
      ASSERT_TRUE(DecodeDelta(payload, &delta).ok());
      EXPECT_EQ(delta.round, at_round + 1);
      folded = ApplyDelta(folded, delta);
      at_round = delta.round;
    }
  }
  EXPECT_TRUE(saw_snapshot);
  EXPECT_EQ(at_round, 40u);
  EXPECT_TRUE(folded == global);
}

TEST(SessionManagerTest, DisconnectDoomsSlowConsumerWithFatalError) {
  ServeOptions options;
  options.slow_consumer = SlowConsumerPolicy::kDisconnect;
  options.max_queue_bytes = 128;
  SessionManager manager(options, nullptr);
  Session* slow = *manager.Accept(1);
  slow->set_ready("slow");
  slow->SubscribeAll();
  Session* fast = *manager.Accept(2);
  fast->set_ready("fast");
  fast->SubscribeAll();

  ResultSet global;
  uint64_t fast_deltas = 0;
  for (uint32_t round = 1; round <= 10; ++round) {
    global = MakeResults({{round, 1}, {round, 2}, {round, 3}});
    manager.PushRound(round, round, global);
    while (!fast->queue().empty()) {
      ++fast_deltas;
      manager.ConsumeWritten(fast, fast->queue().front().bytes.size());
    }
  }

  EXPECT_EQ(fast_deltas, 10u);
  EXPECT_TRUE(slow->doomed());
  EXPECT_EQ(manager.disconnects(), 1u);
  // The farewell is the only thing left to send, and it is fatal.
  ASSERT_EQ(slow->queue().size(), 1u);
  ASSERT_EQ(slow->queue().front().type, MessageType::kError);
  ErrorMsg err;
  ASSERT_TRUE(DecodeError(Payload(slow->queue().front()), &err).ok());
  EXPECT_TRUE(err.fatal);
  EXPECT_EQ(err.code,
            static_cast<uint32_t>(StatusCode::kResourceExhausted));
  // Doomed sessions receive no further result frames.
  manager.PushRound(11, 11, global);
  EXPECT_EQ(slow->queue().size(), 1u);
}

TEST(SessionManagerTest, ControlFrameFloodDisconnects) {
  // A client that streams batches/ticks but never reads a byte accumulates
  // ack frames, which the byte cap does not cover and coalescing cannot
  // shrink; the control-frame bound must disconnect it instead of letting the
  // queue grow without limit.
  ServeOptions options;
  options.max_queued_control_frames = 16;
  SessionManager manager(options, nullptr);
  Session* s = *manager.Accept(1);
  s->set_ready("s");

  for (uint32_t i = 0; i < 64 && !s->doomed(); ++i) {
    manager.EnqueueMessage(s, MessageType::kTickAck,
                           EncodeTickAck(TickAckMsg{i, Timestamp(i), 0, false}));
  }
  EXPECT_TRUE(s->doomed());
  EXPECT_EQ(manager.disconnects(), 1u);
  // The queue holds exactly the acks up to the bound plus the fatal farewell.
  ASSERT_EQ(s->queue().size(), options.max_queued_control_frames + 1);
  ASSERT_EQ(s->queue().back().type, MessageType::kError);
  ErrorMsg err;
  ASSERT_TRUE(DecodeError(Payload(s->queue().back()), &err).ok());
  EXPECT_TRUE(err.fatal);
  EXPECT_EQ(err.code, static_cast<uint32_t>(StatusCode::kResourceExhausted));
  // Doomed sessions accept no further control frames.
  const size_t at_doom = s->queue().size();
  manager.EnqueueMessage(s, MessageType::kTickAck,
                         EncodeTickAck(TickAckMsg{99, 99, 0, false}));
  EXPECT_EQ(s->queue().size(), at_doom);
}

TEST(SessionManagerTest, OversizedPayloadDisconnectsInsteadOfPoisoning) {
  // A payload beyond kMaxFramePayload can never reach the peer — its decoder
  // would treat the length prefix as a sticky fatal error. The manager must
  // fail the session with a typed error instead of emitting the frame.
  ServeOptions options;
  SessionManager manager(options, nullptr);
  Session* s = *manager.Accept(1);
  s->set_ready("s");
  s->SubscribeAll();

  const std::string huge(kMaxFramePayload + 1, 'x');
  manager.EnqueueMessage(s, MessageType::kDelta, huge);
  EXPECT_TRUE(s->doomed());
  EXPECT_EQ(manager.disconnects(), 1u);
  ASSERT_EQ(s->queue().size(), 1u);
  ASSERT_EQ(s->queue().front().type, MessageType::kError);
  ErrorMsg err;
  ASSERT_TRUE(DecodeError(Payload(s->queue().front()), &err).ok());
  EXPECT_TRUE(err.fatal);
  EXPECT_EQ(err.code, static_cast<uint32_t>(StatusCode::kResourceExhausted));
}

TEST(SessionManagerTest, CoalesceKeepsPartiallyWrittenHeadFrame) {
  // Dropping a frame the kernel already has half of would tear the client's
  // byte stream and poison its decoder; the head frame must survive.
  ServeOptions options;
  options.slow_consumer = SlowConsumerPolicy::kCoalesce;
  options.max_queue_bytes = 160;
  SessionManager manager(options, nullptr);
  Session* s = *manager.Accept(1);
  s->set_ready("s");
  s->SubscribeAll();

  manager.PushRound(1, 1, MakeResults({{1, 1}, {2, 2}}));
  ASSERT_EQ(s->queue().size(), 1u);
  const std::string head_bytes = s->queue().front().bytes;
  // Half the head frame is already on the wire.
  manager.ConsumeWritten(s, head_bytes.size() / 2);
  ASSERT_EQ(s->queue().size(), 1u);

  // Overflow the queue so the coalesce fires.
  for (uint32_t round = 2; round <= 12; ++round) {
    manager.PushRound(round, round,
                      MakeResults({{round, 1}, {round, 2}, {round, 3}}));
  }
  ASSERT_GE(s->queue().size(), 2u);
  // The in-flight head frame is byte-identical and its offset intact.
  EXPECT_EQ(s->queue().front().bytes, head_bytes);
  EXPECT_EQ(s->write_offset, head_bytes.size() / 2);
  EXPECT_EQ(s->queue().back().type, MessageType::kSnapshot);
}

TEST(SessionManagerTest, AdmissionShedsOverMemoryBudget) {
  ServeOptions options;
  options.memory_budget_bytes = 1 << 20;
  SessionManager manager(options, nullptr);
  ASSERT_TRUE(manager.Accept(1).ok());

  // Pressure beyond the budget arms the shedder; admissions are refused.
  manager.ObservePressure(2 << 20);
  EXPECT_TRUE(manager.shedding());
  Result<Session*> refused = manager.Accept(2);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  // Sustained pressure below the relax threshold lets admissions resume.
  for (int i = 0; i < 64 && manager.shedding(); ++i) {
    manager.ObservePressure(0);
  }
  EXPECT_FALSE(manager.shedding());
  EXPECT_TRUE(manager.Accept(2).ok());
}

TEST(SessionManagerTest, ConsumeWrittenTracksPartialWrites) {
  ServeOptions options;
  SessionManager manager(options, nullptr);
  Session* s = *manager.Accept(1);
  s->set_ready("s");
  std::string frame = *EncodeFrame(EncodeError(ErrorMsg{1, "hi", false}));
  const size_t total = frame.size();
  manager.EnqueueFrame(s, MessageType::kError, std::move(frame));
  EXPECT_EQ(manager.total_queued_bytes(), total);
  EXPECT_FALSE(manager.ConsumeWritten(s, 3));
  EXPECT_EQ(manager.total_queued_bytes(), total - 3);
  EXPECT_TRUE(manager.ConsumeWritten(s, total - 3));
  EXPECT_TRUE(s->queue().empty());
  EXPECT_EQ(manager.total_queued_bytes(), 0u);
  EXPECT_EQ(s->write_offset, 0u);
}

}  // namespace
}  // namespace scuba::serve
