#include "eval/svg_render.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{900, 900};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{900, 900};
  u.range_width = 50;
  u.range_height = 30;
  return u;
}

ClusterStore MakeStore() {
  ClusterStore store;
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {100, 100}));
  c.AbsorbObject(Obj(2, {120, 100}));
  c.AbsorbQuery(Qry(1, {110, 110}));
  EXPECT_TRUE(store.AddCluster(std::move(c)).ok());
  return store;
}

TEST(SvgRenderTest, ValidatesInputs) {
  ClusterStore store;
  EXPECT_TRUE(RenderClustersSvg(store, Rect{10, 10, 0, 0})
                  .status()
                  .IsInvalidArgument());
  SvgRenderOptions opt;
  opt.image_width = 0;
  EXPECT_TRUE(RenderClustersSvg(store, Rect{0, 0, 100, 100}, opt)
                  .status()
                  .IsInvalidArgument());
}

TEST(SvgRenderTest, EmptyStoreIsStillValidSvg) {
  ClusterStore store;
  Result<std::string> svg = RenderClustersSvg(store, Rect{0, 0, 1000, 1000});
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("<svg"), std::string::npos);
  EXPECT_NE(svg->find("</svg>"), std::string::npos);
}

TEST(SvgRenderTest, DrawsClustersMembersAndRanges) {
  ClusterStore store = MakeStore();
  Result<std::string> svg = RenderClustersSvg(store, Rect{0, 0, 1000, 1000});
  ASSERT_TRUE(svg.ok());
  // One cluster circle, two object dots, one query rectangle.
  size_t circles = 0;
  size_t rects = 0;
  for (size_t pos = 0; (pos = svg->find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  for (size_t pos = 0; (pos = svg->find("<rect", pos)) != std::string::npos;
       ++pos) {
    ++rects;
  }
  EXPECT_EQ(circles, 3u);  // cluster circle + 2 member dots
  EXPECT_EQ(rects, 2u);    // background + query range
}

TEST(SvgRenderTest, OptionsToggleLayers) {
  ClusterStore store = MakeStore();
  SvgRenderOptions opt;
  opt.draw_members = false;
  opt.draw_query_ranges = false;
  opt.draw_clusters = false;
  opt.draw_nuclei = false;
  Result<std::string> svg =
      RenderClustersSvg(store, Rect{0, 0, 1000, 1000}, opt);
  ASSERT_TRUE(svg.ok());
  EXPECT_EQ(svg->find("<circle"), std::string::npos);
}

TEST(SvgRenderTest, NucleusDrawnWhenPresent) {
  ClusterStore store;
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {100, 100}));
  c.AbsorbObject(Obj(2, {110, 100}));
  c.ShedPositions(40.0);
  EXPECT_TRUE(store.AddCluster(std::move(c)).ok());
  Result<std::string> svg = RenderClustersSvg(store, Rect{0, 0, 1000, 1000});
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("stroke-dasharray=\"4 3\""), std::string::npos);
}

TEST(SvgRenderTest, AspectRatioFollowsRegion) {
  ClusterStore store;
  SvgRenderOptions opt;
  opt.image_width = 500;
  Result<std::string> svg =
      RenderClustersSvg(store, Rect{0, 0, 1000, 500}, opt);  // 2:1
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("width=\"500\" height=\"250\""), std::string::npos);
}

}  // namespace
}  // namespace scuba
