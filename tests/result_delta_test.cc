#include "core/result_delta.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serializer.h"

namespace scuba {
namespace {

ResultSet Make(std::initializer_list<Match> matches) {
  ResultSet r;
  for (const Match& m : matches) r.Add(m.qid, m.oid);
  r.Normalize();
  return r;
}

TEST(ResultDeltaTest, IdenticalSetsYieldEmptyDelta) {
  ResultSet s = Make({{1, 1}, {2, 2}});
  ResultDelta d = DiffResults(s, s);
  EXPECT_TRUE(d.Empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.round, 0u);  // bare diffs are unstamped
}

TEST(ResultDeltaTest, AddsAndRemovals) {
  ResultSet prev = Make({{1, 1}, {1, 2}, {3, 3}});
  ResultSet curr = Make({{1, 2}, {2, 9}, {3, 3}});
  ResultDelta d = DiffResults(prev, curr);
  EXPECT_EQ(d.added, (std::vector<Match>{{2, 9}}));
  EXPECT_EQ(d.removed, (std::vector<Match>{{1, 1}}));
}

TEST(ResultDeltaTest, EmptyToFullIsAllAdded) {
  ResultSet curr = Make({{1, 1}, {2, 2}});
  ResultDelta d = DiffResults(ResultSet{}, curr);
  EXPECT_EQ(d.added.size(), 2u);
  EXPECT_TRUE(d.removed.empty());
}

TEST(ResultDeltaTest, FullToEmptyIsAllRemoved) {
  ResultSet prev = Make({{1, 1}, {2, 2}});
  ResultDelta d = DiffResults(prev, ResultSet{});
  EXPECT_TRUE(d.added.empty());
  EXPECT_EQ(d.removed.size(), 2u);
}

TEST(ResultDeltaTest, ApplyDeltaReconstructs) {
  ResultSet prev = Make({{1, 1}, {1, 2}, {3, 3}, {4, 4}});
  ResultSet curr = Make({{0, 5}, {1, 2}, {3, 3}, {9, 9}});
  ResultDelta d = DiffResults(prev, curr);
  ResultSet rebuilt = ApplyDelta(prev, d);
  EXPECT_EQ(rebuilt, curr);
}

// Regression (docs/ARCHITECTURE.md §13/§14): a degraded round must stay
// visible through the diff/apply pipeline — a subscriber folding deltas sees
// the same provenance an offline caller reads off the ResultSet, even when
// the diff itself is empty.
TEST(ResultDeltaTest, DegradedProvenancePropagatesThroughDiffAndApply) {
  ResultSet prev = Make({{1, 1}, {2, 2}});
  ResultSet curr = Make({{1, 1}, {2, 2}});
  curr.MarkDegraded(3);
  curr.MarkDegraded(1);
  ResultDelta d = DiffResults(prev, curr);
  EXPECT_TRUE(d.Empty());  // identical matches...
  EXPECT_TRUE(d.degraded());  // ...but the degraded round is still flagged
  EXPECT_EQ(d.degraded_shards, (std::vector<uint32_t>{3, 1}));
  ResultSet rebuilt = ApplyDelta(prev, d);
  EXPECT_EQ(rebuilt, curr);
  EXPECT_TRUE(rebuilt.degraded());
  EXPECT_EQ(rebuilt.degraded_shards(), curr.degraded_shards());
  // A clean round's delta carries no provenance.
  EXPECT_FALSE(DiffResults(prev, prev).degraded());
}

TEST(ResultDeltaTest, TrackerFirstRoundAllAddedAndStamped) {
  IncrementalResultTracker tracker;
  ResultSet r1 = Make({{1, 1}, {2, 2}});
  ResultDelta d = tracker.Observe(r1, /*now=*/7);
  EXPECT_EQ(d.added.size(), 2u);
  EXPECT_TRUE(d.removed.empty());
  EXPECT_EQ(d.round, 1u);
  EXPECT_EQ(d.time, 7);
  EXPECT_EQ(tracker.rounds(), 1u);
  EXPECT_EQ(tracker.time(), 7);
  EXPECT_EQ(tracker.Current(), r1);
}

TEST(ResultDeltaTest, TrackerSequencesStampedDeltas) {
  IncrementalResultTracker tracker;
  (void)tracker.Observe(Make({{1, 1}, {2, 2}}), 2);
  ResultDelta d = tracker.Observe(Make({{2, 2}, {3, 3}}), 4);
  EXPECT_EQ(d.added, (std::vector<Match>{{3, 3}}));
  EXPECT_EQ(d.removed, (std::vector<Match>{{1, 1}}));
  EXPECT_EQ(d.round, 2u);
  EXPECT_EQ(d.time, 4);
  ResultDelta d2 = tracker.Observe(Make({{2, 2}, {3, 3}}), 6);
  EXPECT_TRUE(d2.Empty());
  EXPECT_EQ(d2.round, 3u);
  EXPECT_EQ(tracker.rounds(), 3u);
}

TEST(ResultDeltaTest, TrackerDeltaSinceCatchesUpFromAnyBase) {
  IncrementalResultTracker tracker;
  ResultSet r1 = Make({{1, 1}, {2, 2}});
  ResultSet r2 = Make({{2, 2}, {3, 3}});
  ResultSet r3 = Make({{3, 3}, {4, 4}});
  (void)tracker.Observe(r1, 2);
  (void)tracker.Observe(r2, 4);
  (void)tracker.Observe(r3, 6);
  // A consumer stuck at r1 catches up to the cursor head in one delta.
  ResultDelta d = tracker.DeltaSince(r1);
  EXPECT_EQ(d.round, 3u);
  EXPECT_EQ(d.time, 6);
  EXPECT_EQ(ApplyDelta(r1, d), r3);
  // The cursor itself is undisturbed, and DeltaSince(head) is empty.
  EXPECT_EQ(tracker.Current(), r3);
  EXPECT_TRUE(tracker.DeltaSince(tracker.Current()).Empty());
}

TEST(ResultDeltaTest, TrackerResetForgetsEverything) {
  IncrementalResultTracker tracker;
  (void)tracker.Observe(Make({{1, 1}}), 2);
  tracker.Reset();
  EXPECT_EQ(tracker.rounds(), 0u);
  EXPECT_TRUE(tracker.Current().empty());
  ResultDelta d = tracker.Observe(Make({{5, 5}}), 9);
  EXPECT_EQ(d.round, 1u);
  EXPECT_EQ(d.added.size(), 1u);
  EXPECT_TRUE(d.removed.empty());
}

TEST(ResultDeltaTest, SaveLoadRoundTrips) {
  ResultDelta d;
  d.round = 42;
  d.time = -7;  // Timestamp is signed; the wire format must preserve it
  d.degraded_shards = {2, 0};
  d.added = {{1, 2}, {3, 4}};
  d.removed = {{0, 9}, {5, 5}};
  ByteWriter writer;
  d.Save(&writer);
  ByteReader reader(writer.bytes());
  ResultDelta back;
  ASSERT_TRUE(ResultDelta::Load(&reader, &back).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(back, d);
}

TEST(ResultDeltaTest, LoadRejectsTruncationAsDataLoss) {
  ResultDelta d;
  d.round = 1;
  d.added = {{1, 1}, {2, 2}};
  ByteWriter writer;
  d.Save(&writer);
  const std::string bytes = writer.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader reader(std::string_view(bytes).substr(0, cut));
    ResultDelta back;
    Status s = ResultDelta::Load(&reader, &back);
    ASSERT_FALSE(s.ok()) << "cut=" << cut;
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ResultDeltaTest, LoadRejectsUnorderedAndOverlappingSets) {
  // Descending `added` violates the ordering contract.
  ByteWriter unordered;
  ResultDelta d;
  d.added = {{2, 2}, {1, 1}};  // not ascending — bypass Save's implicit order
  unordered.PutU64(d.round);
  unordered.PutI64(d.time);
  unordered.PutU64(0);                      // no degraded shards
  unordered.PutU64(2);                      // added count
  for (const Match& m : d.added) {
    unordered.PutU32(m.qid);
    unordered.PutU32(m.oid);
  }
  unordered.PutU64(0);  // removed count
  ByteReader r1(unordered.bytes());
  ResultDelta back;
  EXPECT_EQ(ResultDelta::Load(&r1, &back).code(), StatusCode::kCorruption);

  // added ∩ removed must be empty.
  ResultDelta overlap;
  overlap.added = {{1, 1}};
  overlap.removed = {{1, 1}};
  ByteWriter w2;
  overlap.Save(&w2);
  ByteReader r2(w2.bytes());
  EXPECT_EQ(ResultDelta::Load(&r2, &back).code(), StatusCode::kCorruption);
}

// Property: Apply(prev, Diff(prev, curr)) == curr on random sets, and the
// stamped encoding round-trips bit-exactly.
class DeltaRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaRoundTripTest, RoundTrips) {
  Rng rng(GetParam());
  IncrementalResultTracker tracker;
  for (int iter = 0; iter < 100; ++iter) {
    ResultSet prev;
    ResultSet curr;
    for (int i = 0; i < 200; ++i) {
      QueryId q = static_cast<QueryId>(rng.NextBounded(20));
      ObjectId o = static_cast<ObjectId>(rng.NextBounded(20));
      if (rng.NextBool(0.5)) prev.Add(q, o);
      if (rng.NextBool(0.5)) curr.Add(q, o);
    }
    prev.Normalize();
    curr.Normalize();
    ResultDelta d = DiffResults(prev, curr);
    EXPECT_EQ(ApplyDelta(prev, d), curr);
    // Delta size consistency: |curr| = |prev| + |added| - |removed|.
    EXPECT_EQ(curr.size(), prev.size() + d.added.size() - d.removed.size());
    // Wire round trip preserves the stamped structure exactly.
    ResultDelta stamped = tracker.Observe(curr, static_cast<Timestamp>(iter));
    ByteWriter writer;
    stamped.Save(&writer);
    ByteReader reader(writer.bytes());
    ResultDelta back;
    ASSERT_TRUE(ResultDelta::Load(&reader, &back).ok());
    EXPECT_EQ(back, stamped);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaRoundTripTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace scuba
