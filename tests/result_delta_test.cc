#include "core/result_delta.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

ResultSet Make(std::initializer_list<Match> matches) {
  ResultSet r;
  for (const Match& m : matches) r.Add(m.qid, m.oid);
  r.Normalize();
  return r;
}

TEST(ResultDeltaTest, IdenticalSetsYieldEmptyDelta) {
  ResultSet s = Make({{1, 1}, {2, 2}});
  ResultDelta d = DiffResults(s, s);
  EXPECT_TRUE(d.Empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(ResultDeltaTest, AddsAndRemovals) {
  ResultSet prev = Make({{1, 1}, {1, 2}, {3, 3}});
  ResultSet curr = Make({{1, 2}, {2, 9}, {3, 3}});
  ResultDelta d = DiffResults(prev, curr);
  EXPECT_EQ(d.added, (std::vector<Match>{{2, 9}}));
  EXPECT_EQ(d.removed, (std::vector<Match>{{1, 1}}));
}

TEST(ResultDeltaTest, EmptyToFullIsAllAdded) {
  ResultSet curr = Make({{1, 1}, {2, 2}});
  ResultDelta d = DiffResults(ResultSet{}, curr);
  EXPECT_EQ(d.added.size(), 2u);
  EXPECT_TRUE(d.removed.empty());
}

TEST(ResultDeltaTest, FullToEmptyIsAllRemoved) {
  ResultSet prev = Make({{1, 1}, {2, 2}});
  ResultDelta d = DiffResults(prev, ResultSet{});
  EXPECT_TRUE(d.added.empty());
  EXPECT_EQ(d.removed.size(), 2u);
}

TEST(ResultDeltaTest, ApplyDeltaReconstructs) {
  ResultSet prev = Make({{1, 1}, {1, 2}, {3, 3}, {4, 4}});
  ResultSet curr = Make({{0, 5}, {1, 2}, {3, 3}, {9, 9}});
  ResultDelta d = DiffResults(prev, curr);
  ResultSet rebuilt = ApplyDelta(prev, d);
  EXPECT_EQ(rebuilt, curr);
}

TEST(ResultDeltaTest, TrackerFirstRoundAllAdded) {
  IncrementalResultTracker tracker;
  ResultSet r1 = Make({{1, 1}, {2, 2}});
  ResultDelta d = tracker.Observe(r1);
  EXPECT_EQ(d.added.size(), 2u);
  EXPECT_TRUE(d.removed.empty());
  EXPECT_EQ(tracker.rounds(), 1u);
  EXPECT_EQ(tracker.previous(), r1);
}

TEST(ResultDeltaTest, TrackerSequencesDeltas) {
  IncrementalResultTracker tracker;
  (void)tracker.Observe(Make({{1, 1}, {2, 2}}));
  ResultDelta d = tracker.Observe(Make({{2, 2}, {3, 3}}));
  EXPECT_EQ(d.added, (std::vector<Match>{{3, 3}}));
  EXPECT_EQ(d.removed, (std::vector<Match>{{1, 1}}));
  ResultDelta d2 = tracker.Observe(Make({{2, 2}, {3, 3}}));
  EXPECT_TRUE(d2.Empty());
  EXPECT_EQ(tracker.rounds(), 3u);
}

// Property: Apply(prev, Diff(prev, curr)) == curr on random sets.
class DeltaRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaRoundTripTest, RoundTrips) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    ResultSet prev;
    ResultSet curr;
    for (int i = 0; i < 200; ++i) {
      QueryId q = static_cast<QueryId>(rng.NextBounded(20));
      ObjectId o = static_cast<ObjectId>(rng.NextBounded(20));
      if (rng.NextBool(0.5)) prev.Add(q, o);
      if (rng.NextBool(0.5)) curr.Add(q, o);
    }
    prev.Normalize();
    curr.Normalize();
    ResultDelta d = DiffResults(prev, curr);
    EXPECT_EQ(ApplyDelta(prev, d), curr);
    // Delta size consistency: |curr| = |prev| + |added| - |removed|.
    EXPECT_EQ(curr.size(), prev.size() + d.added.size() - d.removed.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaRoundTripTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace scuba
