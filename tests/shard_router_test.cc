// ShardRouter partitioning: even and uneven row-stripe splits, contiguous
// cell windows, zero-area stripes when shards outnumber rows, the degenerate
// one-row map, and point routing with the grid's exact clamping semantics.

#include <gtest/gtest.h>

#include "index/grid_index.h"
#include "shard/shard_router.h"

namespace scuba {
namespace {

constexpr Rect kRegion{0, 0, 10000, 10000};

TEST(ShardRouterTest, RejectsZeroShards) {
  EXPECT_FALSE(ShardRouter::Create(kRegion, 100, 0).ok());
}

TEST(ShardRouterTest, RejectsInvalidGeometry) {
  EXPECT_FALSE(ShardRouter::Create(Rect{10, 10, 10, 10}, 100, 2).ok());
  EXPECT_FALSE(ShardRouter::Create(kRegion, 0, 2).ok());
}

TEST(ShardRouterTest, EvenSplitIsContiguousAndExhaustive) {
  ShardRouter router = ShardRouter::Create(kRegion, 100, 4).value();
  EXPECT_EQ(router.shard_count(), 4u);
  EXPECT_EQ(router.RowBegin(0), 0u);
  EXPECT_EQ(router.RowEnd(0), 25u);
  EXPECT_EQ(router.RowBegin(3), 75u);
  EXPECT_EQ(router.RowEnd(3), 100u);
  // Cell windows tile the grid with no gaps or overlaps.
  EXPECT_EQ(router.CellBegin(0), 0u);
  for (uint32_t s = 0; s + 1 < 4; ++s) {
    EXPECT_EQ(router.CellEnd(s), router.CellBegin(s + 1));
  }
  EXPECT_EQ(router.CellEnd(3), 100u * 100u);
}

TEST(ShardRouterTest, CellOwnershipMatchesWindows) {
  ShardRouter router = ShardRouter::Create(kRegion, 100, 4).value();
  // Exhaustive: every cell's owner window contains it.
  for (uint32_t cell = 0; cell < 100u * 100u; ++cell) {
    const uint32_t s = router.ShardOfCell(cell);
    EXPECT_GE(cell, router.CellBegin(s));
    EXPECT_LT(cell, router.CellEnd(s));
  }
  // Stripe-border cells land on opposite sides.
  EXPECT_EQ(router.ShardOfCell(25u * 100u - 1), 0u);
  EXPECT_EQ(router.ShardOfCell(25u * 100u), 1u);
}

TEST(ShardRouterTest, UnevenRowsSplitByIntegerDivision) {
  // 10 rows over 3 shards: [0,3) [3,6) [6,10).
  ShardRouter router = ShardRouter::Create(kRegion, 10, 3).value();
  EXPECT_EQ(router.RowEnd(0), 3u);
  EXPECT_EQ(router.RowEnd(1), 6u);
  EXPECT_EQ(router.RowEnd(2), 10u);
  EXPECT_FALSE(router.ZeroArea(0));
  EXPECT_FALSE(router.ZeroArea(2));
}

TEST(ShardRouterTest, MoreShardsThanRowsYieldsZeroAreaStripes) {
  // 4 rows over 8 shards: half the stripes own nothing — legal, they simply
  // never receive cells or clusters.
  ShardRouter router = ShardRouter::Create(kRegion, 4, 8).value();
  uint32_t zero_area = 0, rows_covered = 0;
  for (uint32_t s = 0; s < 8; ++s) {
    if (router.ZeroArea(s)) {
      ++zero_area;
      EXPECT_EQ(router.CellBegin(s), router.CellEnd(s));
    } else {
      rows_covered += router.RowEnd(s) - router.RowBegin(s);
    }
  }
  EXPECT_EQ(zero_area, 4u);
  EXPECT_EQ(rows_covered, 4u);
  // Every cell still resolves to a stripe that actually owns it.
  for (uint32_t cell = 0; cell < 16; ++cell) {
    const uint32_t s = router.ShardOfCell(cell);
    EXPECT_FALSE(router.ZeroArea(s));
    EXPECT_GE(cell, router.CellBegin(s));
    EXPECT_LT(cell, router.CellEnd(s));
  }
}

TEST(ShardRouterTest, MapSmallerThanOneStripe) {
  // A one-row map under 4 shards: a single stripe owns everything.
  ShardRouter router = ShardRouter::Create(kRegion, 1, 4).value();
  const uint32_t owner = router.ShardOfCell(0);
  EXPECT_FALSE(router.ZeroArea(owner));
  EXPECT_EQ(router.CellBegin(owner), 0u);
  EXPECT_EQ(router.CellEnd(owner), 1u);
  for (uint32_t s = 0; s < 4; ++s) {
    if (s != owner) EXPECT_TRUE(router.ZeroArea(s));
  }
  EXPECT_EQ(router.ShardOfPoint(Point{5000, 5000}), owner);
}

TEST(ShardRouterTest, PointRoutingMatchesGridClamping) {
  ShardRouter router = ShardRouter::Create(kRegion, 100, 4).value();
  GridIndex grid = GridIndex::Create(kRegion, 100).value();
  const Point probes[] = {
      {0, 0},        {9999.9, 9999.9}, {5000, 2500},   {5000, 2499.99},
      {-50, -50},    {20000, 20000},   {5000, -1},     {5000, 10001},
      {2500, 7500},  {0, 5000},
  };
  for (const Point& p : probes) {
    EXPECT_EQ(router.ShardOfPoint(p), router.ShardOfCell(grid.CellIndexOf(p)))
        << "(" << p.x << ", " << p.y << ")";
  }
  // Out-of-region points clamp like the grid: far below -> bottom stripe,
  // far above -> top stripe.
  EXPECT_EQ(router.ShardOfPoint(Point{5000, -1e9}), 0u);
  EXPECT_EQ(router.ShardOfPoint(Point{5000, 1e9}), 3u);
}

}  // namespace
}  // namespace scuba
