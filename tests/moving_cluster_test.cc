#include "cluster/moving_cluster.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, double speed = 10.0,
                   NodeId dest = 1, Timestamp t = 0) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = t;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = Point{1000, 0};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 40, double h = 40,
                double speed = 10.0, NodeId dest = 1, Timestamp t = 0) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = t;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = Point{1000, 0};
  u.range_width = w;
  u.range_height = h;
  return u;
}

TEST(MovingClusterTest, FromObjectSingleton) {
  MovingCluster c = MovingCluster::FromObject(3, Obj(9, {10, 20}, 12.0, 4));
  EXPECT_EQ(c.cid(), 3u);
  EXPECT_EQ(c.centroid(), (Point{10, 20}));
  EXPECT_EQ(c.radius(), 0.0);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.object_count(), 1u);
  EXPECT_EQ(c.query_count(), 0u);
  EXPECT_FALSE(c.HasMixedKinds());
  EXPECT_DOUBLE_EQ(c.average_speed(), 12.0);
  EXPECT_EQ(c.dest_node(), 4u);
  EXPECT_EQ(c.query_reach(), 0.0);
}

TEST(MovingClusterTest, FromQuerySingletonHasReach) {
  MovingCluster c = MovingCluster::FromQuery(1, Qry(2, {0, 0}, 60, 80));
  EXPECT_EQ(c.query_count(), 1u);
  EXPECT_DOUBLE_EQ(c.query_reach(), std::hypot(30.0, 40.0));
  EXPECT_DOUBLE_EQ(c.JoinBounds().radius, std::hypot(30.0, 40.0));
}

TEST(MovingClusterTest, AbsorbUpdatesCentroidToMean) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {10, 0}));
  EXPECT_NEAR(c.centroid().x, 5.0, 1e-9);
  EXPECT_NEAR(c.centroid().y, 0.0, 1e-9);
  c.AbsorbObject(Obj(3, {2, 9}));
  EXPECT_NEAR(c.centroid().x, 4.0, 1e-9);
  EXPECT_NEAR(c.centroid().y, 3.0, 1e-9);
  EXPECT_EQ(c.size(), 3u);
}

TEST(MovingClusterTest, MemberPositionsReconstructExactly) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {10, 0}));
  c.AbsorbQuery(Qry(7, {5, 5}));
  const ClusterMember* m1 = c.FindMember({EntityKind::kObject, 1});
  const ClusterMember* m2 = c.FindMember({EntityKind::kObject, 2});
  const ClusterMember* m7 = c.FindMember({EntityKind::kQuery, 7});
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(m2, nullptr);
  ASSERT_NE(m7, nullptr);
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*m1), {0, 0}, 1e-9));
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*m2), {10, 0}, 1e-9));
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*m7), {5, 5}, 1e-9));
}

TEST(MovingClusterTest, RadiusCoversAllMembers) {
  Rng rng(5);
  MovingCluster c = MovingCluster::FromObject(0, Obj(0, {50, 50}));
  for (uint32_t i = 1; i < 50; ++i) {
    Point p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    c.AbsorbObject(Obj(i, p));
    for (const ClusterMember& m : c.members()) {
      EXPECT_LE(Distance(c.centroid(), c.MemberPosition(m)),
                c.radius() + 1e-6);
    }
  }
  // Tightening may shrink the radius but must still cover everyone.
  double before = c.radius();
  c.RecomputeTightBounds();
  EXPECT_LE(c.radius(), before + 1e-9);
  for (const ClusterMember& m : c.members()) {
    EXPECT_LE(Distance(c.centroid(), c.MemberPosition(m)), c.radius() + 1e-9);
  }
}

TEST(MovingClusterTest, AverageSpeedTracksMembers) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}, 10.0));
  c.AbsorbObject(Obj(2, {1, 0}, 20.0));
  EXPECT_DOUBLE_EQ(c.average_speed(), 15.0);
  ASSERT_TRUE(c.UpdateObjectMember(Obj(2, {1, 0}, 30.0)).ok());
  EXPECT_DOUBLE_EQ(c.average_speed(), 20.0);
  ASSERT_TRUE(c.RemoveMember({EntityKind::kObject, 2}).ok());
  EXPECT_DOUBLE_EQ(c.average_speed(), 10.0);
}

TEST(MovingClusterTest, SatisfiesJoinConditions) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}, 10.0, 4));
  // Same destination, close, similar speed.
  EXPECT_TRUE(c.SatisfiesJoinConditions({50, 0}, 12.0, 4, 100.0, 5.0));
  // Wrong destination.
  EXPECT_FALSE(c.SatisfiesJoinConditions({50, 0}, 12.0, 5, 100.0, 5.0));
  // Too far.
  EXPECT_FALSE(c.SatisfiesJoinConditions({101, 0}, 12.0, 4, 100.0, 5.0));
  // Boundary distance counts as inside.
  EXPECT_TRUE(c.SatisfiesJoinConditions({100, 0}, 12.0, 4, 100.0, 5.0));
  // Speed delta too large (both directions).
  EXPECT_FALSE(c.SatisfiesJoinConditions({50, 0}, 15.5, 4, 100.0, 5.0));
  EXPECT_FALSE(c.SatisfiesJoinConditions({50, 0}, 4.0, 4, 100.0, 5.0));
  // Speed boundary counts.
  EXPECT_TRUE(c.SatisfiesJoinConditions({50, 0}, 15.0, 4, 100.0, 5.0));
}

TEST(MovingClusterTest, UpdateMemberMovesCentroid) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {10, 0}));
  ASSERT_TRUE(c.UpdateObjectMember(Obj(1, {4, 0})).ok());
  EXPECT_NEAR(c.centroid().x, 7.0, 1e-9);
  const ClusterMember* m1 = c.FindMember({EntityKind::kObject, 1});
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*m1), {4, 0}, 1e-9));
}

TEST(MovingClusterTest, UpdateMissingMemberIsNotFound) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  EXPECT_TRUE(c.UpdateObjectMember(Obj(99, {1, 1})).IsNotFound());
  EXPECT_TRUE(c.UpdateQueryMember(Qry(99, {1, 1})).IsNotFound());
  EXPECT_TRUE(c.RemoveMember({EntityKind::kQuery, 99}).IsNotFound());
}

TEST(MovingClusterTest, RemoveMemberAdjustsState) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {10, 0}));
  c.AbsorbQuery(Qry(3, {5, 0}));
  EXPECT_TRUE(c.HasMixedKinds());
  ASSERT_TRUE(c.RemoveMember({EntityKind::kQuery, 3}).ok());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.query_count(), 0u);
  EXPECT_FALSE(c.HasMixedKinds());
  EXPECT_NEAR(c.centroid().x, 5.0, 1e-9);
  EXPECT_EQ(c.FindMember({EntityKind::kQuery, 3}), nullptr);
}

TEST(MovingClusterTest, TranslateMovesEveryone) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {10, 0}));
  Point before_centroid = c.centroid();
  c.Translate({5, -3});
  EXPECT_TRUE(ApproxEqual(c.centroid(),
                          before_centroid + Vec2{5, -3}, 1e-9));
  const ClusterMember* m1 = c.FindMember({EntityKind::kObject, 1});
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*m1), {5, -3}, 1e-9));
  EXPECT_EQ(c.translation(), (Vec2{5, -3}));
  // A fresh update after translation re-anchors exactly.
  ASSERT_TRUE(c.UpdateObjectMember(Obj(1, {100, 100})).ok());
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*c.FindMember({EntityKind::kObject, 1})),
                          {100, 100}, 1e-9));
}

TEST(MovingClusterTest, VelocityPointsAtDestination) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}, 10.0));
  // dest_position is (1000, 0): velocity is +x at average speed.
  Vec2 v = c.Velocity();
  EXPECT_NEAR(v.x, 10.0, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
}

TEST(MovingClusterTest, ExpiryTime) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}, 100.0));
  // 1000 units at speed 100 -> 10 ticks (+1 rounding).
  Timestamp exp = c.ComputeExpiryTime(5);
  EXPECT_EQ(exp, 16);
}

TEST(MovingClusterTest, ExpiryWithZeroSpeedIsFarFuture) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}, 0.0));
  EXPECT_GT(c.ComputeExpiryTime(0), 1000000);
}

TEST(MovingClusterTest, ShedPositionsInsideNucleus) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {2, 0}));
  c.AbsorbObject(Obj(3, {80, 0}));  // far member stays exact
  Point centroid = c.centroid();
  size_t shed = c.ShedPositions(30.0);
  EXPECT_EQ(shed, 2u);
  const ClusterMember* m1 = c.FindMember({EntityKind::kObject, 1});
  const ClusterMember* m3 = c.FindMember({EntityKind::kObject, 3});
  EXPECT_TRUE(m1->shed);
  EXPECT_EQ(m1->approx_radius, 30.0);
  EXPECT_FALSE(m3->shed);
  // Shed member reconstructs at the shedding-time centroid.
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*m1), centroid, 1e-9));
  // Re-shedding is a no-op for already-shed members.
  EXPECT_EQ(c.ShedPositions(30.0), 0u);
}

TEST(MovingClusterTest, ShedZeroRadiusIsNoop) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  EXPECT_EQ(c.ShedPositions(0.0), 0u);
  EXPECT_FALSE(c.members()[0].shed);
}

TEST(MovingClusterTest, ShedMemberIfInNucleus) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {50, 0}));
  // Member 2 is ~25 from the centroid (25, 0): nucleus 10 misses it.
  EXPECT_FALSE(c.ShedMemberIfInNucleus({EntityKind::kObject, 2}, 10.0));
  EXPECT_TRUE(c.ShedMemberIfInNucleus({EntityKind::kObject, 2}, 30.0));
  EXPECT_TRUE(c.FindMember({EntityKind::kObject, 2})->shed);
  // Missing member: false.
  EXPECT_FALSE(c.ShedMemberIfInNucleus({EntityKind::kObject, 77}, 30.0));
}

TEST(MovingClusterTest, UpdateUnshedsMember) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {2, 0}));
  c.ShedPositions(10.0);
  ASSERT_TRUE(c.FindMember({EntityKind::kObject, 2})->shed);
  ASSERT_TRUE(c.UpdateObjectMember(Obj(2, {3, 0})).ok());
  const ClusterMember* m = c.FindMember({EntityKind::kObject, 2});
  EXPECT_FALSE(m->shed);
  EXPECT_EQ(m->approx_radius, 0.0);
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*m), {3, 0}, 1e-9));
}

TEST(MovingClusterTest, ShedQueryKeepsReach) {
  // Shed queries are approximated at the nucleus center with their original
  // extent, so shedding does not inflate the query reach.
  MovingCluster c = MovingCluster::FromQuery(0, Qry(1, {0, 0}, 40, 40));
  double base_reach = c.query_reach();
  c.ShedPositions(25.0);
  EXPECT_DOUBLE_EQ(c.query_reach(), base_reach);
  c.RecomputeTightBounds();
  EXPECT_DOUBLE_EQ(c.query_reach(), base_reach);
}

TEST(MovingClusterTest, NucleusLifecycle) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {10, 0}));
  c.AbsorbObject(Obj(2, {30, 0}));
  EXPECT_FALSE(c.has_nucleus());
  ASSERT_GT(c.ShedPositions(25.0), 0u);
  EXPECT_TRUE(c.has_nucleus());
  EXPECT_DOUBLE_EQ(c.nucleus_radius(), 25.0);
  // The nucleus was anchored at the shedding-time centroid (20, 0).
  EXPECT_TRUE(ApproxEqual(c.NucleusCenter(), {20, 0}, 1e-9));
  // All shed members share the nucleus center.
  for (const ClusterMember& m : c.members()) {
    EXPECT_TRUE(m.shed);
    EXPECT_TRUE(ApproxEqual(c.MemberPosition(m), c.NucleusCenter(), 1e-9));
  }
  // Fresh updates unshed everyone; tightening then clears the nucleus.
  ASSERT_TRUE(c.UpdateObjectMember(Obj(1, {10, 0})).ok());
  ASSERT_TRUE(c.UpdateObjectMember(Obj(2, {30, 0})).ok());
  c.RecomputeTightBounds();
  EXPECT_FALSE(c.has_nucleus());
  EXPECT_EQ(c.nucleus_radius(), 0.0);
}

TEST(MovingClusterTest, NucleusReanchorsToCentroidOnTighten) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {10, 0}));
  c.ShedPositions(100.0);  // both shed, nucleus at (5, 0)
  c.AbsorbObject(Obj(3, {45, 0}));  // exact member pulls the centroid
  c.RecomputeTightBounds();
  // Centroid fixed point = mean of exact members = (45, 0); the nucleus and
  // its shed members follow.
  EXPECT_TRUE(ApproxEqual(c.centroid(), {45, 0}, 1e-9));
  EXPECT_TRUE(ApproxEqual(c.NucleusCenter(), {45, 0}, 1e-9));
  for (const ClusterMember& m : c.members()) {
    if (m.shed) {
      EXPECT_TRUE(ApproxEqual(c.MemberPosition(m), {45, 0}, 1e-9));
    }
  }
}

TEST(MovingClusterTest, MemoryShrinksWhenShedding) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  for (uint32_t i = 2; i < 20; ++i) {
    c.AbsorbObject(Obj(i, {static_cast<double>(i % 5), 0}));
  }
  size_t before = c.EstimateMemoryUsage();
  ASSERT_GT(c.ShedPositions(50.0), 0u);
  EXPECT_LT(c.EstimateMemoryUsage(), before);
}

TEST(MovingClusterTest, TranslationCarriesShedMembers) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.ShedPositions(10.0);
  Point before = c.MemberPosition(c.members()[0]);
  c.Translate({7, 7});
  Point after = c.MemberPosition(c.members()[0]);
  EXPECT_TRUE(ApproxEqual(after, before + Vec2{7, 7}, 1e-9));
}

TEST(MovingClusterTest, MemberIndexSurvivesSwapAndPop) {
  // RemoveMember fills the hole with the tail member; every other member's
  // index changes under it. The id->index map must track those moves so
  // lookups stay O(1)-correct through arbitrary churn.
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  for (uint32_t i = 2; i <= 12; ++i) {
    c.AbsorbObject(Obj(i, {static_cast<double>(i), 0}));
  }
  // Remove from the middle, front-of-tail, and head of the member vector.
  for (uint32_t victim : {6u, 12u, 1u, 3u}) {
    ASSERT_TRUE(c.RemoveMember({EntityKind::kObject, victim}).ok());
    EXPECT_EQ(c.FindMember({EntityKind::kObject, victim}), nullptr);
    for (const ClusterMember& m : c.members()) {
      const ClusterMember* found = c.FindMember(m.Ref());
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found, &m) << "index points at the wrong slot for id " << m.id;
    }
  }
  // Updates must land on the member that was swapped into a new slot.
  ASSERT_TRUE(c.UpdateObjectMember(Obj(11, {99, 0})).ok());
  const ClusterMember* moved = c.FindMember({EntityKind::kObject, 11});
  ASSERT_NE(moved, nullptr);
  EXPECT_TRUE(ApproxEqual(c.MemberPosition(*moved), Point{99, 0}, 1e-9));
}

TEST(MovingClusterTest, MemoryEstimateIncludesMemberIndex) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  for (uint32_t i = 2; i <= 64; ++i) {
    c.AbsorbObject(Obj(i, {static_cast<double>(i % 7), 0}));
  }
  // The estimate must account for the id->index side map, not just the
  // member vector.
  size_t vector_only =
      sizeof(MovingCluster) + c.members().capacity() * sizeof(ClusterMember);
  EXPECT_GT(c.EstimateMemoryUsage(), vector_only);
}

// Property: random absorb/update/remove sequences keep the centroid equal to
// the mean of reconstructed member positions and the radius covering.
class ClusterInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterInvariantTest, CentroidIsMeanAndRadiusCovers) {
  Rng rng(GetParam());
  MovingCluster c = MovingCluster::FromObject(0, Obj(0, {0, 0}));
  uint32_t next_id = 1;
  std::vector<uint32_t> live{0};
  for (int step = 0; step < 300; ++step) {
    double action = rng.NextDouble();
    if (action < 0.5 || live.size() <= 1) {
      Point p{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)};
      c.AbsorbObject(Obj(next_id, p, rng.NextDouble(5, 15)));
      live.push_back(next_id++);
    } else if (action < 0.8) {
      uint32_t id = live[rng.NextBounded(live.size())];
      Point p{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)};
      ASSERT_TRUE(c.UpdateObjectMember(Obj(id, p)).ok());
    } else {
      size_t idx = rng.NextBounded(live.size());
      ASSERT_TRUE(c.RemoveMember({EntityKind::kObject, live[idx]}).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    }
    // Invariants.
    Point sum{0, 0};
    for (const ClusterMember& m : c.members()) {
      Point p = c.MemberPosition(m);
      sum.x += p.x;
      sum.y += p.y;
      EXPECT_LE(Distance(c.centroid(), p), c.radius() + 1e-6);
    }
    double n = static_cast<double>(c.size());
    EXPECT_NEAR(c.centroid().x, sum.x / n, 1e-6);
    EXPECT_NEAR(c.centroid().y, sum.y / n, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace scuba
