// Bit-exact textual digest of all cluster/grid state reachable from a
// ScubaEngine or ShardedEngine, shared by the determinism tests (parallel
// ingest, fault injection, shard matrix). Two engines with equal digests are
// indistinguishable to every later round: every cluster field, member order
// included, plus the grid registration, serialized with hex-float
// formatting. The sharded digest reads each cluster's cells from its owning
// shard's grid, so equal digests prove the mirror registration matches the
// single grid cell for cell.

#ifndef SCUBA_TESTS_STATE_DIGEST_H_
#define SCUBA_TESTS_STATE_DIGEST_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scuba_engine.h"
#include "shard/sharded_engine.h"

namespace scuba {

inline void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a,", v);  // hex float: bit-exact
  *out += buf;
}

inline void AppendClusterDigest(std::string* out, const MovingCluster* c,
                                const std::vector<uint32_t>* cells);

inline std::string StateDigest(const ScubaEngine& engine) {
  std::string d;
  const ClusterStore& store = engine.store();
  EXPECT_TRUE(store.ValidateConsistency().ok());
  for (ClusterId cid : store.SortedClusterIds()) {
    AppendClusterDigest(&d, store.GetCluster(cid),
                        engine.cluster_grid().CellsOf(cid));
  }
  return d;
}

/// Same digest over the shard set: clusters in global cid order, cells taken
/// from the owning shard's grid (every registering shard holds the full cell
/// list, so any would do — the owner always registers its own clusters).
inline std::string StateDigest(const ShardedEngine& engine) {
  std::string d;
  for (uint32_t s = 0; s < engine.shard_count(); ++s) {
    EXPECT_TRUE(engine.shard(s).store.ValidateConsistency().ok());
  }
  for (ClusterId cid : engine.GlobalSortedClusterIds()) {
    const MovingCluster* cluster = nullptr;
    const std::vector<uint32_t>* cells = nullptr;
    for (uint32_t s = 0; s < engine.shard_count(); ++s) {
      cluster = engine.shard(s).store.GetCluster(cid);
      if (cluster != nullptr) {
        cells = engine.shard(s).grid.CellsOf(cid);
        break;
      }
    }
    AppendClusterDigest(&d, cluster, cells);
  }
  return d;
}

inline void AppendClusterDigest(std::string* out, const MovingCluster* c,
                                const std::vector<uint32_t>* cells) {
  std::string& d = *out;
  {
    const ClusterId cid = c->cid();
    d += "c" + std::to_string(cid) + ":";
    AppendDouble(&d, c->centroid().x);
    AppendDouble(&d, c->centroid().y);
    AppendDouble(&d, c->radius());
    AppendDouble(&d, c->query_reach());
    AppendDouble(&d, c->average_speed());
    AppendDouble(&d, c->translation().x);
    AppendDouble(&d, c->translation().y);
    AppendDouble(&d, c->registered_bounds().center.x);
    AppendDouble(&d, c->registered_bounds().center.y);
    AppendDouble(&d, c->registered_bounds().radius);
    d += std::to_string(c->dest_node()) + ",";
    d += std::to_string(c->object_count()) + "/" +
         std::to_string(c->query_count()) + ",";
    if (c->has_nucleus()) {
      d += "n";
      AppendDouble(&d, c->NucleusCenter().x);
      AppendDouble(&d, c->NucleusCenter().y);
      AppendDouble(&d, c->nucleus_radius());
    }
    for (const ClusterMember& m : c->members()) {  // order matters
      d += (m.kind == EntityKind::kObject ? "o" : "q") + std::to_string(m.id);
      AppendDouble(&d, m.rel.r);
      AppendDouble(&d, m.rel.theta);
      AppendDouble(&d, m.anchor.x);
      AppendDouble(&d, m.anchor.y);
      AppendDouble(&d, m.speed);
      AppendDouble(&d, m.range_width);
      AppendDouble(&d, m.range_height);
      d += std::to_string(m.attrs) + "," + std::to_string(m.update_time) +
           (m.shed ? ",s" : ",-");
      AppendDouble(&d, m.approx_radius);
    }
    EXPECT_NE(cells, nullptr);
    std::vector<uint32_t> sorted = *cells;
    std::sort(sorted.begin(), sorted.end());
    d += "g";
    for (uint32_t cell : sorted) d += std::to_string(cell) + ".";
    d += ";";
  }
}

}  // namespace scuba

#endif  // SCUBA_TESTS_STATE_DIGEST_H_
