// Bit-exact textual digest of all cluster/grid state reachable from a
// ScubaEngine, shared by the determinism tests (parallel ingest, fault
// injection). Two engines with equal digests are indistinguishable to every
// later round: every cluster field, member order included, plus the grid
// registration, serialized with hex-float formatting.

#ifndef SCUBA_TESTS_STATE_DIGEST_H_
#define SCUBA_TESTS_STATE_DIGEST_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scuba_engine.h"

namespace scuba {

inline void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a,", v);  // hex float: bit-exact
  *out += buf;
}

inline std::string StateDigest(const ScubaEngine& engine) {
  std::string d;
  const ClusterStore& store = engine.store();
  EXPECT_TRUE(store.ValidateConsistency().ok());
  for (ClusterId cid : store.SortedClusterIds()) {
    const MovingCluster* c = store.GetCluster(cid);
    d += "c" + std::to_string(cid) + ":";
    AppendDouble(&d, c->centroid().x);
    AppendDouble(&d, c->centroid().y);
    AppendDouble(&d, c->radius());
    AppendDouble(&d, c->query_reach());
    AppendDouble(&d, c->average_speed());
    AppendDouble(&d, c->translation().x);
    AppendDouble(&d, c->translation().y);
    AppendDouble(&d, c->registered_bounds().center.x);
    AppendDouble(&d, c->registered_bounds().center.y);
    AppendDouble(&d, c->registered_bounds().radius);
    d += std::to_string(c->dest_node()) + ",";
    d += std::to_string(c->object_count()) + "/" +
         std::to_string(c->query_count()) + ",";
    if (c->has_nucleus()) {
      d += "n";
      AppendDouble(&d, c->NucleusCenter().x);
      AppendDouble(&d, c->NucleusCenter().y);
      AppendDouble(&d, c->nucleus_radius());
    }
    for (const ClusterMember& m : c->members()) {  // order matters
      d += (m.kind == EntityKind::kObject ? "o" : "q") + std::to_string(m.id);
      AppendDouble(&d, m.rel.r);
      AppendDouble(&d, m.rel.theta);
      AppendDouble(&d, m.anchor.x);
      AppendDouble(&d, m.anchor.y);
      AppendDouble(&d, m.speed);
      AppendDouble(&d, m.range_width);
      AppendDouble(&d, m.range_height);
      d += std::to_string(m.attrs) + "," + std::to_string(m.update_time) +
           (m.shed ? ",s" : ",-");
      AppendDouble(&d, m.approx_radius);
    }
    const std::vector<uint32_t>* cells = engine.cluster_grid().CellsOf(cid);
    EXPECT_NE(cells, nullptr);
    std::vector<uint32_t> sorted = *cells;
    std::sort(sorted.begin(), sorted.end());
    d += "g";
    for (uint32_t cell : sorted) d += std::to_string(cell) + ".";
    d += ";";
  }
  return d;
}

}  // namespace scuba

#endif  // SCUBA_TESTS_STATE_DIGEST_H_
