// End-to-end correctness: SCUBA with no load shedding and a 100% update rate
// must produce exactly the same answers as the naive nested-loop oracle and
// the regular grid-based operator on identical traces (DESIGN.md §5).

#include <gtest/gtest.h>

#include "baseline/grid_join_engine.h"
#include "baseline/naive_join_engine.h"
#include "core/scuba_engine.h"
#include "eval/accuracy.h"
#include "eval/experiment.h"
#include "stream/pipeline.h"

namespace scuba {
namespace {

ExperimentConfig SmallConfig(uint64_t seed, uint32_t skew = 10) {
  ExperimentConfig config;
  config.city.rows = 11;
  config.city.cols = 11;
  config.city.seed = seed;
  config.workload.num_objects = 150;
  config.workload.num_queries = 150;
  config.workload.skew = skew;
  config.workload.seed = seed;
  config.ticks = 8;
  config.delta = 2;
  return config;
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, ScubaMatchesOraclesExactly) {
  ExperimentConfig config = SmallConfig(GetParam());
  Result<ExperimentData> data = BuildExperimentData(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  ScubaOptions sopt;
  sopt.region = data->region;
  Result<std::unique_ptr<ScubaEngine>> scuba_engine = ScubaEngine::Create(sopt);
  ASSERT_TRUE(scuba_engine.ok());

  GridJoinOptions gopt;
  gopt.region = data->region;
  Result<std::unique_ptr<GridJoinEngine>> grid_engine =
      GridJoinEngine::Create(gopt);
  ASSERT_TRUE(grid_engine.ok());

  NaiveJoinEngine naive;

  // Replay the identical trace into all three engines, comparing results at
  // every evaluation round.
  std::vector<ResultSet> scuba_rounds;
  std::vector<ResultSet> grid_rounds;
  std::vector<ResultSet> naive_rounds;
  auto collect = [](std::vector<ResultSet>* out) {
    return [out](Timestamp, const ResultSet& r) { out->push_back(r); };
  };
  ASSERT_TRUE(ReplayTrace(data->trace, scuba_engine->get(), config.delta,
                          collect(&scuba_rounds))
                  .ok());
  ASSERT_TRUE(ReplayTrace(data->trace, grid_engine->get(), config.delta,
                          collect(&grid_rounds))
                  .ok());
  ASSERT_TRUE(
      ReplayTrace(data->trace, &naive, config.delta, collect(&naive_rounds))
          .ok());

  ASSERT_EQ(scuba_rounds.size(), naive_rounds.size());
  ASSERT_EQ(grid_rounds.size(), naive_rounds.size());
  size_t total_truth = 0;
  for (size_t i = 0; i < naive_rounds.size(); ++i) {
    EXPECT_EQ(grid_rounds[i], naive_rounds[i]) << "grid diverged at round " << i;
    AccuracyReport rep = CompareResults(naive_rounds[i], scuba_rounds[i]);
    EXPECT_EQ(rep.false_positives, 0u) << "SCUBA FP at round " << i;
    EXPECT_EQ(rep.false_negatives, 0u) << "SCUBA FN at round " << i;
    total_truth += naive_rounds[i].size();
  }
  // The workload must actually exercise the join (queries catch objects).
  EXPECT_GT(total_truth, 0u);
  // And clustering must actually aggregate (far fewer clusters than
  // entities), otherwise the test is vacuous.
  EXPECT_LT((*scuba_engine)->ClusterCount(), 300u / 2);
  EXPECT_TRUE((*scuba_engine)->store().ValidateConsistency().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1, 7, 13, 29, 41));

TEST(EquivalenceSkewTest, HoldsAcrossSkewLevels) {
  for (uint32_t skew : {1u, 5u, 50u}) {
    ExperimentConfig config = SmallConfig(99, skew);
    Result<ExperimentData> data = BuildExperimentData(config);
    ASSERT_TRUE(data.ok());

    ScubaOptions sopt;
    sopt.region = data->region;
    Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(sopt);
    ASSERT_TRUE(engine.ok());
    NaiveJoinEngine naive;

    Result<EngineRunResult> scuba_run =
        RunOnTrace(engine->get(), data->trace, config.delta);
    Result<EngineRunResult> naive_run =
        RunOnTrace(&naive, data->trace, config.delta);
    ASSERT_TRUE(scuba_run.ok() && naive_run.ok());
    EXPECT_EQ(scuba_run->final_results, naive_run->final_results)
        << "skew " << skew;
  }
}

TEST(EquivalenceUpdateRateTest, PartialUpdatesStayConsistentWithLastSeen) {
  // With a 40% update rate SCUBA approximates stale members by cluster
  // motion; it must still track the oracle's *last-seen* semantics closely.
  // We assert bounded degradation rather than equality: recall >= 60% overall.
  ExperimentConfig config = SmallConfig(7);
  config.update_fraction = 0.4;
  config.ticks = 8;
  Result<ExperimentData> data = BuildExperimentData(config);
  ASSERT_TRUE(data.ok());

  ScubaOptions sopt;
  sopt.region = data->region;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(sopt);
  ASSERT_TRUE(engine.ok());
  NaiveJoinEngine naive;

  std::vector<ResultSet> scuba_rounds;
  std::vector<ResultSet> naive_rounds;
  ASSERT_TRUE(ReplayTrace(data->trace, engine->get(), config.delta,
                          [&](Timestamp, const ResultSet& r) {
                            scuba_rounds.push_back(r);
                          })
                  .ok());
  ASSERT_TRUE(ReplayTrace(data->trace, &naive, config.delta,
                          [&](Timestamp, const ResultSet& r) {
                            naive_rounds.push_back(r);
                          })
                  .ok());
  AccuracyAccumulator acc;
  for (size_t i = 0; i < naive_rounds.size(); ++i) {
    acc.Add(CompareResults(naive_rounds[i], scuba_rounds[i]));
  }
  ASSERT_GT(acc.total().truth_size, 0u);
  EXPECT_GE(acc.total().Recall(), 0.6);
}

TEST(EquivalenceTopologyTest, RadialCityStaysExact) {
  // The exactness guarantee must not be a Manhattan-grid artefact.
  RadialCityOptions city;
  city.rings = 5;
  city.spokes = 10;
  city.ring_spacing = 400.0;
  city.center = Point{3000, 3000};
  Result<RoadNetwork> net = GenerateRadialCity(city);
  ASSERT_TRUE(net.ok());

  WorkloadOptions workload;
  workload.num_objects = 150;
  workload.num_queries = 150;
  workload.skew = 15;
  workload.seed = 88;
  Result<ObjectSimulator> sim = GenerateWorkload(&*net, workload);
  ASSERT_TRUE(sim.ok());
  ObjectSimulator simulator = std::move(sim).value();
  Trace trace = RecordTrace(&simulator, 8);

  ScubaOptions sopt;
  sopt.region = DataRegion(*net);
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(sopt);
  ASSERT_TRUE(engine.ok());
  NaiveJoinEngine naive;
  Result<EngineRunResult> a = RunOnTrace(engine->get(), trace, 2);
  Result<EngineRunResult> b = RunOnTrace(&naive, trace, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->final_results, b->final_results);
  EXPECT_GT(b->stats.total_results, 0u);
}

TEST(ExperimentHarnessTest, PerRoundHistogramsAreFilled) {
  ExperimentConfig config = SmallConfig(3);
  Result<ExperimentData> data = BuildExperimentData(config);
  ASSERT_TRUE(data.ok());
  NaiveJoinEngine naive;
  Result<EngineRunResult> run = RunOnTrace(&naive, data->trace, config.delta);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->join_ms_per_round.count(), 4);
  EXPECT_EQ(run->results_per_round.count(), 4);
  EXPECT_GE(run->join_ms_per_round.Percentile(50), 0.0);
}

TEST(ExperimentHarnessTest, BuildValidatesConfig) {
  ExperimentConfig config = SmallConfig(1);
  config.ticks = 0;
  EXPECT_TRUE(BuildExperimentData(config).status().IsInvalidArgument());
  config = SmallConfig(1);
  config.delta = 0;
  EXPECT_TRUE(BuildExperimentData(config).status().IsInvalidArgument());
  config = SmallConfig(1);
  config.city.rows = 0;
  EXPECT_TRUE(BuildExperimentData(config).status().IsInvalidArgument());
}

TEST(ExperimentHarnessTest, RunOnTraceCollectsStats) {
  ExperimentConfig config = SmallConfig(3);
  Result<ExperimentData> data = BuildExperimentData(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->trace.TickCount(), 8u);
  EXPECT_TRUE(data->region.Contains(data->network.BoundingBox()));

  NaiveJoinEngine naive;
  Result<EngineRunResult> run = RunOnTrace(&naive, data->trace, config.delta);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.evaluations, 4u);
  EXPECT_GT(run->peak_memory_bytes, 0u);
  EXPECT_GT(run->wall_seconds, 0.0);
  EXPECT_TRUE(RunOnTrace(nullptr, data->trace, 2).status().IsInvalidArgument());
}

TEST(ScalabilityShapeTest, ScubaDoesFewerComparisonsWhenClusterable) {
  // The paper's headline (Fig. 10): with high skew, cluster pre-filtering
  // slashes the individual object x query comparisons versus the regular
  // grid operator.
  ExperimentConfig config = SmallConfig(11, /*skew=*/50);
  config.workload.num_objects = 300;
  config.workload.num_queries = 300;
  Result<ExperimentData> data = BuildExperimentData(config);
  ASSERT_TRUE(data.ok());

  ScubaOptions sopt;
  sopt.region = data->region;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(sopt);
  ASSERT_TRUE(engine.ok());
  GridJoinOptions gopt;
  gopt.region = data->region;
  Result<std::unique_ptr<GridJoinEngine>> grid = GridJoinEngine::Create(gopt);
  ASSERT_TRUE(grid.ok());

  Result<EngineRunResult> scuba_run =
      RunOnTrace(engine->get(), data->trace, config.delta);
  Result<EngineRunResult> grid_run =
      RunOnTrace(grid->get(), data->trace, config.delta);
  ASSERT_TRUE(scuba_run.ok() && grid_run.ok());
  // Cluster pre-filtering slashes individual comparisons versus the
  // unindexed nested loop (|O| x |Q| per round).
  uint64_t naive_comparisons = 300ull * 300ull * (data->trace.TickCount() / 2);
  EXPECT_LT((*engine)->StatsSnapshot().eval.comparisons, naive_comparisons / 4);
  // The join-between filter actually prunes cluster pairs.
  EXPECT_LT((*engine)->StatsSnapshot().eval.cluster_pairs_overlapping,
            (*engine)->StatsSnapshot().eval.cluster_pairs_tested);
  // One grid entry per cluster beats one entry per entity on memory.
  EXPECT_LT((*engine)->cluster_grid().size(),
            (*grid)->object_grid().size() + (*grid)->query_grid().size());
}

}  // namespace
}  // namespace scuba
