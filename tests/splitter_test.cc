#include "cluster/splitter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/scuba_engine.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, double speed = 10.0, NodeId dest = 1) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  u.attrs = kAttrRedCar;
  return u;
}

QueryUpdate Qry(QueryId qid, Point p) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{9000, 9000};
  u.range_width = 40;
  u.range_height = 60;
  return u;
}

TEST(SplitterTest, ShouldSplitThresholds) {
  MovingCluster single = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  EXPECT_FALSE(ShouldSplit(single, 10.0));  // one member: never
  MovingCluster wide = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  wide.AbsorbObject(Obj(2, {100, 0}));
  EXPECT_TRUE(ShouldSplit(wide, 10.0));
  EXPECT_FALSE(ShouldSplit(wide, 60.0));  // radius 50 <= 60
}

TEST(SplitterTest, RejectsTooSmallOrColocated) {
  MovingCluster single = MovingCluster::FromObject(0, Obj(1, {5, 5}));
  EXPECT_TRUE(SplitCluster(single, 1, 2).status().IsFailedPrecondition());
  MovingCluster colocated = MovingCluster::FromObject(0, Obj(1, {5, 5}));
  colocated.AbsorbObject(Obj(2, {5, 5}));
  EXPECT_TRUE(SplitCluster(colocated, 1, 2).status().IsFailedPrecondition());
}

TEST(SplitterTest, SeparatesTwoBlobs) {
  // Two blobs 400 apart inside one (deteriorated) cluster.
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {10, 0}));
  c.AbsorbQuery(Qry(3, {5, 5}));
  c.AbsorbObject(Obj(4, {400, 0}));
  c.AbsorbObject(Obj(5, {410, 5}));
  Result<SplitResult> split = SplitCluster(c, 10, 11);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  const MovingCluster& l = split->left;
  const MovingCluster& r = split->right;
  EXPECT_EQ(l.cid() + r.cid(), 21u);
  EXPECT_EQ(l.size() + r.size(), 5u);
  // Each blob landed whole in one half.
  const MovingCluster& near_blob = l.FindMember({EntityKind::kObject, 1}) ? l : r;
  const MovingCluster& far_blob = (&near_blob == &l) ? r : l;
  EXPECT_NE(near_blob.FindMember({EntityKind::kObject, 2}), nullptr);
  EXPECT_NE(near_blob.FindMember({EntityKind::kQuery, 3}), nullptr);
  EXPECT_NE(far_blob.FindMember({EntityKind::kObject, 4}), nullptr);
  EXPECT_NE(far_blob.FindMember({EntityKind::kObject, 5}), nullptr);
  // Both halves are far tighter than the parent.
  EXPECT_LT(l.radius(), 50.0);
  EXPECT_LT(r.radius(), 50.0);
  EXPECT_GT(c.radius(), 150.0);
}

TEST(SplitterTest, PreservesMemberState) {
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}, 12.0, 4));
  c.AbsorbQuery(Qry(9, {300, 0}));
  Result<SplitResult> split = SplitCluster(c, 1, 2);
  ASSERT_TRUE(split.ok());
  const MovingCluster& with_query =
      split->left.query_count() > 0 ? split->left : split->right;
  const ClusterMember* q = with_query.FindMember({EntityKind::kQuery, 9});
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->range_width, 40);
  EXPECT_EQ(q->range_height, 60);
  const MovingCluster& with_obj =
      &with_query == &split->left ? split->right : split->left;
  const ClusterMember* o = with_obj.FindMember({EntityKind::kObject, 1});
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->attrs, kAttrRedCar);
  EXPECT_EQ(o->speed, 12.0);
  EXPECT_EQ(with_obj.dest_node(), 4u);
  // Positions survive the rebuild exactly.
  EXPECT_TRUE(ApproxEqual(with_obj.MemberPosition(*o), {0, 0}, 1e-9));
}

TEST(SplitterTest, ShedMembersComeOutUnshed) {
  // Centroid lands at ~(47, 0): members 1 and 2 fall inside the 50-unit
  // nucleus and shed; member 3 stays exact, so a split point remains.
  MovingCluster c = MovingCluster::FromObject(0, Obj(1, {0, 0}));
  c.AbsorbObject(Obj(2, {2, 0}));
  c.AbsorbObject(Obj(3, {140, 0}));
  ASSERT_GT(c.ShedPositions(50.0), 0u);
  Result<SplitResult> split = SplitCluster(c, 1, 2);
  ASSERT_TRUE(split.ok());
  for (const MovingCluster* half : {&split->left, &split->right}) {
    for (const ClusterMember& m : half->members()) {
      EXPECT_FALSE(m.shed);
    }
  }
}

// Property: splitting never loses or duplicates members and always tightens.
class SplitPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SplitPropertyTest, PartitionIsLosslessAndTighter) {
  Rng rng(GetParam());
  MovingCluster c = MovingCluster::FromObject(0, Obj(0, {0, 0}));
  for (uint32_t i = 1; i < 60; ++i) {
    Point p{rng.NextDouble(0, 500), rng.NextDouble(0, 500)};
    c.AbsorbObject(Obj(i, p));
  }
  c.RecomputeTightBounds();
  Result<SplitResult> split = SplitCluster(c, 1, 2);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->left.size() + split->right.size(), 60u);
  for (uint32_t i = 0; i < 60; ++i) {
    EntityRef ref{EntityKind::kObject, i};
    bool in_left = split->left.FindMember(ref) != nullptr;
    bool in_right = split->right.FindMember(ref) != nullptr;
    EXPECT_TRUE(in_left != in_right) << "member " << i;
  }
  EXPECT_LE(split->left.radius(), c.radius() + 1e-9);
  EXPECT_LE(split->right.radius(), c.radius() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitPropertyTest, ::testing::Values(1, 2, 3));

TEST(EngineSplittingTest, EngineSplitsDeterioratedClusters) {
  ScubaOptions opt;
  opt.enable_cluster_splitting = true;
  opt.split_radius_factor = 0.5;  // split past 0.5 * theta_d = 50
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  ASSERT_TRUE(engine.ok());
  // Build one cluster, then stretch it by updating members apart (each stays
  // within theta_d of the drifting centroid so no departure occurs; final
  // member positions 50 / 160 / 222 give radius ~94 > 50).
  ASSERT_TRUE((*engine)->IngestObjectUpdate(Obj(1, {100, 100})).ok());
  ASSERT_TRUE((*engine)->IngestObjectUpdate(Obj(2, {160, 100})).ok());
  ASSERT_TRUE((*engine)->IngestObjectUpdate(Obj(3, {160, 100})).ok());
  ASSERT_TRUE((*engine)->IngestObjectUpdate(Obj(1, {50, 100})).ok());
  ASSERT_TRUE((*engine)->IngestObjectUpdate(Obj(3, {222, 100})).ok());
  const MovingCluster& before = (*engine)->store().clusters().begin()->second;
  ASSERT_EQ((*engine)->ClusterCount(), 1u);
  ASSERT_EQ(before.size(), 3u);

  ResultSet results;
  ASSERT_TRUE((*engine)->Evaluate(2, &results).ok());
  EXPECT_EQ((*engine)->StatsSnapshot().phase.clusters_split, 1u);
  EXPECT_EQ((*engine)->ClusterCount(), 2u);
  EXPECT_TRUE((*engine)->store().ValidateConsistency().ok());
  EXPECT_EQ((*engine)->cluster_grid().size(), 2u);
}

TEST(EngineSplittingTest, SplitIdsAreStable) {
  // Regression: the two replacement ids were once allocated by calling
  // store_.NextClusterId() twice inside SplitCluster's argument list, where
  // C++ leaves the evaluation order unspecified — left/right could swap ids
  // depending on the compiler. The ids are now taken in named locals, so the
  // left partition always receives the lower id.
  auto build = [] {
    ScubaOptions opt;
    opt.enable_cluster_splitting = true;
    opt.split_radius_factor = 0.5;
    std::unique_ptr<ScubaEngine> engine =
        std::move(ScubaEngine::Create(opt).value());
    EXPECT_TRUE(engine->IngestObjectUpdate(Obj(1, {100, 100})).ok());
    EXPECT_TRUE(engine->IngestObjectUpdate(Obj(2, {160, 100})).ok());
    EXPECT_TRUE(engine->IngestObjectUpdate(Obj(3, {160, 100})).ok());
    EXPECT_TRUE(engine->IngestObjectUpdate(Obj(1, {50, 100})).ok());
    EXPECT_TRUE(engine->IngestObjectUpdate(Obj(3, {222, 100})).ok());
    ResultSet results;
    EXPECT_TRUE(engine->Evaluate(2, &results).ok());
    return engine;
  };

  std::unique_ptr<ScubaEngine> engine = build();
  ASSERT_EQ(engine->StatsSnapshot().phase.clusters_split, 1u);
  // The original cluster had id 0; the split consumes ids 1 (left) and 2
  // (right) in that order.
  const std::vector<ClusterId> ids = engine->store().SortedClusterIds();
  ASSERT_EQ(ids, (std::vector<ClusterId>{1, 2}));
  const MovingCluster* left = engine->store().GetCluster(1);
  const MovingCluster* right = engine->store().GetCluster(2);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  // The id -> partition mapping is pinned, not merely the id set: a swapped
  // allocation order would pass a set-equality check but flip the
  // partitions. For this workload 2-means assigns the {160, 222} blob to the
  // left (lower-id) cluster and the lone x=50 member to the right.
  EXPECT_NE(left->FindMember({EntityKind::kObject, 2}), nullptr);
  EXPECT_NE(left->FindMember({EntityKind::kObject, 3}), nullptr);
  EXPECT_NE(right->FindMember({EntityKind::kObject, 1}), nullptr);
  EXPECT_GT(left->centroid().x, right->centroid().x);

  // And the whole outcome is reproducible run to run.
  std::unique_ptr<ScubaEngine> again = build();
  EXPECT_EQ(again->store().SortedClusterIds(), ids);
  EXPECT_EQ(again->store().GetCluster(1)->centroid(), left->centroid());
  EXPECT_EQ(again->store().GetCluster(2)->centroid(), right->centroid());
}

TEST(EngineSplittingTest, ValidatesFactor) {
  ScubaOptions opt;
  opt.enable_cluster_splitting = true;
  opt.split_radius_factor = 0.0;
  EXPECT_TRUE(ScubaEngine::Create(opt).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scuba
