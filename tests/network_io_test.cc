#include "network/network_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "network/grid_city.h"
#include "network/network_builder.h"

namespace scuba {
namespace {

TEST(NetworkIoTest, SerializeParseRoundTrip) {
  RoadNetwork city = DefaultBenchmarkCity(77);
  std::string text = SerializeNetwork(city);
  Result<RoadNetwork> back = ParseNetwork(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NodeCount(), city.NodeCount());
  ASSERT_EQ(back->EdgeCount(), city.EdgeCount());
  for (size_t i = 0; i < city.NodeCount(); ++i) {
    EXPECT_EQ(back->node(i).position, city.node(i).position);
  }
  for (size_t i = 0; i < city.EdgeCount(); ++i) {
    EXPECT_EQ(back->edge(i).from, city.edge(i).from);
    EXPECT_EQ(back->edge(i).to, city.edge(i).to);
    EXPECT_EQ(back->edge(i).road_class, city.edge(i).road_class);
    EXPECT_DOUBLE_EQ(back->edge(i).speed_limit, city.edge(i).speed_limit);
    EXPECT_DOUBLE_EQ(back->edge(i).length, city.edge(i).length);
  }
}

TEST(NetworkIoTest, RejectsMissingHeader) {
  EXPECT_TRUE(ParseNetwork("node 0 1 2\n").status().IsCorruption());
  EXPECT_TRUE(ParseNetwork("").status().IsCorruption());
}

TEST(NetworkIoTest, RejectsMalformedNode) {
  EXPECT_TRUE(
      ParseNetwork("scuba-network 1\nnode 0 banana 2\n").status().IsCorruption());
}

TEST(NetworkIoTest, RejectsOutOfOrderNodeIds) {
  EXPECT_TRUE(
      ParseNetwork("scuba-network 1\nnode 5 0 0\n").status().IsCorruption());
}

TEST(NetworkIoTest, RejectsMalformedEdge) {
  std::string text =
      "scuba-network 1\nnode 0 0 0\nnode 1 10 0\nedge 0 1 9 30\n";
  EXPECT_TRUE(ParseNetwork(text).status().IsCorruption());  // class 9
}

TEST(NetworkIoTest, RejectsUnknownRecord) {
  EXPECT_TRUE(
      ParseNetwork("scuba-network 1\nfoo 1 2 3\n").status().IsCorruption());
}

TEST(NetworkIoTest, SkipsCommentsAndBlankLines) {
  std::string text =
      "scuba-network 1\n"
      "# a comment\n"
      "\n"
      "node 0 0 0\n"
      "node 1 10 0\n"
      "edge 0 1 0 30\n"
      "edge 1 0 0 30\n";
  Result<RoadNetwork> net = ParseNetwork(text);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(net->NodeCount(), 2u);
}

TEST(NetworkIoTest, ParseRunsBuilderValidation) {
  // Stranded node 2 must be rejected by the builder.
  std::string text =
      "scuba-network 1\n"
      "node 0 0 0\nnode 1 10 0\nnode 2 20 0\n"
      "edge 0 1 0 30\nedge 1 0 0 30\n";
  EXPECT_TRUE(ParseNetwork(text).status().IsFailedPrecondition());
}

TEST(NetworkIoTest, SaveAndLoadFile) {
  RoadNetwork city = DefaultBenchmarkCity(3);
  std::string path = ::testing::TempDir() + "/scuba_net_test.txt";
  ASSERT_TRUE(SaveNetwork(city, path).ok());
  Result<RoadNetwork> back = LoadNetwork(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NodeCount(), city.NodeCount());
  std::remove(path.c_str());
}

TEST(NetworkIoTest, LoadMissingFileIsIoError) {
  EXPECT_TRUE(LoadNetwork("/nonexistent/dir/net.txt").status().IsIoError());
}

}  // namespace
}  // namespace scuba
