#include "common/memory_usage.h"

#include <gtest/gtest.h>

#include <vector>

#include "stream/update_validator.h"

namespace scuba {
namespace {

TEST(MemoryUsageTest, VectorUsesCapacity) {
  std::vector<int> v;
  EXPECT_EQ(VectorMemoryUsage(v), 0u);
  v.reserve(100);
  EXPECT_EQ(VectorMemoryUsage(v), 100 * sizeof(int));
  v.push_back(1);  // size 1, capacity still 100
  EXPECT_EQ(VectorMemoryUsage(v), 100 * sizeof(int));
}

TEST(MemoryUsageTest, MapGrowsWithElements) {
  std::unordered_map<int, int> m;
  size_t empty = UnorderedMapMemoryUsage(m);
  for (int i = 0; i < 100; ++i) m[i] = i;
  EXPECT_GT(UnorderedMapMemoryUsage(m), empty);
  EXPECT_GE(UnorderedMapMemoryUsage(m), 100 * sizeof(std::pair<const int, int>));
}

TEST(MemoryUsageTest, SetGrowsWithElements) {
  std::unordered_set<uint64_t> s;
  size_t empty = UnorderedSetMemoryUsage(s);
  for (uint64_t i = 0; i < 50; ++i) s.insert(i);
  EXPECT_GT(UnorderedSetMemoryUsage(s), empty);
}

TEST(MemoryUsageTest, ShortStringIsSso) {
  std::string s = "short";
  EXPECT_EQ(StringMemoryUsage(s), 0u);
}

TEST(MemoryUsageTest, LongStringHeapAllocates) {
  std::string s(100, 'x');
  EXPECT_GE(StringMemoryUsage(s), 100u);
}

TEST(MemoryUsageTest, FormatBytesUnits) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1024), "1.00 KB");
  EXPECT_EQ(FormatBytes(1536), "1.50 KB");
  EXPECT_EQ(FormatBytes(1ull << 20), "1.00 MB");
  EXPECT_EQ(FormatBytes(3ull << 29), "1.50 GB");
}

TEST(MemoryUsageTest, QuarantineLogAccountsRingAndDetails) {
  QuarantineLog log(32);
  const size_t empty = log.EstimateMemoryUsage();
  for (int i = 0; i < 16; ++i) {
    QuarantinedUpdate entry;
    entry.detail = std::string(128, 'd');  // force a heap-allocated string
    log.Push(std::move(entry));
  }
  // The ring buffer itself plus every retained detail string is accounted.
  EXPECT_GE(log.EstimateMemoryUsage(), empty + log.size() * 128);
}

TEST(MemoryUsageTest, ValidatorAccountsQuarantineAndLastTimeMap) {
  ValidatorConfig config;
  config.policy = BadUpdatePolicy::kQuarantine;
  UpdateValidator validator(config);
  const size_t empty = validator.EstimateMemoryUsage();

  // Admitting tuples grows the per-entity last-timestamp map; rejecting
  // tuples grows the quarantine ring. Both must be visible in the estimate.
  std::vector<LocationUpdate> objects;
  for (uint32_t i = 0; i < 200; ++i) {
    LocationUpdate u;
    u.oid = i;
    u.position = Point{100.0 + i, 100.0};
    u.speed = 5.0;
    u.time = 1;
    objects.push_back(u);
  }
  std::vector<QueryUpdate> queries;
  ASSERT_TRUE(validator.ScreenBatch(1, &objects, &queries).ok());
  const size_t after_admits = validator.EstimateMemoryUsage();
  EXPECT_GT(after_admits, empty) << "last-time map must be accounted";

  std::vector<LocationUpdate> bad;
  for (uint32_t i = 0; i < 200; ++i) {
    LocationUpdate u;
    u.oid = i;
    u.position = Point{100.0 + i, 100.0};
    u.speed = -1.0;  // rejected: quarantined with a detail string
    u.time = 2;
    bad.push_back(u);
  }
  ASSERT_TRUE(validator.ScreenBatch(2, &bad, &queries).ok());
  ASSERT_GT(validator.stats().TotalRejected(), 0u);
  EXPECT_GT(validator.EstimateMemoryUsage(), after_admits)
      << "quarantine ring entries must be accounted";
}

}  // namespace
}  // namespace scuba
