#include "common/memory_usage.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

TEST(MemoryUsageTest, VectorUsesCapacity) {
  std::vector<int> v;
  EXPECT_EQ(VectorMemoryUsage(v), 0u);
  v.reserve(100);
  EXPECT_EQ(VectorMemoryUsage(v), 100 * sizeof(int));
  v.push_back(1);  // size 1, capacity still 100
  EXPECT_EQ(VectorMemoryUsage(v), 100 * sizeof(int));
}

TEST(MemoryUsageTest, MapGrowsWithElements) {
  std::unordered_map<int, int> m;
  size_t empty = UnorderedMapMemoryUsage(m);
  for (int i = 0; i < 100; ++i) m[i] = i;
  EXPECT_GT(UnorderedMapMemoryUsage(m), empty);
  EXPECT_GE(UnorderedMapMemoryUsage(m), 100 * sizeof(std::pair<const int, int>));
}

TEST(MemoryUsageTest, SetGrowsWithElements) {
  std::unordered_set<uint64_t> s;
  size_t empty = UnorderedSetMemoryUsage(s);
  for (uint64_t i = 0; i < 50; ++i) s.insert(i);
  EXPECT_GT(UnorderedSetMemoryUsage(s), empty);
}

TEST(MemoryUsageTest, ShortStringIsSso) {
  std::string s = "short";
  EXPECT_EQ(StringMemoryUsage(s), 0u);
}

TEST(MemoryUsageTest, LongStringHeapAllocates) {
  std::string s(100, 'x');
  EXPECT_GE(StringMemoryUsage(s), 100u);
}

TEST(MemoryUsageTest, FormatBytesUnits) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1024), "1.00 KB");
  EXPECT_EQ(FormatBytes(1536), "1.50 KB");
  EXPECT_EQ(FormatBytes(1ull << 20), "1.00 MB");
  EXPECT_EQ(FormatBytes(3ull << 29), "1.50 GB");
}

}  // namespace
}  // namespace scuba
