// Durability unit coverage (docs/ARCHITECTURE.md §8): serializer primitives,
// snapshot round-trips (digest-identical restore, clean audit, fingerprint
// gating, corruption detection) and the WAL (append/read round-trip, segment
// rotation, torn-tail tolerance, mid-log corruption, reopen, pruning). The
// end-to-end crash matrix lives in crash_recovery_test.cc.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/scuba_engine.h"
#include "common/serializer.h"
#include "persist/snapshot.h"
#include "persist/durability.h"
#include "persist/wal.h"
#include "state_digest.h"
#include "stream/update_validator.h"

namespace scuba {
namespace {

namespace fs = std::filesystem;

constexpr Rect kRegion{0.0, 0.0, 10000.0, 10000.0};

/// A self-cleaning directory under the test's working directory (never /tmp:
/// the build tree is the only place tests may write).
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name)
      : path_((fs::current_path() / name).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct Round {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// Clean, validator-admissible multi-round workload (same shape as the fault
/// injection harness uses): clustered entities drifting across the region.
std::vector<Round> MakeRounds(uint64_t seed, int rounds) {
  Rng rng(seed);
  struct Entity {
    uint32_t id;
    bool is_query;
    Point pos;
    double range;
  };
  std::vector<Entity> entities;
  for (uint32_t i = 0; i < 120; ++i) {
    int group = static_cast<int>(rng.NextDouble(0, 8));
    Point base{700.0 + 900.0 * group, 800.0 + 600.0 * (group % 3)};
    entities.push_back(Entity{i, (i % 4 == 3),
                              {base.x + rng.NextDouble(-60, 60),
                               base.y + rng.NextDouble(-60, 60)},
                              rng.NextDouble(50, 200)});
  }
  std::vector<Round> out(rounds);
  for (int r = 0; r < rounds; ++r) {
    for (Entity& e : entities) {
      if (rng.NextDouble(0, 1) < 0.15) continue;
      e.pos = {e.pos.x + rng.NextDouble(-25, 25),
               e.pos.y + rng.NextDouble(-25, 25)};
      if (e.is_query) {
        QueryUpdate u;
        u.qid = e.id;
        u.position = e.pos;
        u.speed = 6.0 + (e.id % 7);
        u.dest_node = static_cast<NodeId>(e.id % 5);
        u.dest_position = Point{9500, 9500};
        u.range_width = e.range;
        u.range_height = e.range;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].queries.push_back(u);
      } else {
        LocationUpdate u;
        u.oid = e.id;
        u.position = e.pos;
        u.speed = 6.0 + (e.id % 7);
        u.dest_node = static_cast<NodeId>(e.id % 5);
        u.dest_position = Point{9500, 9500};
        u.attrs = (e.id % 3 == 0) ? 0x5u : 0x1u;
        u.time = static_cast<Timestamp>(r + 1);
        out[r].objects.push_back(u);
      }
    }
  }
  return out;
}

std::unique_ptr<ScubaEngine> MakeEngine(const ScubaOptions& opt) {
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Ingests rounds [from, to) and evaluates after each, collecting results.
void Drive(ScubaEngine* engine, const std::vector<Round>& rounds, int from,
           int to, std::vector<ResultSet>* results_out = nullptr) {
  for (int r = from; r < to; ++r) {
    ASSERT_TRUE(
        engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    ASSERT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    if (results_out != nullptr) results_out->push_back(std::move(results));
  }
}

// ---------------------------------------------------------------------------
// Serializer primitives.

TEST(SerializerTest, Crc32MatchesKnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);  // IEEE 802.3 check value
  EXPECT_NE(Crc32("123456789"), Crc32("123456788"));
}

TEST(SerializerTest, Fnv1a64MatchesKnownVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);  // offset basis
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(SerializerTest, WriterReaderRoundTripAllTypes) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutDouble(-0.1);  // not exactly representable: bit pattern must survive
  w.PutString("hello\0world");
  ByteReader r(w.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  bool b = false;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetBool(&b).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(b);
  EXPECT_EQ(d, -0.1);
  EXPECT_EQ(s, "hello");  // string_view literal stops at the NUL
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, ReaderUnderrunIsDataLoss) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  uint64_t v = 0;
  Status s = r.GetU64(&v);
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
}

TEST(SerializerTest, OverlongStringLengthIsDataLoss) {
  ByteWriter w;
  w.PutU64(1000);  // declares 1000 bytes, none follow
  ByteReader r(w.bytes());
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsDataLoss());
}

// ---------------------------------------------------------------------------
// Snapshot round-trips.

TEST(SnapshotTest, RestoreReproducesDigestAndFutureRounds) {
  ScopedTempDir dir("persist_test_roundtrip");
  std::vector<Round> rounds = MakeRounds(91, 10);
  ScubaOptions opt;
  std::unique_ptr<ScubaEngine> original = MakeEngine(opt);
  Drive(original.get(), rounds, 0, 6);
  ASSERT_TRUE(original->Checkpoint(dir.path()).ok());
  EXPECT_EQ(original->StatsSnapshot().eval.checkpoints_written, 1u);
  EXPECT_GT(original->StatsSnapshot().eval.last_checkpoint_bytes, 0u);

  std::unique_ptr<ScubaEngine> restored = MakeEngine(opt);
  ASSERT_TRUE(restored->Restore(dir.path()).ok());
  EXPECT_EQ(StateDigest(*restored), StateDigest(*original));
  EXPECT_EQ(EngineStateHash(*restored), EngineStateHash(*original));
  EXPECT_EQ(restored->StatsSnapshot().eval.evaluations, original->StatsSnapshot().eval.evaluations);
  InvariantAuditReport audit = restored->AuditInvariants();
  EXPECT_TRUE(audit.clean()) << audit.ToString();

  // The restored engine is indistinguishable going forward, too.
  std::vector<ResultSet> original_results;
  std::vector<ResultSet> restored_results;
  Drive(original.get(), rounds, 6, 10, &original_results);
  Drive(restored.get(), rounds, 6, 10, &restored_results);
  ASSERT_EQ(original_results.size(), restored_results.size());
  for (size_t i = 0; i < original_results.size(); ++i) {
    EXPECT_EQ(original_results[i], restored_results[i]) << "round " << i;
  }
  EXPECT_EQ(StateDigest(*restored), StateDigest(*original));
}

TEST(SnapshotTest, SnapshotIsPortableAcrossThreadCounts) {
  ScopedTempDir dir("persist_test_threads");
  std::vector<Round> rounds = MakeRounds(17, 6);
  ScubaOptions serial_opt;
  serial_opt.join_threads = 1;
  serial_opt.ingest_threads = 1;
  std::unique_ptr<ScubaEngine> serial = MakeEngine(serial_opt);
  Drive(serial.get(), rounds, 0, 6);
  ASSERT_TRUE(serial->Checkpoint(dir.path()).ok());

  // Thread counts are excluded from the options fingerprint by contract.
  ScubaOptions parallel_opt;
  parallel_opt.join_threads = 4;
  parallel_opt.ingest_threads = 4;
  std::unique_ptr<ScubaEngine> parallel = MakeEngine(parallel_opt);
  ASSERT_TRUE(parallel->Restore(dir.path()).ok());
  EXPECT_EQ(StateDigest(*parallel), StateDigest(*serial));
  // The live engine's thread configuration survives the restore.
  EXPECT_EQ(parallel->StatsSnapshot().eval.join_threads, 4u);
  EXPECT_EQ(parallel->StatsSnapshot().eval.ingest_threads, 4u);
}

TEST(SnapshotTest, RestoreFromEmptyDirIsNotFound) {
  ScopedTempDir dir("persist_test_empty");
  std::unique_ptr<ScubaEngine> engine = MakeEngine(ScubaOptions{});
  Status s = engine->Restore(dir.path());
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

TEST(SnapshotTest, FingerprintMismatchIsFailedPrecondition) {
  ScopedTempDir dir("persist_test_fingerprint");
  std::vector<Round> rounds = MakeRounds(5, 2);
  ScubaOptions opt;
  std::unique_ptr<ScubaEngine> engine = MakeEngine(opt);
  Drive(engine.get(), rounds, 0, 2);
  ASSERT_TRUE(engine->Checkpoint(dir.path()).ok());

  ScubaOptions other = opt;
  other.theta_d *= 2.0;  // semantic option: different fingerprint
  EXPECT_NE(OptionsFingerprint(other), OptionsFingerprint(opt));
  std::unique_ptr<ScubaEngine> wrong = MakeEngine(other);
  Status s = wrong->Restore(dir.path());
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
}

TEST(SnapshotTest, ThreadCountsDoNotChangeFingerprint) {
  ScubaOptions a;
  ScubaOptions b = a;
  b.join_threads = 8;
  b.ingest_threads = 8;
  b.checkpoint.every_n_rounds = 3;
  b.checkpoint.keep_last_k = 7;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
}

TEST(SnapshotTest, CorruptedPayloadByteIsDataLoss) {
  ScopedTempDir dir("persist_test_corrupt");
  std::vector<Round> rounds = MakeRounds(29, 3);
  std::unique_ptr<ScubaEngine> engine = MakeEngine(ScubaOptions{});
  Drive(engine.get(), rounds, 0, 3);
  ASSERT_TRUE(engine->Checkpoint(dir.path()).ok());
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir.path());
  ASSERT_TRUE(snapshots.ok());
  ASSERT_EQ(snapshots->size(), 1u);
  const std::string& path = snapshots->front().second;

  // Flip one byte in the middle of the payload: the CRC must catch it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-1, std::ios::cur);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();
  EXPECT_TRUE(ReadSnapshotPayload(path).status().IsDataLoss());
  std::unique_ptr<ScubaEngine> fresh = MakeEngine(ScubaOptions{});
  Status s = fresh->Restore(dir.path());
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
}

TEST(SnapshotTest, TruncatedFileIsDataLoss) {
  ScopedTempDir dir("persist_test_truncate");
  std::vector<Round> rounds = MakeRounds(37, 3);
  std::unique_ptr<ScubaEngine> engine = MakeEngine(ScubaOptions{});
  Drive(engine.get(), rounds, 0, 3);
  ASSERT_TRUE(engine->Checkpoint(dir.path()).ok());
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir.path());
  ASSERT_TRUE(snapshots.ok());
  const std::string& path = snapshots->front().second;
  fs::resize_file(path, fs::file_size(path) * 2 / 3);
  EXPECT_TRUE(ReadSnapshotPayload(path).status().IsDataLoss());
}

TEST(SnapshotTest, ValidatorStateSurvivesRoundTrip) {
  std::vector<Round> rounds = MakeRounds(53, 4);
  ValidatorConfig config;
  config.policy = BadUpdatePolicy::kQuarantine;
  config.bounds = kRegion;
  config.check_bounds = true;
  UpdateValidator validator(config);
  std::unique_ptr<ScubaEngine> engine = MakeEngine(ScubaOptions{});
  for (int r = 0; r < 4; ++r) {
    Round dirty = rounds[r];
    if (r > 0 && !dirty.objects.empty()) {
      dirty.objects.front().time = 1;  // stale: rejected as time regression
    }
    ASSERT_TRUE(validator
                    .ScreenBatch(static_cast<Timestamp>(r + 1), &dirty.objects,
                                 &dirty.queries)
                    .ok());
    ASSERT_TRUE(engine->IngestBatch(dirty.objects, dirty.queries).ok());
    ResultSet results;
    ASSERT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
  }
  ASSERT_GT(validator.stats().TotalRejected(), 0u);

  const std::string payload =
      SerializeEngineSnapshot(*engine, /*wal_next_seq=*/4, &validator,
                              /*rng=*/nullptr);
  std::unique_ptr<ScubaEngine> engine2 = MakeEngine(ScubaOptions{});
  UpdateValidator validator2(config);
  Result<SnapshotMeta> meta =
      ApplySnapshot(payload, engine2.get(), &validator2, /*rng=*/nullptr);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->wal_next_seq, 4u);
  EXPECT_EQ(validator2.stats().screened, validator.stats().screened);
  EXPECT_EQ(validator2.stats().admitted, validator.stats().admitted);
  EXPECT_EQ(validator2.stats().TotalRejected(),
            validator.stats().TotalRejected());
  EXPECT_EQ(validator2.FormatStats(), validator.FormatStats());

  // The restored per-entity timestamp floors reject the same regressions.
  Round stale = rounds[0];
  stale.objects.resize(1);
  stale.queries.clear();
  stale.objects[0].time = 1;  // regression: entity already admitted at time 4
  Round stale2 = stale;
  ASSERT_TRUE(validator.ScreenBatch(5, &stale.objects, &stale.queries).ok());
  ASSERT_TRUE(
      validator2.ScreenBatch(5, &stale2.objects, &stale2.queries).ok());
  EXPECT_EQ(stale.objects.size(), stale2.objects.size());
  EXPECT_EQ(validator.stats().Rejected(RejectReason::kTimeRegression),
            validator2.stats().Rejected(RejectReason::kTimeRegression));
}

TEST(SnapshotTest, RngStateSurvivesRoundTrip) {
  std::vector<Round> rounds = MakeRounds(61, 2);
  std::unique_ptr<ScubaEngine> engine = MakeEngine(ScubaOptions{});
  Drive(engine.get(), rounds, 0, 2);
  Rng rng(0xABCDEF);
  rng.NextDouble(0, 1);  // advance off the seed state
  rng.NextDouble(0, 1);
  const std::string payload =
      SerializeEngineSnapshot(*engine, 2, /*validator=*/nullptr, &rng);
  const double expected = rng.NextDouble(0, 1);

  std::unique_ptr<ScubaEngine> engine2 = MakeEngine(ScubaOptions{});
  Rng rng2(1);  // different seed; state comes from the snapshot
  ASSERT_TRUE(
      ApplySnapshot(payload, engine2.get(), /*validator=*/nullptr, &rng2)
          .ok());
  EXPECT_EQ(rng2.NextDouble(0, 1), expected);
}

TEST(SnapshotTest, RepeatedCheckpointsOverwriteAtomically) {
  // The bare engine API maintains ONE snapshot per directory (atomic
  // replace); retention of a history of checkpoints is the
  // DurabilityManager's policy (covered below and in crash_recovery_test).
  ScopedTempDir dir("persist_test_overwrite");
  std::vector<Round> rounds = MakeRounds(71, 6);
  std::unique_ptr<ScubaEngine> engine = MakeEngine(ScubaOptions{});
  for (int r = 0; r < 6; r += 2) {
    Drive(engine.get(), rounds, r, r + 2);
    ASSERT_TRUE(engine->Checkpoint(dir.path()).ok());
  }
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir.path());
  ASSERT_TRUE(snapshots.ok());
  EXPECT_EQ(snapshots->size(), 1u);
  EXPECT_EQ(engine->StatsSnapshot().eval.checkpoints_written, 3u);
  // The surviving snapshot is the newest state, not a stale one.
  std::unique_ptr<ScubaEngine> restored = MakeEngine(ScubaOptions{});
  ASSERT_TRUE(restored->Restore(dir.path()).ok());
  EXPECT_EQ(StateDigest(*restored), StateDigest(*engine));
}

TEST(SnapshotTest, ManagerPrunesSnapshotsToKeepLastK) {
  ScopedTempDir dir("persist_test_prune");
  std::vector<Round> rounds = MakeRounds(73, 8);
  ScubaOptions opt;
  opt.checkpoint.every_n_rounds = 2;
  opt.checkpoint.keep_last_k = 2;
  std::unique_ptr<ScubaEngine> engine = MakeEngine(opt);
  Result<std::unique_ptr<DurabilityManager>> manager = DurabilityManager::Open(
      dir.path(), opt.checkpoint, engine.get(), /*validator=*/nullptr,
      /*rng=*/nullptr, /*crash=*/nullptr);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE((*manager)
                    ->LogBatch(static_cast<Timestamp>(r + 1), true,
                               rounds[r].objects, rounds[r].queries)
                    .ok());
    ASSERT_TRUE(engine->IngestBatch(rounds[r].objects, rounds[r].queries).ok());
    ResultSet results;
    ASSERT_TRUE(
        engine->Evaluate(static_cast<Timestamp>(r + 1), &results).ok());
    ASSERT_TRUE((*manager)->OnRoundComplete().ok());
  }
  // 4 checkpoints written (every 2 rounds), only the newest 2 retained.
  EXPECT_EQ(engine->StatsSnapshot().eval.checkpoints_written, 4u);
  Result<std::vector<std::pair<uint64_t, std::string>>> snapshots =
      ListSnapshots(dir.path());
  ASSERT_TRUE(snapshots.ok());
  ASSERT_EQ(snapshots->size(), 2u);
  EXPECT_EQ(snapshots->front().first, 6u);
  EXPECT_EQ(snapshots->back().first, 8u);
  EXPECT_GT(engine->StatsSnapshot().eval.wal_records_appended, 0u);
}

// ---------------------------------------------------------------------------
// Write-ahead log.

TEST(WalTest, AppendReadRoundTrip) {
  ScopedTempDir dir("persist_test_wal_roundtrip");
  std::vector<Round> rounds = MakeRounds(3, 4);
  {
    Result<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(dir.path(), /*segment_bytes=*/1 << 20,
                        /*initial_seq=*/0, /*crash=*/nullptr);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int r = 0; r < 4; ++r) {
      ASSERT_TRUE((*writer)
                      ->Append(static_cast<Timestamp>(r + 1), (r + 1) % 2 == 0,
                               rounds[r].objects, rounds[r].queries)
                      .ok());
    }
    EXPECT_EQ((*writer)->next_seq(), 4u);
    EXPECT_EQ((*writer)->stats().records_appended, 4u);
    EXPECT_EQ((*writer)->stats().fsyncs, 4u);
    EXPECT_GT((*writer)->stats().bytes_appended, 0u);
  }
  Result<WalContents> wal = ReadWal(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_FALSE(wal->torn_tail);
  ASSERT_EQ(wal->records.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    const WalRecord& record = wal->records[r];
    EXPECT_EQ(record.seq, static_cast<uint64_t>(r));
    EXPECT_EQ(record.batch_time, static_cast<Timestamp>(r + 1));
    EXPECT_EQ(record.evaluate_after, (r + 1) % 2 == 0);
    ASSERT_EQ(record.objects.size(), rounds[r].objects.size());
    ASSERT_EQ(record.queries.size(), rounds[r].queries.size());
    for (size_t i = 0; i < record.objects.size(); ++i) {
      EXPECT_EQ(record.objects[i].ToString(), rounds[r].objects[i].ToString());
    }
    for (size_t i = 0; i < record.queries.size(); ++i) {
      EXPECT_EQ(record.queries[i].ToString(), rounds[r].queries[i].ToString());
    }
  }
}

TEST(WalTest, EmptyDirectoryReadsAsEmptyLog) {
  ScopedTempDir dir("persist_test_wal_empty");
  Result<WalContents> wal = ReadWal(dir.path());
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->records.empty());
  EXPECT_FALSE(wal->torn_tail);
  // A missing directory is also an empty log, not an error.
  Result<WalContents> missing = ReadWal(dir.path() + "/does-not-exist");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());
}

TEST(WalTest, SegmentsRotateAndReadInOrder) {
  ScopedTempDir dir("persist_test_wal_rotate");
  std::vector<Round> rounds = MakeRounds(7, 10);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir.path(), /*segment_bytes=*/4096, /*initial_seq=*/0,
                      /*crash=*/nullptr);
  ASSERT_TRUE(writer.ok());
  for (int r = 0; r < 10; ++r) {
    ASSERT_TRUE((*writer)
                    ->Append(static_cast<Timestamp>(r + 1), true,
                             rounds[r].objects, rounds[r].queries)
                    .ok());
  }
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  EXPECT_GT(segments->size(), 1u) << "workload must force rotation";
  Result<WalContents> wal = ReadWal(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(wal->records.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(wal->records[i].seq, i);
}

TEST(WalTest, TornTailIsToleratedAndTruncatedOnReopen) {
  ScopedTempDir dir("persist_test_wal_torn");
  std::vector<Round> rounds = MakeRounds(13, 3);
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
        dir.path(), 1 << 20, /*initial_seq=*/0, /*crash=*/nullptr);
    ASSERT_TRUE(writer.ok());
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE((*writer)
                      ->Append(static_cast<Timestamp>(r + 1), true,
                               rounds[r].objects, rounds[r].queries)
                      .ok());
    }
  }
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  const std::string& segment = segments->front().second;
  fs::resize_file(segment, fs::file_size(segment) - 7);  // tear the last frame

  Result<WalContents> wal = ReadWal(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(wal->torn_tail);
  EXPECT_FALSE(wal->torn_detail.empty());
  ASSERT_EQ(wal->records.size(), 2u) << "torn record must not be parsed";

  // Reopening truncates the torn bytes and continues after the last intact
  // record; the log then reads clean.
  Result<std::unique_ptr<WalWriter>> reopened = WalWriter::Open(
      dir.path(), 1 << 20, /*initial_seq=*/0, /*crash=*/nullptr);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->next_seq(), 2u);
  ASSERT_TRUE(
      (*reopened)->Append(3, true, rounds[2].objects, rounds[2].queries).ok());
  Result<WalContents> repaired = ReadWal(dir.path());
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->torn_tail);
  ASSERT_EQ(repaired->records.size(), 3u);
  EXPECT_EQ(repaired->records.back().seq, 2u);
}

TEST(WalTest, MidLogCorruptionIsDataLoss) {
  ScopedTempDir dir("persist_test_wal_midlog");
  std::vector<Round> rounds = MakeRounds(19, 8);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir.path(), /*segment_bytes=*/4096, /*initial_seq=*/0,
                      /*crash=*/nullptr);
  ASSERT_TRUE(writer.ok());
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE((*writer)
                    ->Append(static_cast<Timestamp>(r + 1), true,
                             rounds[r].objects, rounds[r].queries)
                    .ok());
  }
  Result<std::vector<std::pair<uint64_t, std::string>>> segments =
      ListWalSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_GT(segments->size(), 1u);
  // Damage in a NON-final segment is never crash residue: hard kDataLoss.
  const std::string& first = segments->front().second;
  std::fstream f(first, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(fs::file_size(first) / 2));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-1, std::ios::cur);
  byte = static_cast<char>(byte ^ 0x01);
  f.write(&byte, 1);
  f.close();
  Status s = ReadWal(dir.path()).status();
  EXPECT_TRUE(s.IsDataLoss()) << s.ToString();
}

TEST(WalTest, ReopenContinuesSequence) {
  ScopedTempDir dir("persist_test_wal_reopen");
  std::vector<Round> rounds = MakeRounds(23, 5);
  for (int r = 0; r < 5; ++r) {
    // A fresh writer per record: the seq must continue across reopens.
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
        dir.path(), 1 << 20, /*initial_seq=*/0, /*crash=*/nullptr);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ((*writer)->next_seq(), static_cast<uint64_t>(r));
    ASSERT_TRUE((*writer)
                    ->Append(static_cast<Timestamp>(r + 1), true,
                             rounds[r].objects, rounds[r].queries)
                    .ok());
  }
  Result<WalContents> wal = ReadWal(dir.path());
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(wal->records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(wal->records[i].seq, i);
}

TEST(WalTest, PruneRemovesOnlyFullyCoveredSegments) {
  ScopedTempDir dir("persist_test_wal_prune");
  std::vector<Round> rounds = MakeRounds(31, 12);
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir.path(), /*segment_bytes=*/4096, /*initial_seq=*/0,
                      /*crash=*/nullptr);
  ASSERT_TRUE(writer.ok());
  for (int r = 0; r < 12; ++r) {
    ASSERT_TRUE((*writer)
                    ->Append(static_cast<Timestamp>(r + 1), true,
                             rounds[r].objects, rounds[r].queries)
                    .ok());
  }
  Result<std::vector<std::pair<uint64_t, std::string>>> before =
      ListWalSegments(dir.path());
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->size(), 2u);
  const uint64_t min_seq = (*before)[before->size() - 1].first;
  Result<size_t> removed = (*writer)->PruneSegmentsBelow(min_seq);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_GT(*removed, 0u);
  // Every record >= min_seq must still be readable; no record below the
  // oldest surviving segment's start may remain.
  Result<WalContents> wal = ReadWal(dir.path());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_FALSE(wal->records.empty());
  EXPECT_LE(wal->records.front().seq, min_seq);
  EXPECT_EQ(wal->records.back().seq, 11u);
  // Sequence numbers remain contiguous after pruning.
  for (size_t i = 1; i < wal->records.size(); ++i) {
    EXPECT_EQ(wal->records[i].seq, wal->records[i - 1].seq + 1);
  }
}

}  // namespace
}  // namespace scuba
