// Randomized consistency fuzzing: hammer the SCUBA engine with adversarial
// update sequences (random positions, destination flips, speed jumps, entity
// reuse, shedding, splitting, partial rounds) and assert after every round
// that all internal invariants hold and — when the configuration is exact —
// that results still match the oracle built from the same tuples.

#include <unordered_map>

#include <gtest/gtest.h>

#include "baseline/naive_join_engine.h"
#include "common/rng.h"
#include "core/scuba_engine.h"
#include "eval/accuracy.h"

namespace scuba {
namespace {

struct FuzzParam {
  uint64_t seed;
  bool shedding;
  bool splitting;
};

class FuzzConsistencyTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzConsistencyTest, InvariantsHoldUnderChaos) {
  const FuzzParam param = GetParam();
  Rng rng(param.seed);

  ScubaOptions options;
  options.region = Rect{0, 0, 2000, 2000};
  options.grid_cells = 20;
  if (param.shedding) {
    options.shedding.mode = LoadSheddingMode::kFixed;
    options.shedding.eta = 0.5;
  }
  options.enable_cluster_splitting = param.splitting;
  options.split_radius_factor = 0.7;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  ASSERT_TRUE(engine.ok());
  NaiveJoinEngine oracle;

  constexpr uint32_t kEntities = 40;
  ResultSet scuba_results;
  ResultSet oracle_results;

  for (Timestamp t = 1; t <= 40; ++t) {
    // Random subset of entities report; chaotic motion parameters.
    for (uint32_t i = 0; i < kEntities; ++i) {
      if (!rng.NextBool(0.8)) continue;
      Point pos{rng.NextDouble(0, 2000), rng.NextDouble(0, 2000)};
      double speed = rng.NextDouble(0, 60);
      NodeId dest = static_cast<NodeId>(rng.NextBounded(5));
      Point dest_pos{rng.NextDouble(0, 2000), rng.NextDouble(0, 2000)};
      if (i % 2 == 0) {
        LocationUpdate u;
        u.oid = i;
        u.position = pos;
        u.time = t;
        u.speed = speed;
        u.dest_node = dest;
        u.dest_position = dest_pos;
        ASSERT_TRUE((*engine)->IngestObjectUpdate(u).ok());
        ASSERT_TRUE(oracle.IngestObjectUpdate(u).ok());
      } else {
        QueryUpdate u;
        u.qid = i;
        u.position = pos;
        u.time = t;
        u.speed = speed;
        u.dest_node = dest;
        u.dest_position = dest_pos;
        u.range_width = rng.NextDouble(10, 300);
        u.range_height = rng.NextDouble(10, 300);
        ASSERT_TRUE((*engine)->IngestQueryUpdate(u).ok());
        ASSERT_TRUE(oracle.IngestQueryUpdate(u).ok());
      }
    }
    ASSERT_TRUE((*engine)->store().ValidateConsistency().ok()) << "tick " << t;
    ASSERT_EQ((*engine)->cluster_grid().size(), (*engine)->ClusterCount());

    if (t % 2 == 0) {
      ASSERT_TRUE((*engine)->Evaluate(t, &scuba_results).ok());
      ASSERT_TRUE(oracle.Evaluate(t, &oracle_results).ok());
      ASSERT_TRUE((*engine)->store().ValidateConsistency().ok())
          << "post-eval tick " << t;
      ASSERT_EQ((*engine)->cluster_grid().size(), (*engine)->ClusterCount());

      // Cluster-level invariants: radius covers reconstructed members,
      // centroid is their mean, homes point back.
      for (const auto& [cid, cluster] : (*engine)->store().clusters()) {
        (void)cid;
        Point sum{0, 0};
        for (const ClusterMember& m : cluster.members()) {
          Point p = cluster.MemberPosition(m);
          sum.x += p.x;
          sum.y += p.y;
          EXPECT_LE(Distance(cluster.centroid(), p), cluster.radius() + 1e-6);
        }
        double n = static_cast<double>(cluster.size());
        EXPECT_NEAR(cluster.centroid().x, sum.x / n, 1e-6);
        EXPECT_NEAR(cluster.centroid().y, sum.y / n, 1e-6);
      }

      if (!param.shedding) {
        // Exact configuration: the chaotic stream must still join exactly.
        // Entities that stayed silent this round are extrapolated by SCUBA
        // but static for the oracle; restrict the check to rounds where
        // everyone reported since the last relocation is impossible here, so
        // compare only when every entity updated this tick... simpler: the
        // 80% report rate makes exactness unattainable; require high recall
        // instead and exactness of the member-level machinery via accuracy
        // bounded away from zero.
        AccuracyReport rep = CompareResults(oracle_results, scuba_results);
        if (oracle_results.size() > 0) {
          EXPECT_GE(rep.Recall(), 0.5) << "tick " << t;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, FuzzConsistencyTest,
    ::testing::Values(FuzzParam{1, false, false}, FuzzParam{2, true, false},
                      FuzzParam{3, false, true}, FuzzParam{4, true, true},
                      FuzzParam{5, false, false}, FuzzParam{6, true, true}));

// Full-report variant: every entity reports every tick, so the exact
// configuration must match the oracle exactly even under chaotic motion.
class FuzzExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzExactTest, ChaoticMotionStaysExact) {
  Rng rng(GetParam());
  ScubaOptions options;
  options.region = Rect{0, 0, 2000, 2000};
  options.grid_cells = 20;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  ASSERT_TRUE(engine.ok());
  NaiveJoinEngine oracle;

  ResultSet a;
  ResultSet b;
  for (Timestamp t = 1; t <= 30; ++t) {
    for (uint32_t i = 0; i < 30; ++i) {
      Point pos{rng.NextDouble(0, 2000), rng.NextDouble(0, 2000)};
      double speed = rng.NextDouble(0, 60);
      NodeId dest = static_cast<NodeId>(rng.NextBounded(4));
      Point dest_pos{rng.NextDouble(0, 2000), rng.NextDouble(0, 2000)};
      if (i % 2 == 0) {
        LocationUpdate u;
        u.oid = i;
        u.position = pos;
        u.time = t;
        u.speed = speed;
        u.dest_node = dest;
        u.dest_position = dest_pos;
        ASSERT_TRUE((*engine)->IngestObjectUpdate(u).ok());
        ASSERT_TRUE(oracle.IngestObjectUpdate(u).ok());
      } else {
        QueryUpdate u;
        u.qid = i;
        u.position = pos;
        u.time = t;
        u.speed = speed;
        u.dest_node = dest;
        u.dest_position = dest_pos;
        u.range_width = rng.NextDouble(10, 300);
        u.range_height = rng.NextDouble(10, 300);
        ASSERT_TRUE((*engine)->IngestQueryUpdate(u).ok());
        ASSERT_TRUE(oracle.IngestQueryUpdate(u).ok());
      }
    }
    if (t % 2 == 0) {
      ASSERT_TRUE((*engine)->Evaluate(t, &a).ok());
      ASSERT_TRUE(oracle.Evaluate(t, &b).ok());
      EXPECT_EQ(a, b) << "tick " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzExactTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace scuba
