#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace scuba {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(99);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.NextInt(4, 4), 4);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(23);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
  EXPECT_NE(v, orig);  // 1/10! chance of false failure with this seed: checked
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, PickReturnsElement) {
  Rng rng(43);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int p = rng.Pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(47);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextU64() == child2.NextU64()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, SaveRestoreResumesStreamExactly) {
  Rng rng(53);
  for (int i = 0; i < 17; ++i) rng.NextU64();  // advance off the seed state
  RngState state = rng.SaveState();
  std::vector<uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.NextU64());

  Rng other(99);  // unrelated seed: state must come entirely from the save
  other.RestoreState(state);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(other.NextU64(), expected[i]) << "draw " << i;
  }
  EXPECT_EQ(other.SaveState(), rng.SaveState());
}

TEST(RngTest, SaveRestoreCarriesCachedGaussian) {
  // Box-Muller produces two values per round trip through NextU64; the spare
  // is cached. A snapshot taken between the pair must restore the cache, or
  // the resumed stream would skip one gaussian and diverge.
  Rng rng(59);
  rng.NextGaussian();  // leaves the second value of the pair cached
  RngState state = rng.SaveState();
  EXPECT_TRUE(state.has_cached_gaussian);
  const double expected = rng.NextGaussian();
  Rng other(1);
  other.RestoreState(state);
  EXPECT_EQ(other.NextGaussian(), expected);
}

TEST(RngTest, SplitMix64IsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 42u);  // state advanced
}

}  // namespace
}  // namespace scuba
