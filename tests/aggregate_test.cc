#include "core/aggregate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, NodeId dest = 1) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  return u;
}

QueryUpdate Qry(QueryId qid, Point p) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.speed = 10.0;
  u.dest_node = 1;
  u.dest_position = Point{9000, 9000};
  u.range_width = 20;
  u.range_height = 20;
  return u;
}

struct AggFixture {
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());

  void AddCluster(ClusterId cid, std::vector<Point> object_positions,
                  std::vector<Point> query_positions = {}) {
    ASSERT_FALSE(object_positions.empty() && query_positions.empty());
    MovingCluster c =
        object_positions.empty()
            ? MovingCluster::FromQuery(cid, Qry(cid * 100, query_positions[0]))
            : MovingCluster::FromObject(cid, Obj(cid * 100, object_positions[0]));
    for (size_t i = object_positions.empty() ? 0 : 1;
         i < object_positions.size(); ++i) {
      c.AbsorbObject(Obj(cid * 100 + static_cast<uint32_t>(i),
                         object_positions[i]));
    }
    for (size_t i = object_positions.empty() ? 1 : 0;
         i < query_positions.size(); ++i) {
      c.AbsorbQuery(Qry(cid * 100 + static_cast<uint32_t>(i),
                        query_positions[i]));
    }
    c.RecomputeTightBounds();
    ASSERT_TRUE(grid.Insert(cid, c.Bounds()).ok());
    ASSERT_TRUE(store.AddCluster(std::move(c)).ok());
  }
};

TEST(DiskFractionTest, FullContainment) {
  EXPECT_DOUBLE_EQ(DiskFractionInRect({{50, 50}, 10}, Rect{0, 0, 100, 100}),
                   1.0);
}

TEST(DiskFractionTest, NoOverlap) {
  EXPECT_DOUBLE_EQ(DiskFractionInRect({{200, 200}, 10}, Rect{0, 0, 100, 100}),
                   0.0);
}

TEST(DiskFractionTest, HalfPlaneIsHalf) {
  // Rect covers exactly the left half of the disk.
  double f = DiskFractionInRect({{100, 50}, 20}, Rect{0, 0, 100, 100});
  EXPECT_NEAR(f, 0.5, 0.02);
}

TEST(DiskFractionTest, PointDisk) {
  EXPECT_DOUBLE_EQ(DiskFractionInRect({{50, 50}, 0}, Rect{0, 0, 100, 100}), 1.0);
  EXPECT_DOUBLE_EQ(DiskFractionInRect({{500, 50}, 0}, Rect{0, 0, 100, 100}),
                   0.0);
}

TEST(DiskFractionTest, QuarterAtCorner) {
  // Disk centered exactly on a rect corner: a quarter lies inside.
  double f = DiskFractionInRect({{100, 100}, 20}, Rect{100, 100, 300, 300});
  EXPECT_NEAR(f, 0.25, 0.03);
}

TEST(AggregateTest, RejectsEmptyRegion) {
  AggFixture f;
  Rect empty{10, 10, 5, 5};
  EXPECT_TRUE(ExactObjectCount(f.store, f.grid, empty)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EstimateObjectCount(f.store, f.grid, empty)
                  .status()
                  .IsInvalidArgument());
}

TEST(AggregateTest, EmptyStoreCountsZero) {
  AggFixture f;
  Rect region{0, 0, 1000, 1000};
  EXPECT_EQ(*ExactObjectCount(f.store, f.grid, region), 0u);
  EXPECT_EQ(*EstimateObjectCount(f.store, f.grid, region), 0.0);
}

TEST(AggregateTest, ExactCountsOnlyObjectsInside) {
  AggFixture f;
  f.AddCluster(0, {{100, 100}, {120, 100}, {900, 100}});
  f.AddCluster(1, {}, {{110, 110}});  // query-only: contributes nothing
  Rect region{0, 0, 500, 500};
  EXPECT_EQ(*ExactObjectCount(f.store, f.grid, region), 2u);
}

TEST(AggregateTest, EstimateMatchesExactForContainedClusters) {
  AggFixture f;
  f.AddCluster(0, {{100, 100}, {120, 100}, {110, 120}});
  f.AddCluster(1, {{4000, 4000}, {4010, 4000}});
  Rect region{0, 0, 1000, 1000};  // fully contains cluster 0, misses 1
  EXPECT_EQ(*ExactObjectCount(f.store, f.grid, region), 3u);
  EXPECT_NEAR(*EstimateObjectCount(f.store, f.grid, region), 3.0, 1e-9);
}

TEST(AggregateTest, EstimateIsFractionalOnPartialOverlap) {
  AggFixture f;
  // A wide cluster straddling the region boundary at x = 1000.
  f.AddCluster(0, {{950, 500}, {1050, 500}});
  Rect region{0, 0, 1000, 1000};
  double est = *EstimateObjectCount(f.store, f.grid, region);
  EXPECT_GT(est, 0.4);
  EXPECT_LT(est, 1.6);  // about half of the 2 objects
}

// Property: on many small uniform clusters, the estimate tracks the exact
// count within a modest relative error.
class AggregatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatePropertyTest, EstimateTracksExact) {
  Rng rng(GetParam());
  AggFixture f;
  for (ClusterId cid = 0; cid < 150; ++cid) {
    Point base{rng.NextDouble(200, 9800), rng.NextDouble(200, 9800)};
    std::vector<Point> members;
    int n = 2 + static_cast<int>(rng.NextBounded(6));
    for (int i = 0; i < n; ++i) {
      members.push_back(Point{base.x + rng.NextDouble(-60, 60),
                              base.y + rng.NextDouble(-60, 60)});
    }
    f.AddCluster(cid, members);
  }
  for (int probe = 0; probe < 20; ++probe) {
    double x = rng.NextDouble(0, 6000);
    double y = rng.NextDouble(0, 6000);
    Rect region{x, y, x + 4000, y + 4000};
    size_t exact = *ExactObjectCount(f.store, f.grid, region);
    double est = *EstimateObjectCount(f.store, f.grid, region);
    // Clusters are small relative to the region: estimate within 15% + slack.
    EXPECT_NEAR(est, static_cast<double>(exact),
                0.15 * static_cast<double>(exact) + 8.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace scuba
