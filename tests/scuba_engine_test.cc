#include "core/scuba_engine.h"

#include <gtest/gtest.h>

namespace scuba {
namespace {

LocationUpdate Obj(ObjectId oid, Point p, double speed = 10.0, NodeId dest = 1,
                   Timestamp t = 0, Point dest_pos = {9000, 9000}) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = t;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = dest_pos;
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, double w = 50, double h = 50,
                double speed = 10.0, NodeId dest = 1, Timestamp t = 0,
                Point dest_pos = {9000, 9000}) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = t;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = dest_pos;
  u.range_width = w;
  u.range_height = h;
  return u;
}

std::unique_ptr<ScubaEngine> MakeEngine(ScubaOptions opt = {}) {
  Result<std::unique_ptr<ScubaEngine>> e = ScubaEngine::Create(opt);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(e).value();
}

TEST(ScubaEngineTest, CreateValidatesOptions) {
  ScubaOptions opt;
  opt.grid_cells = 0;
  EXPECT_TRUE(ScubaEngine::Create(opt).status().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.theta_d = -1;
  EXPECT_TRUE(ScubaEngine::Create(opt).status().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.delta = 0;
  EXPECT_TRUE(ScubaEngine::Create(opt).status().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.shedding.eta = 1.5;
  EXPECT_TRUE(ScubaEngine::Create(opt).status().IsInvalidArgument());
  opt = ScubaOptions{};
  opt.shedding.mode = LoadSheddingMode::kAdaptive;
  EXPECT_TRUE(ScubaEngine::Create(opt).status().IsInvalidArgument());  // no budget
}

TEST(ScubaEngineTest, EvaluateRejectsNullResults) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  EXPECT_TRUE(e->Evaluate(2, nullptr).IsInvalidArgument());
}

TEST(ScubaEngineTest, EmptyEngineYieldsNoResults) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(e->StatsSnapshot().eval.evaluations, 1u);
}

TEST(ScubaEngineTest, SingleClusterWithinJoin) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  // One co-travelling group: query at (100,100) with 50x50 range, object
  // inside it, another object outside it.
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {100, 100})).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {110, 110})).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(2, {160, 100})).ok());
  ASSERT_EQ(e->ClusterCount(), 1u);
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results.Contains(1, 1));
  EXPECT_FALSE(results.Contains(1, 2));
  EXPECT_EQ(e->StatsSnapshot().join.within_joins_single, 1u);
}

TEST(ScubaEngineTest, CrossClusterJoin) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  // Cluster A: objects heading to node 1; cluster B: queries heading to node
  // 2 but spatially overlapping A.
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {100, 100}, 10, 1)).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(2, {120, 100}, 10, 1)).ok());
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {110, 105}, 60, 60, 10, 2)).ok());
  ASSERT_EQ(e->ClusterCount(), 2u);
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_TRUE(results.Contains(1, 1));
  EXPECT_TRUE(results.Contains(1, 2));
  EXPECT_GE(e->StatsSnapshot().eval.cluster_pairs_tested, 1u);
  EXPECT_GE(e->StatsSnapshot().eval.cluster_pairs_overlapping, 1u);
  EXPECT_EQ(e->StatsSnapshot().join.within_joins_pair, 1u);
}

TEST(ScubaEngineTest, DisjointClustersArePruned) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {100, 100}, 10, 1)).ok());
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {5000, 5000}, 50, 50, 10, 2)).ok());
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_TRUE(results.empty());
  // Far apart: clusters never share a grid cell, so no pair is even tested.
  EXPECT_EQ(e->StatsSnapshot().eval.cluster_pairs_tested, 0u);
  EXPECT_EQ(e->StatsSnapshot().eval.comparisons, 0u);
}

TEST(ScubaEngineTest, SameKindClustersSkipBetweenJoin) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  // Two object-only clusters in one cell (different destinations).
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {100, 100}, 10, 1)).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(2, {110, 100}, 10, 2)).ok());
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_EQ(e->StatsSnapshot().eval.cluster_pairs_tested, 0u);
}

TEST(ScubaEngineTest, QueryReachAwareCatchesFarReachingQuery) {
  // Query range pokes far out of its cluster circle: the object sits outside
  // both member circles' overlap but inside the query rect.
  auto run = [](bool aware) {
    ScubaOptions opt;
    opt.query_reach_aware = aware;
    std::unique_ptr<ScubaEngine> e = MakeEngine(opt);
    // Query singleton at (100,100) with an enormous 500x500 range, dest 2.
    EXPECT_TRUE(e->IngestQueryUpdate(
                     Qry(1, {100, 100}, 500, 500, 10, 2))
                    .ok());
    // Object singleton at (300,100): inside the query rect, 200 away from the
    // query cluster's (radius 0) circle.
    EXPECT_TRUE(e->IngestObjectUpdate(Obj(1, {300, 100}, 10, 1)).ok());
    ResultSet results;
    EXPECT_TRUE(e->Evaluate(2, &results).ok());
    return results.Contains(1, 1);
  };
  EXPECT_TRUE(run(true));    // lossless mode finds it
  EXPECT_FALSE(run(false));  // paper-pure circles miss it (ablation pins this)
}

TEST(ScubaEngineTest, PaperExampleAnalog) {
  // Fig. 7 analog: M1 = objects only, M2 = mixed; one M2 query overlaps an
  // M1 object; the M2 join-within matches its own object.
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  // M1: two objects heading to node 1 around (200-220, 200). All entities sit
  // in the same 100-unit grid cell so the own-cell clustering probe works.
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(3, {200, 200}, 10, 1)).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(5, {220, 200}, 10, 1)).ok());
  // M2: object + queries heading to node 2 around (260-295, 200).
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(4, {295, 200}, 10, 2)).ok());
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(2, {260, 200}, 100, 40, 10, 2)).ok());
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {295, 210}, 30, 30, 10, 2)).ok());
  ASSERT_EQ(e->ClusterCount(), 2u);

  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  // Q2 covers x in [210, 310]: catches O5 (220) from M1 and O4 (295) from M2.
  EXPECT_TRUE(results.Contains(2, 5));
  EXPECT_TRUE(results.Contains(2, 4));
  // Q1 covers x in [280,310], y in [195,225]: catches O4 only.
  EXPECT_TRUE(results.Contains(1, 4));
  EXPECT_FALSE(results.Contains(1, 3));
  EXPECT_EQ(results.size(), 3u);
}

TEST(ScubaEngineTest, MaintenanceDissolvesExpiringClusters) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  // Destination 30 units away at speed 20: reached within delta=2 ticks.
  ASSERT_TRUE(e->IngestObjectUpdate(
                   Obj(1, {100, 100}, 20.0, 1, 0, Point{130, 100}))
                  .ok());
  ASSERT_EQ(e->ClusterCount(), 1u);
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_EQ(e->ClusterCount(), 0u);
  EXPECT_EQ(e->StatsSnapshot().phase.clusters_dissolved_expired, 1u);
  EXPECT_EQ(e->cluster_grid().size(), 0u);
}

TEST(ScubaEngineTest, MaintenanceRelocatesSurvivors) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  // Destination far away: the cluster survives and moves by velocity * delta.
  ASSERT_TRUE(e->IngestObjectUpdate(
                   Obj(1, {100, 100}, 10.0, 1, 0, Point{9000, 100}))
                  .ok());
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  ASSERT_EQ(e->ClusterCount(), 1u);
  const MovingCluster& c = e->store().clusters().begin()->second;
  // Velocity is +x at speed 10, delta 2: centroid moved to x=120.
  EXPECT_NEAR(c.centroid().x, 120.0, 1e-6);
  EXPECT_NEAR(c.centroid().y, 100.0, 1e-6);
}

TEST(ScubaEngineTest, ResultsAreNormalizedAndDeduped) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {100, 100}, 80, 80)).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {105, 100})).ok());
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  ASSERT_EQ(results.size(), 1u);
  // Re-evaluating gives a fresh (equal) result set, not accumulation.
  ResultSet again;
  ASSERT_TRUE(e->IngestQueryUpdate(Qry(1, {100, 100}, 80, 80, 10, 1, 2)).ok());
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {105, 100}, 10, 1, 2)).ok());
  ASSERT_TRUE(e->Evaluate(4, &again).ok());
  EXPECT_EQ(again.size(), 1u);
}

TEST(ScubaEngineTest, StatsAccumulateAcrossRounds) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  ResultSet results;
  ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {100, 100})).ok());
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  ASSERT_TRUE(e->Evaluate(4, &results).ok());
  EXPECT_EQ(e->StatsSnapshot().eval.evaluations, 2u);
  EXPECT_GE(e->StatsSnapshot().eval.total_join_seconds, 0.0);
  EXPECT_GE(e->StatsSnapshot().eval.total_maintenance_seconds,
            e->StatsSnapshot().eval.last_maintenance_seconds);
}

TEST(ScubaEngineTest, MemoryEstimateGrowsWithEntities) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  size_t empty = e->EstimateMemoryUsage();
  for (uint32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        e->IngestObjectUpdate(Obj(i, {100.0 + i * 37.0, 100.0 + (i % 13) * 59.0},
                                  10, i % 5))
            .ok());
  }
  EXPECT_GT(e->EstimateMemoryUsage(), empty);
}

TEST(ScubaEngineTest, ObjectOnlyWorkloadYieldsNothingCheaply) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(e->IngestObjectUpdate(Obj(i, {100.0 + i, 100})).ok());
  }
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_TRUE(results.empty());
  // No mixed clusters, no complementary pairs: zero member-level work.
  EXPECT_EQ(e->StatsSnapshot().eval.comparisons, 0u);
}

TEST(ScubaEngineTest, QueryOnlyWorkloadYieldsNothingCheaply) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(e->IngestQueryUpdate(Qry(i, {100.0 + i, 100})).ok());
  }
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(e->StatsSnapshot().eval.comparisons, 0u);
}

TEST(ScubaEngineTest, RepeatedEvaluateWithoutUpdatesTracksRelocation) {
  // With no fresh updates between rounds, clusters coast along their velocity
  // vectors; results reflect the extrapolated positions and the store stays
  // consistent round after round.
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  // Object heading east; stationary-ish query ahead of it.
  ASSERT_TRUE(e->IngestObjectUpdate(
                   Obj(1, {100, 100}, 20.0, 1, 0, Point{9000, 100}))
                  .ok());
  ASSERT_TRUE(e->IngestQueryUpdate(
                   Qry(1, {200, 100}, 60, 60, 0.5, 2, 0, Point{9000, 100}))
                  .ok());
  ResultSet results;
  ASSERT_TRUE(e->Evaluate(2, &results).ok());
  EXPECT_FALSE(results.Contains(1, 1));  // object still ~60 short
  // Coast: object cluster moves 40 units per round towards the query.
  bool matched = false;
  for (Timestamp t = 4; t <= 12 && !matched; t += 2) {
    ASSERT_TRUE(e->Evaluate(t, &results).ok());
    matched = results.Contains(1, 1);
    ASSERT_TRUE(e->store().ValidateConsistency().ok());
  }
  EXPECT_TRUE(matched) << "extrapolated object never reached the query range";
}

TEST(ScubaEngineTest, DeltaOneEvaluatesEveryTick) {
  ScubaOptions opt;
  opt.delta = 1;
  std::unique_ptr<ScubaEngine> e = MakeEngine(opt);
  ResultSet results;
  for (Timestamp t = 1; t <= 5; ++t) {
    ASSERT_TRUE(e->IngestObjectUpdate(Obj(1, {100.0 + t, 100}, 10, 1, t)).ok());
    ASSERT_TRUE(e->Evaluate(t, &results).ok());
  }
  EXPECT_EQ(e->StatsSnapshot().eval.evaluations, 5u);
}

TEST(ScubaEngineTest, StoreStaysConsistentUnderChurn) {
  std::unique_ptr<ScubaEngine> e = MakeEngine();
  ResultSet results;
  for (Timestamp t = 1; t <= 20; ++t) {
    for (uint32_t i = 0; i < 30; ++i) {
      NodeId dest = (t + i) % 4;
      Point p{500.0 + 25.0 * t + i, 500.0 + 3.0 * (i % 7)};
      ASSERT_TRUE(e->IngestObjectUpdate(Obj(i, p, 12, dest, t)).ok());
      if (i % 3 == 0) {
        ASSERT_TRUE(
            e->IngestQueryUpdate(Qry(i, p + Vec2{2, 2}, 40, 40, 12, dest, t))
                .ok());
      }
    }
    if (t % 2 == 0) {
      ASSERT_TRUE(e->Evaluate(t, &results).ok());
    }
    ASSERT_TRUE(e->store().ValidateConsistency().ok()) << "tick " << t;
    ASSERT_EQ(e->cluster_grid().size(), e->ClusterCount());
  }
}

}  // namespace
}  // namespace scuba
