// Sharded-vs-single bit-identity (docs/ARCHITECTURE.md §11): a ShardedEngine
// at any (shards, join_threads) must produce per-round ResultSets, counters,
// state digests and EngineStateHash values identical to a single ScubaEngine
// on the same stream — including under kFixed load shedding, border-crossing
// clusters and ownership handoffs. Plus the partitioning edge cases: clusters
// tangent to a stripe border, zero-area stripes, a map smaller than one
// stripe, and objects whose destination lies in a different shard than their
// position.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/result_set.h"
#include "core/scuba_engine.h"
#include "persist/snapshot.h"
#include "shard/sharded_engine.h"
#include "state_digest.h"

namespace scuba {
namespace {

constexpr Rect kRegion{0, 0, 10000, 10000};

ScubaOptions BaseOptions(uint32_t shards, uint32_t threads) {
  ScubaOptions opt;
  opt.region = kRegion;
  opt.grid_cells = 100;
  opt.theta_d = 150.0;
  opt.theta_s = 15.0;
  opt.delta = 2;
  opt.shards = shards;
  opt.join_threads = threads;
  return opt;
}

LocationUpdate Obj(ObjectId oid, Point p, Timestamp t, double speed = 10.0,
                   NodeId dest = 1, Point dest_pos = Point{9000, 9000}) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.time = t;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = dest_pos;
  return u;
}

QueryUpdate Qry(QueryId qid, Point p, Timestamp t, double w = 200,
                double h = 200, NodeId dest = 1,
                Point dest_pos = Point{9000, 9000}) {
  QueryUpdate u;
  u.qid = qid;
  u.position = p;
  u.time = t;
  u.speed = 10.0;
  u.dest_node = dest;
  u.dest_position = dest_pos;
  u.range_width = w;
  u.range_height = h;
  return u;
}

/// A seeded streaming workload: entities random-walk across the map (so
/// clusters translate, cross stripe borders, dissolve and re-form), a
/// fraction skips reporting each tick (so expiry fires), and destination
/// nodes point at far-away map corners (routinely a different stripe than the
/// position). Each tick yields one batch.
struct Workload {
  struct Tick {
    std::vector<LocationUpdate> objects;
    std::vector<QueryUpdate> queries;
  };
  std::vector<Tick> ticks;
};

Workload MakeWorkload(uint64_t seed, int ticks, int objects, int queries) {
  Workload w;
  Rng rng(seed);
  std::vector<Point> opos(objects), qpos(queries);
  for (Point& p : opos) {
    p = {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
  }
  for (Point& p : qpos) {
    p = {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
  }
  const Point corners[] = {{200, 200}, {9800, 200}, {200, 9800}, {9800, 9800}};
  for (int t = 0; t < ticks; ++t) {
    Workload::Tick tick;
    for (int i = 0; i < objects; ++i) {
      // Straggler fraction: ~1 in 6 skips this tick, letting expiry fire.
      if (rng.NextDouble(0, 1) < 1.0 / 6.0) continue;
      Point& p = opos[i];
      p.x = std::min(10000.0, std::max(0.0, p.x + rng.NextDouble(-180, 180)));
      p.y = std::min(10000.0, std::max(0.0, p.y + rng.NextDouble(-180, 180)));
      const int corner = i % 4;
      tick.objects.push_back(Obj(static_cast<ObjectId>(i + 1), p, t,
                                 rng.NextDouble(5, 15),
                                 static_cast<NodeId>(10 + corner),
                                 corners[corner]));
    }
    for (int i = 0; i < queries; ++i) {
      if (rng.NextDouble(0, 1) < 1.0 / 8.0) continue;
      Point& p = qpos[i];
      p.x = std::min(10000.0, std::max(0.0, p.x + rng.NextDouble(-150, 150)));
      p.y = std::min(10000.0, std::max(0.0, p.y + rng.NextDouble(-150, 150)));
      const int corner = (i + 2) % 4;
      tick.queries.push_back(Qry(static_cast<QueryId>(i + 1), p, t,
                                 rng.NextDouble(50, 350),
                                 rng.NextDouble(50, 350),
                                 static_cast<NodeId>(10 + corner),
                                 corners[corner]));
    }
    w.ticks.push_back(std::move(tick));
  }
  return w;
}

/// Drives any QueryProcessor through the workload — batched ingest on even
/// ticks, per-update on odd ticks (both paths must agree) — and records each
/// round's normalized ResultSet.
std::vector<ResultSet> Drive(const Workload& w, QueryProcessor* engine) {
  std::vector<ResultSet> rounds;
  Timestamp now = 0;
  // One ResultSet reused across rounds, exactly like the CLI's run loop:
  // Evaluate must clear it, never accumulate into it.
  ResultSet results;
  for (size_t t = 0; t < w.ticks.size(); ++t) {
    const Workload::Tick& tick = w.ticks[t];
    if (t % 2 == 0) {
      EXPECT_TRUE(engine->IngestBatch(tick.objects, tick.queries).ok());
    } else {
      for (const LocationUpdate& u : tick.objects) {
        EXPECT_TRUE(engine->IngestObjectUpdate(u).ok());
      }
      for (const QueryUpdate& u : tick.queries) {
        EXPECT_TRUE(engine->IngestQueryUpdate(u).ok());
      }
    }
    EXPECT_TRUE(engine->Evaluate(now, &results).ok());
    rounds.push_back(results);
    now += 2;
  }
  return rounds;
}

void ExpectStatsMatch(const EngineSnapshotStats& single,
                      const EngineSnapshotStats& sharded) {
  EXPECT_EQ(single.eval.evaluations, sharded.eval.evaluations);
  EXPECT_EQ(single.eval.total_results, sharded.eval.total_results);
  EXPECT_EQ(single.eval.comparisons, sharded.eval.comparisons);
  EXPECT_EQ(single.eval.bounds_checks, sharded.eval.bounds_checks);
  EXPECT_EQ(single.eval.cluster_pairs_tested, sharded.eval.cluster_pairs_tested);
  EXPECT_EQ(single.eval.cluster_pairs_overlapping,
            sharded.eval.cluster_pairs_overlapping);
  EXPECT_EQ(single.eval.updates_quarantined, sharded.eval.updates_quarantined);
  EXPECT_EQ(single.clusterer.clusters_created,
            sharded.clusterer.clusters_created);
  EXPECT_EQ(single.clusterer.members_absorbed,
            sharded.clusterer.members_absorbed);
  EXPECT_EQ(single.clusterer.members_refreshed,
            sharded.clusterer.members_refreshed);
  EXPECT_EQ(single.clusterer.members_departed,
            sharded.clusterer.members_departed);
  EXPECT_EQ(single.clusterer.clusters_dissolved_empty,
            sharded.clusterer.clusters_dissolved_empty);
  EXPECT_EQ(single.clusterer.members_shed, sharded.clusterer.members_shed);
  EXPECT_EQ(single.phase.clusters_dissolved_expired,
            sharded.phase.clusters_dissolved_expired);
  EXPECT_EQ(single.phase.members_shed_maintenance,
            sharded.phase.members_shed_maintenance);
  EXPECT_EQ(single.phase.clusters_split, sharded.phase.clusters_split);
  EXPECT_EQ(single.join.comparisons, sharded.join.comparisons);
  EXPECT_EQ(single.join.within_joins_single, sharded.join.within_joins_single);
  EXPECT_EQ(single.join.within_joins_pair, sharded.join.within_joins_pair);
  EXPECT_EQ(single.clusters, sharded.clusters);
}

/// Runs the single reference engine and one sharded config over the same
/// workload and asserts full bit-identity.
void ExpectShardedMatchesSingle(const Workload& w, ScubaOptions single_opt,
                                ScubaOptions sharded_opt) {
  single_opt.shards = 1;
  single_opt.join_threads = 1;
  auto single = ScubaEngine::Create(single_opt).value();
  auto sharded = ShardedEngine::Create(sharded_opt).value();

  const std::vector<ResultSet> single_rounds = Drive(w, single.get());
  const std::vector<ResultSet> sharded_rounds = Drive(w, sharded.get());

  ASSERT_EQ(single_rounds.size(), sharded_rounds.size());
  for (size_t i = 0; i < single_rounds.size(); ++i) {
    EXPECT_EQ(single_rounds[i], sharded_rounds[i]) << "round " << i;
  }
  EXPECT_EQ(StateDigest(*single), StateDigest(*sharded));
  EXPECT_EQ(EngineStateHash(*single), EngineStateHash(*sharded));
  ExpectStatsMatch(single->StatsSnapshot(), sharded->StatsSnapshot());
}

class ShardMatrixTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(ShardMatrixTest, BitIdenticalToSingleEngine) {
  const auto [shards, threads] = GetParam();
  const Workload w = MakeWorkload(/*seed=*/42, /*ticks=*/8, /*objects=*/200,
                                  /*queries=*/40);
  ExpectShardedMatchesSingle(w, BaseOptions(1, 1),
                             BaseOptions(shards, threads));
}

TEST_P(ShardMatrixTest, BitIdenticalUnderFixedShedding) {
  const auto [shards, threads] = GetParam();
  ScubaOptions opt = BaseOptions(shards, threads);
  opt.shedding.mode = LoadSheddingMode::kFixed;
  opt.shedding.eta = 0.3;
  ScubaOptions single = BaseOptions(1, 1);
  single.shedding = opt.shedding;
  const Workload w = MakeWorkload(/*seed=*/1234, /*ticks=*/6, /*objects=*/150,
                                  /*queries=*/30);
  ExpectShardedMatchesSingle(w, single, opt);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardMatrixTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t>>& info) {
      return "shards" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "threads";
    });

TEST(ShardedEngineTest, ClustersTangentToStripeBorder) {
  // 4 shards over 100 rows put borders at y = 2500 / 5000 / 7500. Build
  // clusters sitting exactly on, just under and just over a border, plus one
  // spanning it.
  Workload w;
  Workload::Tick tick;
  int oid = 1, qid = 1;
  for (double y : {2500.0, 2499.999, 2500.001, 2450.0, 2550.0, 5000.0,
                   7500.0}) {
    for (double x : {1000.0, 1060.0, 1120.0}) {
      tick.objects.push_back(Obj(oid++, {x, y}, 0));
    }
    tick.queries.push_back(Qry(qid++, {1060, y}, 0, 300, 300));
  }
  // A cluster straddling the border: members on both sides.
  for (double dy : {-90.0, -30.0, 30.0, 90.0}) {
    tick.objects.push_back(Obj(oid++, {3000, 2500 + dy}, 0));
  }
  tick.queries.push_back(Qry(qid++, {3000, 2500}, 0, 250, 250));
  w.ticks.push_back(tick);
  // Second tick: everyone shifts north across the border.
  Workload::Tick shifted;
  for (LocationUpdate u : tick.objects) {
    u.position.y += 120;
    u.time = 1;
    shifted.objects.push_back(u);
  }
  for (QueryUpdate u : tick.queries) {
    u.position.y += 120;
    u.time = 1;
    shifted.queries.push_back(u);
  }
  w.ticks.push_back(shifted);

  ExpectShardedMatchesSingle(w, BaseOptions(1, 1), BaseOptions(4, 1));
}

TEST(ShardedEngineTest, DestinationInDifferentShardThanPosition) {
  // Objects in the bottom stripe whose destination node sits in the top
  // stripe: velocity (hence translation and join conditions) points across
  // the partition. The cluster must form, translate and join identically.
  Workload w;
  Workload::Tick tick;
  for (int i = 0; i < 12; ++i) {
    tick.objects.push_back(Obj(i + 1, {4000.0 + 40 * i, 500.0}, 0,
                               /*speed=*/80.0, /*dest=*/99,
                               /*dest_pos=*/Point{4200, 9500}));
  }
  tick.queries.push_back(
      Qry(1, {4200, 520}, 0, 400, 400, 99, Point{4200, 9500}));
  w.ticks.push_back(tick);
  for (int t = 1; t < 5; ++t) {
    Workload::Tick next;
    for (LocationUpdate u : w.ticks[t - 1].objects) {
      u.position.y += 160;  // marching toward the destination stripe
      u.time = t;
      next.objects.push_back(u);
    }
    for (QueryUpdate u : w.ticks[t - 1].queries) {
      u.position.y += 160;
      u.time = t;
      next.queries.push_back(u);
    }
    w.ticks.push_back(next);
  }
  ExpectShardedMatchesSingle(w, BaseOptions(1, 1), BaseOptions(4, 1));
}

TEST(ShardedEngineTest, HandoffsAndGhostsOccurAndStayIdentical) {
  const Workload w = MakeWorkload(/*seed=*/7, /*ticks=*/10, /*objects=*/250,
                                  /*queries=*/50);
  auto sharded = ShardedEngine::Create(BaseOptions(8, 1)).value();
  auto single = ScubaEngine::Create(BaseOptions(1, 1)).value();
  const std::vector<ResultSet> a = Drive(w, single.get());
  const std::vector<ResultSet> b = Drive(w, sharded.get());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // The workload random-walks across the whole map: border crossings must
  // actually exercise the ghost and handoff protocols.
  EXPECT_GT(sharded->ghosts_published(), 0u);
  EXPECT_GT(sharded->handoffs(), 0u);
  EXPECT_EQ(EngineStateHash(*single), EngineStateHash(*sharded));
}

TEST(ShardedEngineTest, ZeroAreaStripes) {
  // More shards than grid rows: the surplus stripes own no cells. grid_cells
  // = 8 rows under 16 shards.
  ScubaOptions opt = BaseOptions(16, 1);
  opt.grid_cells = 8;
  ScubaOptions single = BaseOptions(1, 1);
  single.grid_cells = 8;
  const Workload w = MakeWorkload(/*seed=*/99, /*ticks=*/5, /*objects=*/100,
                                  /*queries=*/20);
  ExpectShardedMatchesSingle(w, single, opt);
}

TEST(ShardedEngineTest, MapSmallerThanOneStripe) {
  // A 2x2-cell map under 4 shards: stripes own one row or none; most of the
  // engine's clusters concentrate in two stripes.
  ScubaOptions opt = BaseOptions(4, 1);
  opt.grid_cells = 2;
  ScubaOptions single = BaseOptions(1, 1);
  single.grid_cells = 2;
  const Workload w = MakeWorkload(/*seed=*/5, /*ticks=*/5, /*objects=*/80,
                                  /*queries=*/15);
  ExpectShardedMatchesSingle(w, single, opt);
}

TEST(ShardedEngineTest, ShardedStateHashMatchesSingleEngineLayout) {
  // ShardedStateHash must byte-match SaveStoreState of an equivalent single
  // engine — that is what makes cross-shard hash comparisons meaningful.
  const Workload w = MakeWorkload(/*seed=*/21, /*ticks=*/4, /*objects=*/60,
                                  /*queries=*/12);
  auto single = ScubaEngine::Create(BaseOptions(1, 1)).value();
  auto sharded = ShardedEngine::Create(BaseOptions(2, 1)).value();
  Drive(w, single.get());
  Drive(w, sharded.get());
  EXPECT_EQ(EngineStateHash(*single), EngineStateHash(*sharded));
}

TEST(ShardedEngineTest, RebalanceObserveFlagsSkew) {
  // Everything in the bottom stripe: shard 0 carries ~4x the mean load, so
  // observe mode must log at least one split recommendation.
  ScubaOptions opt = BaseOptions(4, 1);
  opt.rebalance = RebalanceMode::kObserve;
  auto engine = ShardedEngine::Create(opt).value();
  Workload w;
  Workload::Tick tick;
  Rng rng(31);
  for (int i = 0; i < 120; ++i) {
    tick.objects.push_back(Obj(
        i + 1, {rng.NextDouble(0, 10000), rng.NextDouble(0, 2400)}, 0));
  }
  for (int i = 0; i < 25; ++i) {
    tick.queries.push_back(Qry(
        i + 1, {rng.NextDouble(0, 10000), rng.NextDouble(0, 2400)}, 0, 300,
        300));
  }
  w.ticks.push_back(std::move(tick));
  Drive(w, engine.get());
  EXPECT_GE(engine->rebalance_recommendations(), 1u);
  EXPECT_NE(engine->last_recommendation().find("shard 0"), std::string::npos)
      << engine->last_recommendation();
}

TEST(ShardedEngineTest, QuarantinePolicyMatchesSingleEngine) {
  ScubaOptions opt = BaseOptions(4, 1);
  opt.on_bad_update = BadUpdatePolicy::kQuarantine;
  ScubaOptions single = BaseOptions(1, 1);
  single.on_bad_update = BadUpdatePolicy::kQuarantine;
  Workload w = MakeWorkload(/*seed=*/3, /*ticks=*/4, /*objects=*/60,
                            /*queries=*/12);
  // Poison a few tuples; both engines must quarantine the same set.
  w.ticks[1].objects[0].position.x = std::numeric_limits<double>::quiet_NaN();
  w.ticks[2].objects[1].speed = -5.0;
  w.ticks[3].queries[0].dest_node = kInvalidNodeId;
  ExpectShardedMatchesSingle(w, single, opt);
}

TEST(ShardedEngineTest, RejectsInvalidShardCounts) {
  ScubaOptions opt = BaseOptions(0, 1);
  EXPECT_FALSE(ShardedEngine::Create(opt).ok());
  opt.shards = 2000;
  EXPECT_FALSE(ShardedEngine::Create(opt).ok());
}

}  // namespace
}  // namespace scuba
