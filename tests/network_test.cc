#include <gtest/gtest.h>

#include "network/grid_city.h"
#include "network/network_builder.h"
#include "network/road_network.h"
#include "network/shortest_path.h"

namespace scuba {
namespace {

NetworkBuilder TwoNodeBuilder() {
  NetworkBuilder b;
  b.AddNode({0, 0});
  b.AddNode({100, 0});
  return b;
}

TEST(RoadClassTest, NamesAndSpeeds) {
  EXPECT_EQ(RoadClassName(RoadClass::kLocal), "local");
  EXPECT_EQ(RoadClassName(RoadClass::kArterial), "arterial");
  EXPECT_EQ(RoadClassName(RoadClass::kHighway), "highway");
  EXPECT_LT(DefaultSpeedLimit(RoadClass::kLocal),
            DefaultSpeedLimit(RoadClass::kArterial));
  EXPECT_LT(DefaultSpeedLimit(RoadClass::kArterial),
            DefaultSpeedLimit(RoadClass::kHighway));
}

TEST(NetworkBuilderTest, AddNodeAssignsDenseIds) {
  NetworkBuilder b;
  EXPECT_EQ(b.AddNode({0, 0}), 0u);
  EXPECT_EQ(b.AddNode({1, 1}), 1u);
  EXPECT_EQ(b.NodeCount(), 2u);
}

TEST(NetworkBuilderTest, AddEdgeComputesLength) {
  NetworkBuilder b = TwoNodeBuilder();
  Result<EdgeId> e = b.AddEdge(0, 1);
  ASSERT_TRUE(e.ok());
  Result<EdgeId> back = b.AddEdge(1, 0);
  ASSERT_TRUE(back.ok());
  Result<RoadNetwork> net = b.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_DOUBLE_EQ(net->edge(*e).length, 100.0);
  EXPECT_EQ(net->edge(*e).speed_limit, DefaultSpeedLimit(RoadClass::kLocal));
}

TEST(NetworkBuilderTest, AddEdgeCustomSpeed) {
  NetworkBuilder b = TwoNodeBuilder();
  Result<EdgeId> e = b.AddEdge(0, 1, RoadClass::kHighway, 42.0);
  ASSERT_TRUE(e.ok());
  b.AddEdge(1, 0, RoadClass::kHighway, 42.0);
  Result<RoadNetwork> net = b.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_DOUBLE_EQ(net->edge(*e).speed_limit, 42.0);
  EXPECT_EQ(net->edge(*e).road_class, RoadClass::kHighway);
}

TEST(NetworkBuilderTest, RejectsBadEndpoints) {
  NetworkBuilder b = TwoNodeBuilder();
  EXPECT_TRUE(b.AddEdge(0, 7).status().IsInvalidArgument());
  EXPECT_TRUE(b.AddEdge(9, 1).status().IsInvalidArgument());
}

TEST(NetworkBuilderTest, RejectsSelfLoop) {
  NetworkBuilder b = TwoNodeBuilder();
  EXPECT_TRUE(b.AddEdge(0, 0).status().IsInvalidArgument());
}

TEST(NetworkBuilderTest, RejectsNegativeSpeed) {
  NetworkBuilder b = TwoNodeBuilder();
  EXPECT_TRUE(b.AddEdge(0, 1, RoadClass::kLocal, -5.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(NetworkBuilderTest, RejectsDuplicateEdge) {
  NetworkBuilder b = TwoNodeBuilder();
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(0, 1).status().IsAlreadyExists());
  // The reverse direction is a distinct edge.
  EXPECT_TRUE(b.AddEdge(1, 0).ok());
}

TEST(NetworkBuilderTest, BidirectionalAddsBoth) {
  NetworkBuilder b = TwoNodeBuilder();
  ASSERT_TRUE(b.AddBidirectionalEdge(0, 1).ok());
  EXPECT_EQ(b.EdgeCount(), 2u);
}

TEST(NetworkBuilderTest, BuildRejectsEmpty) {
  NetworkBuilder b;
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
  b.AddNode({0, 0});
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());  // no edges
}

TEST(NetworkBuilderTest, BuildRejectsStrandedNode) {
  NetworkBuilder b = TwoNodeBuilder();
  b.AddNode({200, 0});  // node 2, no out edge
  b.AddBidirectionalEdge(0, 1);
  Result<RoadNetwork> net = b.Build();
  EXPECT_TRUE(net.status().IsFailedPrecondition());
}

TEST(NetworkBuilderTest, BuildRejectsZeroLengthEdge) {
  NetworkBuilder b;
  b.AddNode({0, 0});
  b.AddNode({0, 0});  // coincident
  b.AddBidirectionalEdge(0, 1);
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
}

TEST(RoadNetworkTest, AccessorsAndAdjacency) {
  NetworkBuilder b;
  NodeId a = b.AddNode({0, 0});
  NodeId c = b.AddNode({10, 0});
  NodeId d = b.AddNode({10, 10});
  b.AddBidirectionalEdge(a, c);
  b.AddBidirectionalEdge(c, d);
  b.AddBidirectionalEdge(a, d);
  Result<RoadNetwork> rnet = b.Build();
  ASSERT_TRUE(rnet.ok());
  const RoadNetwork& net = *rnet;
  EXPECT_EQ(net.NodeCount(), 3u);
  EXPECT_EQ(net.EdgeCount(), 6u);
  EXPECT_EQ(net.OutEdges(a).size(), 2u);
  EXPECT_EQ(net.node(c).position, (Point{10, 0}));
}

TEST(RoadNetworkTest, FindEdge) {
  NetworkBuilder b = TwoNodeBuilder();
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  Result<RoadNetwork> net = b.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_NE(net->FindEdge(0, 1), kInvalidEdgeId);
  EXPECT_NE(net->FindEdge(1, 0), kInvalidEdgeId);
  EXPECT_EQ(net->FindEdge(0, 0), kInvalidEdgeId);
  EXPECT_EQ(net->FindEdge(5, 0), kInvalidEdgeId);  // out of range from-node
}

TEST(RoadNetworkTest, NearestNode) {
  NetworkBuilder b;
  b.AddNode({0, 0});
  b.AddNode({100, 100});
  b.AddBidirectionalEdge(0, 1);
  Result<RoadNetwork> net = b.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->NearestNode({10, 10}), 0u);
  EXPECT_EQ(net->NearestNode({90, 90}), 1u);
}

TEST(RoadNetworkTest, BoundingBoxCoversNodes) {
  NetworkBuilder b;
  b.AddNode({-5, 3});
  b.AddNode({12, -7});
  b.AddBidirectionalEdge(0, 1);
  Result<RoadNetwork> net = b.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->BoundingBox(), (Rect{-5, -7, 12, 3}));
}

TEST(RoadNetworkTest, TravelTime) {
  RoadSegment seg;
  seg.length = 100.0;
  seg.speed_limit = 25.0;
  EXPECT_DOUBLE_EQ(seg.TravelTime(), 4.0);
}

TEST(RoadNetworkTest, MemoryUsageNonZero) {
  RoadNetwork city = DefaultBenchmarkCity();
  EXPECT_GT(city.EstimateMemoryUsage(), 1000u);
}

// ---------- Grid city generator ----------

TEST(GridCityTest, RejectsBadOptions) {
  GridCityOptions opt;
  opt.rows = 1;
  EXPECT_TRUE(GenerateGridCity(opt).status().IsInvalidArgument());
  opt = GridCityOptions{};
  opt.block_size = 0;
  EXPECT_TRUE(GenerateGridCity(opt).status().IsInvalidArgument());
  opt = GridCityOptions{};
  opt.jitter = 0.7;
  EXPECT_TRUE(GenerateGridCity(opt).status().IsInvalidArgument());
}

TEST(GridCityTest, NodeAndEdgeCounts) {
  GridCityOptions opt;
  opt.rows = 4;
  opt.cols = 5;
  opt.jitter = 0.0;
  Result<RoadNetwork> net = GenerateGridCity(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->NodeCount(), 20u);
  // Horizontal: 4 rows x 4 segments, vertical: 5 cols x 3 segments, x2 dirs.
  EXPECT_EQ(net->EdgeCount(), 2u * (4 * 4 + 5 * 3));
}

TEST(GridCityTest, DeterministicForSeed) {
  GridCityOptions opt;
  opt.seed = 99;
  Result<RoadNetwork> a = GenerateGridCity(opt);
  Result<RoadNetwork> b = GenerateGridCity(opt);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NodeCount(), b->NodeCount());
  for (size_t i = 0; i < a->NodeCount(); ++i) {
    EXPECT_EQ(a->node(i).position, b->node(i).position);
  }
}

TEST(GridCityTest, HighwayAndArterialClassesPresent) {
  RoadNetwork city = DefaultBenchmarkCity();
  bool has_local = false;
  bool has_arterial = false;
  bool has_highway = false;
  for (const RoadSegment& e : city.edges()) {
    has_local |= e.road_class == RoadClass::kLocal;
    has_arterial |= e.road_class == RoadClass::kArterial;
    has_highway |= e.road_class == RoadClass::kHighway;
  }
  EXPECT_TRUE(has_local);
  EXPECT_TRUE(has_arterial);
  EXPECT_TRUE(has_highway);
}

TEST(GridCityTest, FullyConnected) {
  RoadNetwork city = DefaultBenchmarkCity();
  Result<std::vector<double>> costs = ShortestPathCosts(city, 0);
  ASSERT_TRUE(costs.ok());
  for (double c : *costs) {
    EXPECT_TRUE(std::isfinite(c)) << "grid city must be strongly connected";
  }
}

// ---------- Radial city generator ----------

TEST(RadialCityTest, RejectsBadOptions) {
  RadialCityOptions opt;
  opt.rings = 0;
  EXPECT_TRUE(GenerateRadialCity(opt).status().IsInvalidArgument());
  opt = RadialCityOptions{};
  opt.spokes = 2;
  EXPECT_TRUE(GenerateRadialCity(opt).status().IsInvalidArgument());
  opt = RadialCityOptions{};
  opt.ring_spacing = 0;
  EXPECT_TRUE(GenerateRadialCity(opt).status().IsInvalidArgument());
}

TEST(RadialCityTest, NodeAndEdgeCounts) {
  RadialCityOptions opt;
  opt.rings = 3;
  opt.spokes = 6;
  Result<RoadNetwork> net = GenerateRadialCity(opt);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(net->NodeCount(), 1u + 3u * 6u);
  // Spokes: 6 hub links + 6*2 inter-ring, rings: 3*6 segments; all x2 dirs.
  EXPECT_EQ(net->EdgeCount(), 2u * (6 + 12 + 18));
}

TEST(RadialCityTest, FullyConnected) {
  Result<RoadNetwork> net = GenerateRadialCity(RadialCityOptions{});
  ASSERT_TRUE(net.ok());
  Result<std::vector<double>> costs = ShortestPathCosts(*net, 0);
  ASSERT_TRUE(costs.ok());
  for (double c : *costs) EXPECT_TRUE(std::isfinite(c));
}

TEST(RadialCityTest, SpokesAreHighwaysRingsAreNot) {
  RadialCityOptions opt;
  opt.rings = 4;
  opt.spokes = 8;
  opt.arterial_from_ring = 3;
  Result<RoadNetwork> net = GenerateRadialCity(opt);
  ASSERT_TRUE(net.ok());
  bool has_highway = false;
  bool has_local = false;
  bool has_arterial = false;
  for (const RoadSegment& e : net->edges()) {
    has_highway |= e.road_class == RoadClass::kHighway;
    has_local |= e.road_class == RoadClass::kLocal;
    has_arterial |= e.road_class == RoadClass::kArterial;
  }
  EXPECT_TRUE(has_highway);
  EXPECT_TRUE(has_local);
  EXPECT_TRUE(has_arterial);
  // Hub's edges are all highways (spokes).
  for (EdgeId eid : net->OutEdges(0)) {
    EXPECT_EQ(net->edge(eid).road_class, RoadClass::kHighway);
  }
}

TEST(RadialCityTest, GeometryIsConcentric) {
  RadialCityOptions opt;
  opt.rings = 2;
  opt.spokes = 4;
  opt.ring_spacing = 100.0;
  opt.center = Point{0, 0};
  Result<RoadNetwork> net = GenerateRadialCity(opt);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->node(0).position, (Point{0, 0}));
  // Ring 1 nodes at distance 100, ring 2 at 200.
  for (NodeId n = 1; n <= 4; ++n) {
    EXPECT_NEAR(Distance(net->node(n).position, {0, 0}), 100.0, 1e-9);
  }
  for (NodeId n = 5; n <= 8; ++n) {
    EXPECT_NEAR(Distance(net->node(n).position, {0, 0}), 200.0, 1e-9);
  }
}

TEST(GridCityTest, JitterKeepsNodesNearLattice) {
  GridCityOptions opt;
  opt.rows = 5;
  opt.cols = 5;
  opt.block_size = 100.0;
  opt.jitter = 0.2;
  Result<RoadNetwork> net = GenerateGridCity(opt);
  ASSERT_TRUE(net.ok());
  for (uint32_t r = 0; r < 5; ++r) {
    for (uint32_t c = 0; c < 5; ++c) {
      Point p = net->node(r * 5 + c).position;
      EXPECT_NEAR(p.x, c * 100.0, 20.0 + 1e-9);
      EXPECT_NEAR(p.y, r * 100.0, 20.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace scuba
