// scuba_cli: command-line front end for the SCUBA library.
//
//   scuba_cli generate-map   --out city.map [--rows 21 --cols 21 ...]
//   scuba_cli generate-trace --map city.map --out run.trace [--objects ...]
//   scuba_cli run            --trace run.trace --engine scuba [--eta 0.5 ...]
//   scuba_cli compare        --trace run.trace [--eta 0.5 ...]
//   scuba_cli corrupt-trace  --trace run.trace --out bad.trace [--rate 0.02]
//   scuba_cli checkpoint     --trace run.trace --durable-dir DIR [...]
//   scuba_cli restore        --trace run.trace --durable-dir DIR [...]
//   scuba_cli recover        --trace run.trace --durable-dir DIR [...]
//
// `run` replays a trace into one engine and prints per-round results and
// engine statistics; `compare` replays into SCUBA and the naive oracle and
// reports accuracy. Regions are derived from the trace contents (or, for
// `run --map`, from the road network — which also arms the validator's
// off-map and unknown-destination checks). `corrupt-trace` rewrites a trace
// through the deterministic fault injector so hardened runs can be exercised
// end to end (`run --on-bad-update quarantine` survives it; `strict` fails).
//
// Durability (docs/ARCHITECTURE.md §8): `run --durable-dir DIR` write-ahead
// logs every admitted batch and checkpoints per --checkpoint-every;
// --crash-at POINT [--crash-after N] injects a crash at the N-th occurrence
// of that point and exits nonzero, leaving realistic partial state behind.
// `recover` rebuilds the engine from DIR (newest readable snapshot + WAL
// replay; --json prints the report as one JSON object) and finishes the
// trace; `checkpoint` / `restore` exercise the bare snapshot round-trip. Each
// durable command prints a `state-hash:` line — equal hashes mean
// bit-identical engine state. All four durable commands accept --shards N:
// sharded runs log per-shard WAL chains under manifest-committed checkpoint
// generations (docs/ARCHITECTURE.md §12), and a directory written at one
// shard count recovers into any other. `fsck DIR` verifies a durable
// directory read-only and exits with a distinct code per damage class.
//
// Exit codes mirror StatusCode (1 = invalid argument, 5 = failed
// precondition, 7 = internal/injected crash, 11 = data loss, ...); 0 is
// success only.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/naive_join_engine.h"
#include "common/memory_usage.h"
#include "core/scuba_engine.h"
#include "eval/accuracy.h"
#include "eval/engine_stats.h"
#include "eval/svg_render.h"
#include "gen/trace.h"
#include "gen/workload_generator.h"
#include "network/grid_city.h"
#include "network/network_io.h"
#include "persist/crash.h"
#include "persist/durability.h"
#include "persist/fsck.h"
#include "persist/snapshot.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/engine_factory.h"
#include "shard/shard_durability.h"
#include "shard/sharded_engine.h"
#include "stream/fault_injector.h"
#include "stream/pipeline.h"
#include "stream/update_validator.h"

namespace scuba::cli {
namespace {

/// Minimal --key value / --key=value parser.
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument: " + arg);
      }
      arg = arg.substr(2);
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags.values_[arg] = argv[++i];
      } else {
        flags.values_[arg] = "true";  // boolean flag
      }
    }
    return flags;
  }

  std::string GetString(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    seen_.insert(key);
    return it == values_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    seen_.insert(key);
    return it == values_.end() ? def : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    seen_.insert(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  bool GetBool(const std::string& key, bool def) const {
    auto it = values_.find(key);
    seen_.insert(key);
    if (it == values_.end()) return def;
    return it->second == "true" || it->second == "1";
  }

  /// Error if any provided flag was never consumed (typo protection).
  Status CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      (void)value;
      if (!seen_.contains(key)) {
        return Status::InvalidArgument("unknown flag: --" + key);
      }
    }
    return Status::OK();
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> seen_;
};

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << content;
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Data region derived from the trace contents (+ margin for query ranges).
Rect RegionFromTrace(const Trace& trace, double margin = 300.0) {
  Rect box{0, 0, 0, 0};
  bool first = true;
  auto extend = [&](Point p) {
    Rect r{p.x, p.y, p.x, p.y};
    box = first ? r : Union(box, r);
    first = false;
  };
  for (const TickBatch& b : trace.batches()) {
    for (const LocationUpdate& u : b.object_updates) extend(u.position);
    for (const QueryUpdate& u : b.query_updates) extend(u.position);
  }
  if (first) return Rect{0, 0, 1000, 1000};
  return Rect{box.min_x - margin, box.min_y - margin, box.max_x + margin,
              box.max_y + margin};
}

/// Every error exits with its StatusCode value (kInvalidArgument = 1 ...
/// kDataLoss = 11), so scripts and the CI smoke can dispatch on the class of
/// failure without parsing stderr. Never returns 0.
int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  const int code = static_cast<int>(s.code());
  return code == 0 ? 1 : code;
}

int CmdGenerateMap(const Flags& flags) {
  GridCityOptions opt;
  opt.rows = static_cast<uint32_t>(flags.GetInt("rows", 21));
  opt.cols = static_cast<uint32_t>(flags.GetInt("cols", 21));
  opt.block_size = flags.GetDouble("block", 500.0);
  opt.arterial_every = static_cast<uint32_t>(flags.GetInt("arterial", 5));
  opt.highway_every = static_cast<uint32_t>(flags.GetInt("highway", 10));
  opt.jitter = flags.GetDouble("jitter", 0.1);
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 0x5C0BA));
  std::string out = flags.GetString("out", "city.map");
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  Result<RoadNetwork> net = GenerateGridCity(opt);
  if (!net.ok()) return Fail(net.status());
  Status s = SaveNetwork(*net, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %zu nodes, %zu segments, area %.0f x %.0f\n",
              out.c_str(), net->NodeCount(), net->EdgeCount(),
              net->BoundingBox().Width(), net->BoundingBox().Height());
  return 0;
}

int CmdGenerateTrace(const Flags& flags) {
  std::string map_path = flags.GetString("map", "");
  WorkloadOptions opt;
  opt.num_objects = static_cast<uint32_t>(flags.GetInt("objects", 10000));
  opt.num_queries = static_cast<uint32_t>(flags.GetInt("queries", 10000));
  opt.skew = static_cast<uint32_t>(flags.GetInt("skew", 100));
  opt.mixed_group_fraction = flags.GetDouble("mixed-fraction", 0.25);
  opt.min_range = flags.GetDouble("min-range", 50.0);
  opt.max_range = flags.GetDouble("max-range", 200.0);
  opt.query_filter_probability = flags.GetDouble("query-filter", 0.0);
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 0x5C0BA));
  int ticks = static_cast<int>(flags.GetInt("ticks", 12));
  double fraction = flags.GetDouble("update-fraction", 1.0);
  std::string out = flags.GetString("out", "run.trace");
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  RoadNetwork network;
  if (map_path.empty()) {
    network = DefaultBenchmarkCity(opt.seed);
  } else {
    Result<RoadNetwork> net = LoadNetwork(map_path);
    if (!net.ok()) return Fail(net.status());
    network = std::move(net).value();
  }
  Result<ObjectSimulator> sim = GenerateWorkload(&network, opt);
  if (!sim.ok()) return Fail(sim.status());
  ObjectSimulator simulator = std::move(sim).value();
  Trace trace = RecordTrace(&simulator, ticks, fraction);
  Status s = WriteFile(out, trace.Serialize());
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %zu ticks, %zu updates (%s in memory)\n", out.c_str(),
              trace.TickCount(), trace.TotalUpdates(),
              FormatBytes(trace.EstimateMemoryUsage()).c_str());
  return 0;
}

Result<Trace> LoadTrace(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return Trace::Parse(*text);
}

/// SCUBA engine options shared by run / checkpoint / restore / recover. The
/// durable commands MUST rebuild the engine with the same options the run
/// that wrote the directory used — the snapshot's options fingerprint
/// enforces it — so they all read the same flags through this one helper.
Result<ScubaOptions> ScubaOptionsFromFlags(const Flags& flags,
                                           const Rect& region,
                                           BadUpdatePolicy policy) {
  ScubaOptions opt;
  opt.region = region;
  opt.grid_cells = static_cast<uint32_t>(flags.GetInt("grid-cells", 100));
  opt.theta_d = flags.GetDouble("theta-d", 100.0);
  opt.theta_s = flags.GetDouble("theta-s", 10.0);
  opt.delta = flags.GetInt("delta", 2);
  opt.enable_cluster_splitting = flags.GetBool("splitting", false);
  opt.join_threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  opt.ingest_threads =
      static_cast<uint32_t>(flags.GetInt("ingest-threads", 1));
  // Sharding (docs/ARCHITECTURE.md §11). Bit-identical to --shards 1, so the
  // snapshot options fingerprint excludes both flags.
  opt.shards = static_cast<uint32_t>(flags.GetInt("shards", 1));
  Result<RebalanceMode> rebalance =
      ParseRebalanceMode(flags.GetString("rebalance", "off"));
  if (!rebalance.ok()) return rebalance.status();
  opt.rebalance = *rebalance;
  opt.on_bad_update = policy;
  opt.audit_every_n_rounds =
      static_cast<uint32_t>(flags.GetInt("audit-every", 0));
  opt.checkpoint.every_n_rounds =
      static_cast<uint32_t>(flags.GetInt("checkpoint-every", 0));
  opt.checkpoint.keep_last_k =
      static_cast<uint32_t>(flags.GetInt("keep-last", 2));
  // Shard fault isolation (docs/ARCHITECTURE.md §13). Non-semantic like the
  // thread counts — a clean run is bit-identical under every setting — so the
  // snapshot options fingerprint excludes all of these too.
  Result<ShardFailurePolicy> on_shard_failure = ParseShardFailurePolicy(
      flags.GetString("on-shard-failure", "fail"));
  if (!on_shard_failure.ok()) return on_shard_failure.status();
  opt.supervision.on_failure = *on_shard_failure;
  opt.supervision.max_recovery_attempts = static_cast<uint32_t>(
      flags.GetInt("shard-max-recovery-attempts", 3));
  opt.supervision.backoff_base_rounds =
      static_cast<uint32_t>(flags.GetInt("shard-backoff-rounds", 1));
  opt.supervision.round_deadline_seconds =
      flags.GetDouble("shard-round-deadline", 0.0);
  opt.supervision.fault_seed =
      static_cast<uint64_t>(flags.GetInt("shard-fault-seed", 0x5C0BA));
  opt.supervision.fault_rate = flags.GetDouble("shard-fault-rate", 0.0);
  opt.supervision.fault_spec = flags.GetString("shard-fault-spec", "");
  const double eta = flags.GetDouble("eta", 0.0);
  if (eta > 0.0) {
    opt.shedding.mode = LoadSheddingMode::kFixed;
    opt.shedding.eta = eta;
  }
  // Observability (docs/ARCHITECTURE.md §9). Telemetry never affects engine
  // results and is excluded from the snapshot options fingerprint, so the
  // durable commands may freely differ in these flags.
  opt.telemetry.metrics_out = flags.GetString("metrics-out", "");
  opt.telemetry.trace_out = flags.GetString("trace-out", "");
  return opt;
}

/// Region + validator config from --map (road-network bounds; arms the
/// off-map and unknown-destination checks) or from the trace contents.
Result<Rect> ResolveRegion(const std::string& map_path, const Trace& trace,
                           ValidatorConfig* vconfig) {
  if (map_path.empty()) return RegionFromTrace(trace);
  Result<RoadNetwork> net = LoadNetwork(map_path);
  if (!net.ok()) return net.status();
  const Rect box = net->BoundingBox();
  constexpr double kMargin = 300.0;
  const Rect region{box.min_x - kMargin, box.min_y - kMargin,
                    box.max_x + kMargin, box.max_y + kMargin};
  vconfig->bounds = region;
  vconfig->check_bounds = true;
  vconfig->node_count = net->NodeCount();
  return region;
}

/// --crash-at NAME [--crash-after N]: a disarmed injector when absent.
Result<CrashInjector> CrashInjectorFromFlags(const Flags& flags) {
  const std::string at = flags.GetString("crash-at", "");
  const uint64_t after =
      static_cast<uint64_t>(flags.GetInt("crash-after", 1));
  if (at.empty()) return CrashInjector();
  Result<CrashPoint> point = ParseCrashPoint(at);
  if (!point.ok()) return point.status();
  return CrashInjector(*point, after);
}

void PrintStateHash(uint64_t hash) {
  std::printf("state-hash: %016llx\n", static_cast<unsigned long long>(hash));
}

int CmdRun(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  std::string engine_name = flags.GetString("engine", "scuba");
  std::string map_path = flags.GetString("map", "");
  Timestamp delta = flags.GetInt("delta", 2);
  bool quiet = flags.GetBool("quiet", false);
  std::string csv_path = flags.GetString("csv", "");
  std::string policy_name = flags.GetString("on-bad-update", "strict");
  std::string durable_dir = flags.GetString("durable-dir", "");
  Result<CrashInjector> crash = CrashInjectorFromFlags(flags);
  if (!crash.ok()) return Fail(crash.status());

  Result<BadUpdatePolicy> policy = ParseBadUpdatePolicy(policy_name);
  if (!policy.ok()) return Fail(policy.status());

  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());

  // With a map the region comes from the road network — independent of the
  // (possibly corrupted) trace contents — and arms the validator's off-map
  // and unknown-destination checks.
  ValidatorConfig vconfig;
  vconfig.policy = *policy;
  Result<Rect> region_result = ResolveRegion(map_path, *trace, &vconfig);
  if (!region_result.ok()) return Fail(region_result.status());
  const Rect region = *region_result;
  // The validator screens the stream only under the drop/repair policies; a
  // strict run keeps the legacy path, where the engine's own validation
  // fails the replay on the first bad tuple.
  UpdateValidator validator(vconfig);
  UpdateValidator* screen =
      *policy == BadUpdatePolicy::kStrict ? nullptr : &validator;

  Result<ScubaOptions> scuba_opt_result =
      ScubaOptionsFromFlags(flags, region, *policy);
  if (!scuba_opt_result.ok()) return Fail(scuba_opt_result.status());
  const ScubaOptions scuba_opt = *scuba_opt_result;
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  Result<EngineHandle> handle = MakeEngine(scuba_opt, engine_name);
  if (!handle.ok()) return Fail(handle.status());
  QueryProcessor* engine = handle->engine.get();
  ScubaEngine* scuba_engine = handle->scuba;
  ShardedEngine* sharded_engine = handle->sharded;

  Result<DurabilityHandle> durability = OpenDurability(
      durable_dir, scuba_opt, &*handle, screen, vconfig, &*crash);
  if (!durability.ok()) return Fail(durability.status());

  std::ofstream csv;
  if (!csv_path.empty()) {
    csv.open(csv_path, std::ios::trunc);
    if (!csv) return Fail(Status::IoError("cannot open for write: " + csv_path));
    csv << "tick,matches,join_seconds,maintenance_seconds,memory_bytes\n";
  }
  if (!quiet) std::printf("%8s %10s\n", "tick", "matches");
  Status s = ReplayTrace(*trace, engine, delta,
                         [&](Timestamp now, const ResultSet& r) {
                           if (!quiet) {
                             std::printf("%8lld %10zu\n",
                                         static_cast<long long>(now), r.size());
                           }
                           if (csv.is_open()) {
                             csv << now << ',' << r.size() << ','
                                 << engine->stats().last_join_seconds << ','
                                 << engine->stats().last_maintenance_seconds
                                 << ',' << engine->EstimateMemoryUsage() << '\n';
                           }
                         },
                         screen, durability->sink.get());
  if (!s.ok()) return Fail(s);
  if (csv.is_open() && !csv.good()) {
    return Fail(Status::IoError("csv write failed: " + csv_path));
  }
  if (Status ft = handle->FlushTelemetry(); !ft.ok()) return Fail(ft);
  std::printf("%s\n", FormatStats(engine->name(), engine->stats()).c_str());
  std::printf("memory: %s\n", FormatBytes(engine->EstimateMemoryUsage()).c_str());
  if (scuba_engine != nullptr) PrintStateHash(handle->StateHash());
  if (sharded_engine != nullptr) {
    std::printf("shards: %u  handoffs: %llu  ghosts: %llu\n",
                sharded_engine->shard_count(),
                static_cast<unsigned long long>(sharded_engine->handoffs()),
                static_cast<unsigned long long>(
                    sharded_engine->ghosts_published()));
    if (sharded_engine->rebalance_recommendations() > 0) {
      std::printf("rebalance: %llu recommendation(s); last: %s\n",
                  static_cast<unsigned long long>(
                      sharded_engine->rebalance_recommendations()),
                  sharded_engine->last_recommendation().c_str());
    }
    PrintStateHash(handle->StateHash());
    if (sharded_engine->supervisor() != nullptr) {
      std::printf("%s\n", sharded_engine->supervisor()->HealthDump().c_str());
    }
  }
  if (screen != nullptr) {
    std::printf("validator: %s\n", screen->FormatStats().c_str());
    const QuarantineLog& log = screen->quarantine();
    if (log.total() > 0) {
      std::printf("quarantine (last %zu of %llu):\n", log.size(),
                  static_cast<unsigned long long>(log.total()));
      for (const QuarantinedUpdate& q : log.Snapshot()) {
        std::printf("  %s %u t=%lld %s: %s\n",
                    q.kind == EntityKind::kObject ? "object" : "query", q.id,
                    static_cast<long long>(q.time),
                    std::string(RejectReasonName(q.reason)).c_str(),
                    q.detail.c_str());
      }
    }
  }
  return 0;
}

/// Replays a trace to completion and writes one snapshot of the final engine
/// state (no WAL) — the bare Checkpoint() surface.
int CmdCheckpoint(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  std::string map_path = flags.GetString("map", "");
  std::string durable_dir = flags.GetString("durable-dir", "");
  Timestamp delta = flags.GetInt("delta", 2);
  std::string policy_name = flags.GetString("on-bad-update", "strict");
  Result<BadUpdatePolicy> policy = ParseBadUpdatePolicy(policy_name);
  if (!policy.ok()) return Fail(policy.status());
  if (durable_dir.empty()) {
    return Fail(Status::InvalidArgument("--durable-dir is required"));
  }
  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  ValidatorConfig vconfig;
  vconfig.policy = *policy;
  Result<Rect> region = ResolveRegion(map_path, *trace, &vconfig);
  if (!region.ok()) return Fail(region.status());
  Result<ScubaOptions> opt_result =
      ScubaOptionsFromFlags(flags, *region, *policy);
  if (!opt_result.ok()) return Fail(opt_result.status());
  const ScubaOptions opt = *opt_result;
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  UpdateValidator validator(vconfig);
  UpdateValidator* screen =
      *policy == BadUpdatePolicy::kStrict ? nullptr : &validator;
  Result<EngineHandle> handle = MakeEngine(opt);
  if (!handle.ok()) return Fail(handle.status());
  Status s = ReplayTrace(*trace, handle->engine.get(), delta, nullptr, screen);
  if (!s.ok()) return Fail(s);
  s = handle->sharded != nullptr ? handle->sharded->Checkpoint(durable_dir)
                                 : handle->scuba->Checkpoint(durable_dir);
  if (!s.ok()) return Fail(s);
  if (Status ft = handle->FlushTelemetry(); !ft.ok()) return Fail(ft);
  if (handle->sharded != nullptr) {
    const EngineSnapshotStats snapshot = handle->sharded->StatsSnapshot();
    std::printf(
        "checkpointed %zu clusters after %llu rounds to %s (%s; %u shards)\n",
        handle->sharded->ClusterCount(),
        static_cast<unsigned long long>(snapshot.eval.evaluations),
        durable_dir.c_str(),
        FormatBytes(snapshot.eval.last_checkpoint_bytes).c_str(),
        handle->sharded->shard_count());
  } else {
    const EngineSnapshotStats snapshot = handle->scuba->StatsSnapshot();
    std::printf("checkpointed %zu clusters after %llu rounds to %s (%s)\n",
                handle->scuba->ClusterCount(),
                static_cast<unsigned long long>(snapshot.eval.evaluations),
                durable_dir.c_str(),
                FormatBytes(snapshot.eval.last_checkpoint_bytes).c_str());
  }
  PrintStateHash(handle->StateHash());
  return 0;
}

/// Loads the newest snapshot into a freshly built engine (no WAL replay) and
/// prints its state hash — must equal the hash `checkpoint` printed.
int CmdRestore(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  std::string map_path = flags.GetString("map", "");
  std::string durable_dir = flags.GetString("durable-dir", "");
  std::string policy_name = flags.GetString("on-bad-update", "strict");
  Result<BadUpdatePolicy> policy = ParseBadUpdatePolicy(policy_name);
  if (!policy.ok()) return Fail(policy.status());
  if (durable_dir.empty()) {
    return Fail(Status::InvalidArgument("--durable-dir is required"));
  }
  // The trace is read only to re-derive the region: the engine must be
  // rebuilt with the exact options of the run that checkpointed.
  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  ValidatorConfig vconfig;
  vconfig.policy = *policy;
  Result<Rect> region = ResolveRegion(map_path, *trace, &vconfig);
  if (!region.ok()) return Fail(region.status());
  Result<ScubaOptions> opt_result =
      ScubaOptionsFromFlags(flags, *region, *policy);
  if (!opt_result.ok()) return Fail(opt_result.status());
  const ScubaOptions opt = *opt_result;
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  Result<EngineHandle> handle = MakeEngine(opt);
  if (!handle.ok()) return Fail(handle.status());
  if (handle->sharded != nullptr) {
    // A sharded restore reads the NEWEST manifest only and re-partitions the
    // saved clusters into this engine's stripe layout.
    Status s = handle->sharded->Restore(durable_dir);
    if (!s.ok()) return Fail(s);
    std::printf("restored %zu clusters (%llu rounds) from %s into %u shards\n",
                handle->sharded->ClusterCount(),
                static_cast<unsigned long long>(
                    handle->sharded->StatsSnapshot().eval.evaluations),
                durable_dir.c_str(), handle->sharded->shard_count());
    PrintStateHash(handle->StateHash());
    return 0;
  }
  Status s = handle->scuba->Restore(durable_dir);
  if (!s.ok()) return Fail(s);
  InvariantAuditReport audit = handle->scuba->AuditInvariants();
  std::printf("restored %zu clusters (%llu rounds) from %s; audit: %s\n",
              handle->scuba->ClusterCount(),
              static_cast<unsigned long long>(
                  handle->scuba->StatsSnapshot().eval.evaluations),
              durable_dir.c_str(), audit.clean() ? "clean" : "DIRTY");
  PrintStateHash(handle->StateHash());
  return audit.clean() ? 0 : Fail(Status::Corruption(audit.ToString()));
}

/// Crash recovery: rebuilds the engine from the durable directory (newest
/// readable snapshot + WAL replay), then finishes the trace from where the
/// log ends — WAL-logging and checkpointing the remainder just like `run`.
int CmdRecover(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  std::string map_path = flags.GetString("map", "");
  std::string durable_dir = flags.GetString("durable-dir", "");
  Timestamp delta = flags.GetInt("delta", 2);
  bool quiet = flags.GetBool("quiet", false);
  bool json = flags.GetBool("json", false);
  std::string policy_name = flags.GetString("on-bad-update", "strict");
  Result<BadUpdatePolicy> policy = ParseBadUpdatePolicy(policy_name);
  if (!policy.ok()) return Fail(policy.status());
  if (durable_dir.empty()) {
    return Fail(Status::InvalidArgument("--durable-dir is required"));
  }
  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  ValidatorConfig vconfig;
  vconfig.policy = *policy;
  Result<Rect> region = ResolveRegion(map_path, *trace, &vconfig);
  if (!region.ok()) return Fail(region.status());
  Result<ScubaOptions> opt_result =
      ScubaOptionsFromFlags(flags, *region, *policy);
  if (!opt_result.ok()) return Fail(opt_result.status());
  const ScubaOptions opt = *opt_result;
  Result<CrashInjector> crash = CrashInjectorFromFlags(flags);
  if (!crash.ok()) return Fail(crash.status());
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  UpdateValidator validator(vconfig);
  UpdateValidator* screen =
      *policy == BadUpdatePolicy::kStrict ? nullptr : &validator;
  if (!quiet) std::printf("%8s %10s\n", "tick", "matches");
  const ResultSink sink = [&](Timestamp now, const ResultSet& r) {
    if (!quiet) {
      std::printf("%8lld %10zu\n", static_cast<long long>(now), r.size());
    }
  };

  Result<EngineHandle> handle = MakeEngine(opt);
  if (!handle.ok()) return Fail(handle.status());

  // WAL sequence numbers are global batch indices (seq 0 = trace batch 0),
  // so the replayed log tells us exactly where to resume the trace.
  uint64_t next_seq = 0;
  if (handle->sharded != nullptr) {
    // Sharded recovery: newest manifest whose artifacts all verify, with
    // generation-by-generation fallback, then cross-chain WAL merge. A
    // directory written at any shard count recovers into --shards N.
    Result<ShardedRecoveryReport> report = RecoverShardedEngine(
        durable_dir, handle->sharded, screen, /*rng=*/nullptr, sink);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s\n",
                json ? report->ToJson().c_str() : report->ToString().c_str());
    next_seq = report->next_seq;
  } else {
    Result<RecoveryReport> report = RecoverEngine(
        durable_dir, handle->scuba, screen, /*rng=*/nullptr, sink);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s\n",
                json ? report->ToJson().c_str() : report->ToString().c_str());
    next_seq = report->next_seq;
  }
  if (next_seq < trace->TickCount()) {
    Result<DurabilityHandle> durability = OpenDurability(
        durable_dir, opt, &*handle, screen, vconfig, &*crash);
    if (!durability.ok()) return Fail(durability.status());
    Status s = ReplayTrace(*trace, handle->engine.get(), delta, sink, screen,
                           durability->sink.get(),
                           static_cast<size_t>(next_seq));
    if (!s.ok()) return Fail(s);
  }
  if (Status ft = handle->FlushTelemetry(); !ft.ok()) return Fail(ft);
  const EngineSnapshotStats snapshot = handle->sharded != nullptr
                                           ? handle->sharded->StatsSnapshot()
                                           : handle->scuba->StatsSnapshot();
  std::printf("%s\n", snapshot.Format(handle->engine->name()).c_str());
  PrintStateHash(handle->StateHash());
  return 0;
}

int CmdCorruptTrace(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  std::string out = flags.GetString("out", "bad.trace");
  double rate = flags.GetDouble("rate", 0.02);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 0x5C0BA));
  uint32_t burst_size = static_cast<uint32_t>(flags.GetInt("burst-size", 8));
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());

  FaultPlan plan = FaultPlan::AllFaults(rate, RegionFromTrace(*trace, 0.0),
                                        /*node_count=*/0);
  // NaN/Inf do not round-trip through the text trace format, so the
  // serialized corruption sticks to representable fault classes.
  plan.corrupt_coordinate = 0.0;
  plan.burst_size = burst_size;
  FaultInjector injector(plan, seed);

  Trace dirty;
  for (const TickBatch& batch : trace->batches()) {
    TickBatch corrupted;
    corrupted.time = batch.time;
    corrupted.object_updates = batch.object_updates;
    corrupted.query_updates = batch.query_updates;
    injector.CorruptBatch(batch.time, &corrupted.object_updates,
                          &corrupted.query_updates, nullptr, nullptr);
    dirty.Append(std::move(corrupted));
  }
  Status s = WriteFile(out, dirty.Serialize());
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %zu ticks, %zu updates\n", out.c_str(),
              dirty.TickCount(), dirty.TotalUpdates());
  std::printf("faults: %s\n", injector.stats().ToString().c_str());
  return 0;
}

int CmdCompare(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  Timestamp delta = flags.GetInt("delta", 2);
  double eta = flags.GetDouble("eta", 0.0);
  uint32_t threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  uint32_t ingest_threads =
      static_cast<uint32_t>(flags.GetInt("ingest-threads", 1));
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  Rect region = RegionFromTrace(*trace);

  ScubaOptions opt;
  opt.region = region;
  opt.delta = delta;
  opt.join_threads = threads;
  opt.ingest_threads = ingest_threads;
  if (eta > 0.0) {
    opt.shedding.mode = LoadSheddingMode::kFixed;
    opt.shedding.eta = eta;
  }
  Result<std::unique_ptr<ScubaEngine>> scuba_engine = ScubaEngine::Create(opt);
  if (!scuba_engine.ok()) return Fail(scuba_engine.status());
  NaiveJoinEngine oracle;

  std::vector<ResultSet> truth;
  Status s = ReplayTrace(*trace, &oracle, delta,
                         [&](Timestamp, const ResultSet& r) {
                           truth.push_back(r);
                         });
  if (!s.ok()) return Fail(s);
  AccuracyAccumulator acc;
  size_t round = 0;
  s = ReplayTrace(*trace, scuba_engine->get(), delta,
                  [&](Timestamp, const ResultSet& r) {
                    acc.Add(CompareResults(truth[round++], r));
                  });
  if (!s.ok()) return Fail(s);

  std::printf("rounds: %zu\n", acc.rounds());
  std::printf("%s\n", acc.total().ToString().c_str());
  std::printf("%s\n",
              (*scuba_engine)->StatsSnapshot().Format("scuba").c_str());
  std::printf("%s\n", FormatStats("naive", oracle.stats()).c_str());
  return 0;
}

int CmdRender(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  std::string out = flags.GetString("out", "snapshot.svg");
  Timestamp delta = flags.GetInt("delta", 2);
  double width = flags.GetDouble("width", 1000.0);
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  Rect region = RegionFromTrace(*trace);

  ScubaOptions opt;
  opt.region = region;
  opt.delta = delta;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
  if (!engine.ok()) return Fail(engine.status());
  // Ingest the whole trace WITHOUT the final round's post-join maintenance
  // relocation, so the snapshot shows positions as reported: replay all but
  // evaluate only intermediate rounds.
  Status s = ReplayTrace(*trace, engine->get(), delta, nullptr);
  if (!s.ok()) return Fail(s);

  SvgRenderOptions render;
  render.image_width = width;
  Result<std::string> svg =
      RenderClustersSvg((*engine)->store(), region, render);
  if (!svg.ok()) return Fail(svg.status());
  s = WriteFile(out, *svg);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: %zu clusters at tick %zu\n", out.c_str(),
              (*engine)->ClusterCount(), trace->TickCount());
  return 0;
}

/// Read-only verification of a durable directory: `scuba_cli fsck DIR`.
/// Exits 0 when clean, else with the worst damage class found (values 20-25,
/// persist/fsck.h) — distinct from the StatusCode exit codes so scripts can
/// tell "the directory is damaged" from "fsck itself failed". Never mutates.
int CmdFsck(int argc, char** argv) {
  std::string dir;
  int first = 2;
  if (argc > 2 && std::string(argv[2]).rfind("--", 0) != 0) {
    dir = argv[2];
    first = 3;
  }
  Result<Flags> flags = Flags::Parse(argc, argv, first);
  if (!flags.ok()) return Fail(flags.status());
  if (dir.empty()) dir = flags->GetString("dir", "");
  const bool json = flags->GetBool("json", false);
  Status consumed = flags->CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);
  if (dir.empty()) {
    return Fail(Status::InvalidArgument("usage: scuba_cli fsck <dir> [--json]"));
  }
  Result<FsckReport> report = FsckDurableDir(dir);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s\n",
              json ? report->ToJson().c_str() : report->ToString().c_str());
  return report->exit_code;
}

/// Region for the serving commands: --region "minx,miny,maxx,maxy" wins,
/// else the road network's bounds (arming the validator's map checks), else
/// the RegionFromTrace default box. The server and any offline comparison
/// replay MUST resolve the same region or their engines diverge.
Result<Rect> ResolveServeRegion(const std::string& map_path,
                                const std::string& region_spec,
                                ValidatorConfig* vconfig) {
  if (!region_spec.empty()) {
    Rect r{};
    if (std::sscanf(region_spec.c_str(), "%lf,%lf,%lf,%lf", &r.min_x,
                    &r.min_y, &r.max_x, &r.max_y) != 4 ||
        r.min_x >= r.max_x || r.min_y >= r.max_y) {
      return Status::InvalidArgument(
          "--region wants minx,miny,maxx,maxy with min < max: " + region_spec);
    }
    return r;
  }
  if (!map_path.empty()) {
    Trace empty;
    return ResolveRegion(map_path, empty, vconfig);
  }
  return Rect{0, 0, 1000, 1000};
}

/// Long-lived subscription server (docs/ARCHITECTURE.md §14): clients
/// register continuous queries and stream update batches; every evaluation
/// round pushes per-session result deltas. Runs until a client sends
/// shutdown (or a fatal engine/durability error), then prints serve stats
/// and the final state hash — comparable against an offline `run` of the
/// same stream.
int CmdServe(const Flags& flags) {
  std::string engine_name = flags.GetString("engine", "scuba");
  std::string map_path = flags.GetString("map", "");
  std::string region_spec = flags.GetString("region", "");
  std::string policy_name = flags.GetString("on-bad-update", "strict");
  std::string durable_dir = flags.GetString("durable-dir", "");
  std::string port_file = flags.GetString("port-file", "");
  serve::ServeOptions serve_opt;
  serve_opt.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  serve_opt.max_sessions =
      static_cast<uint32_t>(flags.GetInt("max-sessions", 64));
  serve_opt.max_queue_bytes =
      static_cast<size_t>(flags.GetInt("max-queue-bytes", 1 << 20));
  serve_opt.memory_budget_bytes =
      static_cast<size_t>(flags.GetInt("serve-memory-budget", 0));
  Result<serve::SlowConsumerPolicy> slow = serve::ParseSlowConsumerPolicy(
      flags.GetString("slow-consumer", "coalesce"));
  if (!slow.ok()) return Fail(slow.status());
  serve_opt.slow_consumer = *slow;
  Result<CrashInjector> crash = CrashInjectorFromFlags(flags);
  if (!crash.ok()) return Fail(crash.status());
  Result<BadUpdatePolicy> policy = ParseBadUpdatePolicy(policy_name);
  if (!policy.ok()) return Fail(policy.status());

  ValidatorConfig vconfig;
  vconfig.policy = *policy;
  Result<Rect> region = ResolveServeRegion(map_path, region_spec, &vconfig);
  if (!region.ok()) return Fail(region.status());
  UpdateValidator validator(vconfig);
  UpdateValidator* screen =
      *policy == BadUpdatePolicy::kStrict ? nullptr : &validator;

  Result<ScubaOptions> opt = ScubaOptionsFromFlags(flags, *region, *policy);
  if (!opt.ok()) return Fail(opt.status());
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  Result<EngineHandle> handle = MakeEngine(*opt, engine_name);
  if (!handle.ok()) return Fail(handle.status());
  Result<DurabilityHandle> durability = OpenDurability(
      durable_dir, *opt, &*handle, screen, vconfig, &*crash);
  if (!durability.ok()) return Fail(durability.status());

  // With telemetry on, serve metrics register on the engine registry so the
  // scuba_serve_* family rides the per-round JSONL stream (schema v4).
  EngineTelemetry* telemetry =
      handle->scuba != nullptr     ? handle->scuba->telemetry()
      : handle->sharded != nullptr ? handle->sharded->telemetry()
                                   : nullptr;
  serve::ServerDeps deps;
  deps.engine = handle->engine.get();
  deps.screen = screen;
  deps.durability = durability->sink.get();
  deps.registry = telemetry != nullptr ? &telemetry->registry() : nullptr;
  Result<std::unique_ptr<serve::ScubaServer>> server =
      serve::ScubaServer::Create(serve_opt, deps);
  if (!server.ok()) return Fail(server.status());
  if (Status s = (*server)->Start(); !s.ok()) return Fail(s);
  std::printf("serving %s on 127.0.0.1:%u (protocol v%u, slow-consumer=%s)\n",
              std::string(handle->engine->name()).c_str(), (*server)->port(),
              serve::kProtocolVersion,
              std::string(serve::SlowConsumerPolicyName(serve_opt.slow_consumer))
                  .c_str());
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Written after listen(), so a reader that sees the file can connect.
    Status s = WriteFile(port_file, std::to_string((*server)->port()));
    if (!s.ok()) {
      (*server)->RequestStop();
      return Fail(s);
    }
  }
  Status s = (*server)->Wait();
  if (!s.ok()) return Fail(s);
  const serve::ServerStats st = (*server)->stats();
  if (Status ft = handle->FlushTelemetry(); !ft.ok()) return Fail(ft);
  std::printf(
      "serve: sessions=%llu batches=%llu rounds=%llu deltas=%llu "
      "coalesces=%llu disconnects=%llu last-round-matches=%llu%s\n",
      static_cast<unsigned long long>(st.sessions_accepted),
      static_cast<unsigned long long>(st.batches),
      static_cast<unsigned long long>(st.rounds),
      static_cast<unsigned long long>(st.deltas_pushed),
      static_cast<unsigned long long>(st.coalesces),
      static_cast<unsigned long long>(st.disconnects),
      static_cast<unsigned long long>(st.last_round_matches),
      st.last_round_degraded ? " (degraded)" : "");
  if (screen != nullptr) {
    std::printf("validator: %s\n", screen->FormatStats().c_str());
  }
  PrintStateHash(handle->StateHash());
  return 0;
}

/// Drives a running server with a recorded trace over the client library:
/// one update batch per trace tick, evaluating at the same --delta
/// boundaries ReplayTrace uses, folding every pushed delta. With
/// --compare-offline (default) the folded stream is then checked round by
/// round against an in-process offline replay of the same trace — the
/// loopback determinism contract — and the offline engine's state hash is
/// printed for comparison with the server's. --shutdown stops the server
/// afterwards (it then prints ITS state hash).
int CmdServeReplay(const Flags& flags) {
  std::string trace_path = flags.GetString("trace", "run.trace");
  std::string map_path = flags.GetString("map", "");
  std::string policy_name = flags.GetString("on-bad-update", "strict");
  Timestamp delta = flags.GetInt("delta", 2);
  int port = static_cast<int>(flags.GetInt("port", 0));
  std::string port_file = flags.GetString("port-file", "");
  const bool shutdown = flags.GetBool("shutdown", false);
  const bool compare = flags.GetBool("compare-offline", true);
  if (delta <= 0) {
    return Fail(Status::InvalidArgument("delta must be positive"));
  }

  Result<BadUpdatePolicy> policy = ParseBadUpdatePolicy(policy_name);
  if (!policy.ok()) return Fail(policy.status());
  Result<Trace> trace = LoadTrace(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  ValidatorConfig vconfig;
  vconfig.policy = *policy;
  Result<Rect> region = ResolveRegion(map_path, *trace, &vconfig);
  if (!region.ok()) return Fail(region.status());
  Result<ScubaOptions> opt = ScubaOptionsFromFlags(flags, *region, *policy);
  if (!opt.ok()) return Fail(opt.status());
  Status consumed = flags.CheckAllConsumed();
  if (!consumed.ok()) return Fail(consumed);

  if (port == 0) {
    if (port_file.empty()) {
      return Fail(Status::InvalidArgument("need --port or --port-file"));
    }
    // The server writes the file only once it is listening; poll for it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (true) {
      Result<std::string> text = ReadFile(port_file);
      if (text.ok() && !text->empty()) {
        port = std::atoi(text->c_str());
        if (port > 0) break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        return Fail(Status::IoError("timed out waiting for " + port_file));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  serve::ScubaClient::Options copt;
  copt.name = "serve-replay";
  Result<serve::ScubaClient> client =
      serve::ScubaClient::Connect(static_cast<uint16_t>(port), copt);
  if (!client.ok()) return Fail(client.status());
  if (Status s = client->SubscribeAll(); !s.ok()) return Fail(s);

  // Replay: one kUpdateBatch per trace tick; the client owns the evaluate
  // flag, so rounds close at exactly the offline ReplayTrace boundaries.
  std::vector<ResultSet> served;
  for (size_t i = 0; i < trace->TickCount(); ++i) {
    const TickBatch& batch = trace->batch(i);
    serve::UpdateBatchMsg msg;
    msg.time = batch.time;
    msg.evaluate = (i + 1) % static_cast<size_t>(delta) == 0;
    msg.objects = batch.object_updates;
    msg.queries = batch.query_updates;
    Result<serve::TickAckMsg> ack = client->SendBatch(msg);
    if (!ack.ok()) return Fail(ack.status());
    if (msg.evaluate) served.push_back(client->folded());
  }
  std::printf(
      "serve-replay: %zu batches, %zu rounds, %llu deltas "
      "(%llu coalesced snapshots), %llu result bytes, final fold %zu "
      "matches\n",
      trace->TickCount(), served.size(),
      static_cast<unsigned long long>(client->deltas_received()),
      static_cast<unsigned long long>(client->coalesced_snapshots()),
      static_cast<unsigned long long>(client->result_bytes_received()),
      client->folded().size());

  int exit_code = 0;
  if (compare) {
    UpdateValidator validator(vconfig);
    UpdateValidator* screen =
        *policy == BadUpdatePolicy::kStrict ? nullptr : &validator;
    Result<EngineHandle> offline = MakeEngine(*opt, "scuba");
    if (!offline.ok()) return Fail(offline.status());
    size_t round = 0;
    size_t mismatched_round = 0;
    ResultSet last_offline;
    Status s = ReplayTrace(
        *trace, offline->engine.get(), delta,
        [&](Timestamp, const ResultSet& r) {
          if (round < served.size() && mismatched_round == 0 &&
              !(served[round] == r)) {
            mismatched_round = round + 1;
          }
          last_offline = r;
          ++round;
        },
        screen, nullptr);
    if (!s.ok()) return Fail(s);
    // A coalesced snapshot legally skips rounds, so per-round comparison
    // only binds when the delta stream arrived whole; the final fold must
    // match either way.
    const bool whole_stream = client->coalesced_snapshots() == 0;
    if (round != served.size() && whole_stream) {
      std::fprintf(stderr, "offline replay ran %zu rounds, server %zu\n",
                   round, served.size());
      exit_code = static_cast<int>(StatusCode::kInternal);
    } else if (whole_stream && mismatched_round != 0) {
      std::fprintf(stderr,
                   "served delta stream diverges from offline replay at "
                   "round %zu\n",
                   mismatched_round);
      exit_code = static_cast<int>(StatusCode::kInternal);
    } else if (!(client->folded() == last_offline)) {
      std::fprintf(stderr, "final fold diverges from offline replay\n");
      exit_code = static_cast<int>(StatusCode::kInternal);
    } else {
      std::printf(
          "serve-replay: folded delta stream matches offline replay "
          "(%zu rounds%s)\n",
          round, whole_stream ? "" : ", final fold only after coalesce");
    }
    PrintStateHash(offline->StateHash());
  }

  Status s = shutdown ? client->Shutdown() : client->Bye();
  if (!s.ok()) return Fail(s);
  return exit_code;
}

int Usage() {
  std::printf(
      "scuba_cli — continuous spatio-temporal query engine toolbox\n\n"
      "commands:\n"
      "  generate-map    --out FILE [--rows N --cols N --block F --arterial N\n"
      "                  --highway N --jitter F --seed N]\n"
      "  generate-trace  --out FILE [--map FILE --objects N --queries N\n"
      "                  --skew N --ticks N --update-fraction F\n"
      "                  --mixed-fraction F --min-range F --max-range F\n"
      "                  --query-filter F --seed N]\n"
      "  run             --trace FILE [--engine scuba|grid|naive --delta N\n"
      "                  --grid-cells N --theta-d F --theta-s F --eta F\n"
      "                  --threads N (0 = all cores) --ingest-threads N\n"
      "                  --shards N --rebalance off|observe\n"
      "                  --splitting --quiet --csv FILE --map FILE\n"
      "                  --on-bad-update strict|quarantine|repair\n"
      "                  --audit-every N --durable-dir DIR\n"
      "                  --checkpoint-every N --keep-last K\n"
      "                  --crash-at POINT --crash-after N\n"
      "                  --metrics-out FILE.jsonl --trace-out FILE.jsonl\n"
      "                  --on-shard-failure fail|degrade|reassign\n"
      "                  --shard-max-recovery-attempts N\n"
      "                  --shard-backoff-rounds N --shard-round-deadline F\n"
      "                  --shard-fault-seed N --shard-fault-rate F\n"
      "                  --shard-fault-spec ROUND:SHARD:CLASS[,...]]\n"
      "  checkpoint      --trace FILE --durable-dir DIR [run options]\n"
      "  restore         --trace FILE --durable-dir DIR [run options]\n"
      "  recover         --trace FILE --durable-dir DIR [--json]\n"
      "                  [run options]\n"
      "  fsck            DIR [--json] (read-only; exit 0 clean, 20-25 per\n"
      "                  damage class)\n"
      "  serve           [--port N (0 = ephemeral) --port-file FILE\n"
      "                  --map FILE | --region X0,Y0,X1,Y1\n"
      "                  --max-sessions N --max-queue-bytes N\n"
      "                  --slow-consumer coalesce|disconnect\n"
      "                  --serve-memory-budget BYTES + run options]\n"
      "  serve-replay    --trace FILE (--port N | --port-file FILE)\n"
      "                  [--delta N --map FILE --shutdown\n"
      "                  --compare-offline BOOL + run options]\n"
      "  compare         --trace FILE [--delta N --eta F --threads N\n"
      "                  --ingest-threads N]\n"
      "  render          --trace FILE --out FILE.svg [--delta N --width PX]\n"
      "  corrupt-trace   --trace FILE --out FILE [--rate F --seed N\n"
      "                  --burst-size N]\n\n"
      "run with --durable-dir WAL-logs every admitted batch and snapshots\n"
      "every --checkpoint-every rounds; recover rebuilds the engine from the\n"
      "newest readable snapshot + WAL replay, then finishes the trace.\n"
      "--crash-at points: before-wal-append mid-wal-append after-wal-append\n"
      "before-snapshot-write mid-snapshot-write torn-snapshot-rename\n"
      "after-snapshot-write after-wal-prune; sharded runs add\n"
      "mid-shard-snapshot-write between-shard-snapshots before-manifest-rename\n"
      "torn-manifest-rename after-manifest-rename mid-shard-wal-append\n"
      "between-shard-wal-appends mid-manifest-prune\n"
      "--metrics-out / --trace-out (scuba engine only) append one JSON line\n"
      "per round: metric deltas and phase span trees; metrics ends with a\n"
      "Prometheus exposition line. Telemetry never changes results.\n"
      "--shards N > 1 runs the round over N row-stripe engine shards with\n"
      "bit-identical results; --rebalance observe logs stripe-split\n"
      "recommendations on skew. Sharded durable runs keep one WAL chain per\n"
      "shard under manifest-committed checkpoint generations; a directory\n"
      "written at one shard count recovers into any other.\n"
      "--on-shard-failure degrade|reassign isolates a failing shard instead\n"
      "of failing the round: the round completes degraded (the failed shard\n"
      "serves its last published results), online recovery rebuilds the\n"
      "stripe from --durable-dir between rounds with exponential backoff,\n"
      "and reassign re-stripes an unrecoverable shard away. --shard-fault-*\n"
      "arm the deterministic fault injector (classes: task-failure\n"
      "corrupt-state stall recovery-failure) for chaos drills.\n"
      "serve runs the subscription front-end (protocol v1, length+CRC framed\n"
      "binary over loopback TCP): sessions register/cancel continuous\n"
      "queries, stream update batches and receive per-round result deltas;\n"
      "slow consumers are coalesced to one snapshot or disconnected under a\n"
      "bounded per-session queue. serve-replay drives a server with a trace\n"
      "through the client library and verifies the folded delta stream\n"
      "against an in-process offline replay; with --shutdown the server\n"
      "exits and prints its state hash for comparison.\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "fsck") return CmdFsck(argc, argv);
  Result<Flags> flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) return Fail(flags.status());
  if (command == "generate-map") return CmdGenerateMap(*flags);
  if (command == "generate-trace") return CmdGenerateTrace(*flags);
  if (command == "run") return CmdRun(*flags);
  if (command == "checkpoint") return CmdCheckpoint(*flags);
  if (command == "restore") return CmdRestore(*flags);
  if (command == "recover") return CmdRecover(*flags);
  if (command == "serve") return CmdServe(*flags);
  if (command == "serve-replay") return CmdServeReplay(*flags);
  if (command == "compare") return CmdCompare(*flags);
  if (command == "render") return CmdRender(*flags);
  if (command == "corrupt-trace") return CmdCorruptTrace(*flags);
  return Usage();
}

}  // namespace
}  // namespace scuba::cli

int main(int argc, char** argv) { return scuba::cli::Main(argc, argv); }
