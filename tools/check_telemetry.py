#!/usr/bin/env python3
"""Validate SCUBA telemetry JSONL output (docs/ARCHITECTURE.md §9).

Checks a --metrics-out / --trace-out pair produced by scuba_cli or the
benches against the v3 schema: every line must parse, carry only known
keys, and keep the per-round invariants (monotone rounds, monotone counter
totals, finite non-negative timings, well-formed span trees). Optionally
gates the telemetry overhead measured by bench_parallel_scaling and writes
a machine-readable summary (BENCH_telemetry.json).

v1 -> v2 migration: line shapes are unchanged; v2 adds the sharded engine's
surface — per-shard "engine_shard" spans under "join" (indexed by shard id),
a root-level "handoff" span, the scuba_shard_handoffs_total /
scuba_shard_ghosts_total / scuba_rebalance_recommendations_total counters
and the scuba_shards gauge. This checker also pins the span-name universe
(unknown span names fail) and validates the shard-level spans and counters.

v2 -> v3 migration: line shapes again unchanged; v3 adds the shard fault
isolation surface — the scuba_shard_failures_total /
scuba_shard_recoveries_total / scuba_shard_evictions_total /
scuba_degraded_rounds_total counters, per-stripe scuba_shard_health_<s>
gauges (validated to hold one of the health-state codes 0-3), and a
root-level "recovery" span covering online stripe rebuilds.

v3 -> v4 migration: line shapes once more unchanged; v4 adds the serving
front-end surface — the scuba_serve_* metric family (session/round/batch/
delta/snapshot/coalesce/disconnect/error counters, sessions_active and
queue_bytes gauges, the scuba_serve_push_latency_ms histogram) registered
on the engine registry by `scuba_cli serve`. No span changes. Files from
older engines fail only on their schema_version field.

Exit code 0 = all checks passed, 1 = validation failure.
"""

import argparse
import json
import math
import sys

SCHEMA_VERSION = 4

META_KEYS = {"schema_version", "kind", "stream", "engine"}
ROUND_METRICS_KEYS = {"schema_version", "kind", "round", "metrics"}
EXPOSITION_KEYS = {"schema_version", "kind", "prometheus"}
ROUND_TRACE_KEYS = {"schema_version", "kind", "round", "spans", "join"}

COUNTER_KEYS = {"name", "kind", "delta", "total"}
GAUGE_KEYS = {"name", "kind", "value"}
HISTOGRAM_KEYS = {"name", "kind", "delta_count", "delta_sum", "total_count",
                  "total_sum"}
SPAN_KEYS = {"id", "name", "parent", "wall_seconds", "count", "index",
             "worker_seconds"}
SPAN_REQUIRED = {"id", "name", "parent", "wall_seconds", "count"}
JOIN_KEYS = {"shards", "imbalance"}

# The complete span-name universe emitted by the engines (v3). "shard" is the
# single engine's per-task join span; "engine_shard", "handoff" and
# "recovery" belong to the sharded engine.
KNOWN_SPAN_NAMES = {
    "round", "ingest", "classify", "apply", "join", "between", "within",
    "shard", "engine_shard", "postjoin", "tighten", "shed", "expire",
    "translate", "handoff", "recovery", "checkpoint", "wal", "snapshot",
}
# Per-shard spans must be indexed (the shard id) so consumers can attribute
# load; their parent must be the phase span named here.
INDEXED_SPAN_PARENT = {"shard": "join", "engine_shard": "join"}
# Sharded-engine counters (v2/v3): any of these present => the scuba_shards
# gauge must appear too, so per-shard rates can be normalized.
SHARD_COUNTER_NAMES = {
    "scuba_shard_handoffs_total", "scuba_shard_ghosts_total",
    "scuba_rebalance_recommendations_total",
    "scuba_shard_failures_total", "scuba_shard_recoveries_total",
    "scuba_shard_evictions_total", "scuba_degraded_rounds_total",
}
# v3 per-stripe health gauge values (ShardHealth in src/shard).
SHARD_HEALTH_PREFIX = "scuba_shard_health_"
SHARD_HEALTH_VALUES = {0, 1, 2, 3}


class CheckFailure(Exception):
    pass


def fail(path, line_no, message):
    raise CheckFailure(f"{path}:{line_no}: {message}")


def check_keys(path, line_no, obj, allowed, what):
    unknown = set(obj) - allowed
    if unknown:
        fail(path, line_no, f"unknown {what} key(s): {sorted(unknown)}")


def check_finite(path, line_no, value, what):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, line_no, f"{what} is not a number: {value!r}")
    if not math.isfinite(value):
        fail(path, line_no, f"{what} is not finite: {value!r}")


def check_timing(path, line_no, value, what):
    check_finite(path, line_no, value, what)
    if value < 0:
        fail(path, line_no, f"{what} is negative: {value!r}")


def load_lines(path):
    lines = []
    with open(path, encoding="utf-8") as f:
        for i, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                fail(path, i, "blank line")
            try:
                lines.append((i, json.loads(raw)))
            except json.JSONDecodeError as e:
                fail(path, i, f"invalid JSON: {e}")
    if not lines:
        fail(path, 0, "file is empty")
    return lines


def check_meta(path, line_no, obj, stream):
    check_keys(path, line_no, obj, META_KEYS, "meta")
    if obj.get("schema_version") != SCHEMA_VERSION:
        fail(path, line_no,
             f"schema_version {obj.get('schema_version')} != {SCHEMA_VERSION}")
    if obj.get("stream") != stream:
        fail(path, line_no, f"stream {obj.get('stream')!r} != {stream!r}")
    if not isinstance(obj.get("engine"), str):
        fail(path, line_no, "meta line is missing the engine name")


def check_metrics_file(path):
    lines = load_lines(path)
    line_no, meta = lines[0]
    if meta.get("kind") != "meta":
        fail(path, line_no, "first line must be the meta line")
    check_meta(path, line_no, meta, "metrics")

    line_no, last = lines[-1]
    if last.get("kind") != "exposition":
        fail(path, line_no, "last line must be the prometheus exposition")
    check_keys(path, line_no, last, EXPOSITION_KEYS, "exposition")
    if "scuba_rounds_total" not in last.get("prometheus", ""):
        fail(path, line_no, "exposition is missing scuba_rounds_total")

    rounds = 0
    counter_totals = {}
    histogram_totals = {}
    metric_names = set()
    for line_no, obj in lines[1:-1]:
        if obj.get("kind") != "round":
            fail(path, line_no, f"unexpected kind {obj.get('kind')!r}")
        check_keys(path, line_no, obj, ROUND_METRICS_KEYS, "round")
        rounds += 1
        if obj.get("round") != rounds:
            fail(path, line_no,
                 f"round {obj.get('round')} out of order (want {rounds})")
        if not isinstance(obj.get("metrics"), list):
            fail(path, line_no, "round line has no metrics array")
        for entry in obj["metrics"]:
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                fail(path, line_no, f"metric entry has no name: {entry!r}")
            metric_names.add(name)
            kind = entry.get("kind")
            if kind == "counter":
                check_keys(path, line_no, entry, COUNTER_KEYS, "counter")
                delta, total = entry.get("delta"), entry.get("total")
                if not isinstance(delta, int) or delta < 1:
                    fail(path, line_no,
                         f"{name}: counter delta must be a positive integer "
                         f"(zero-delta entries are omitted), got {delta!r}")
                prev = counter_totals.get(name, 0)
                if not isinstance(total, int) or total != prev + delta:
                    fail(path, line_no,
                         f"{name}: total {total!r} != previous {prev} + "
                         f"delta {delta}")
                counter_totals[name] = total
            elif kind == "gauge":
                check_keys(path, line_no, entry, GAUGE_KEYS, "gauge")
                check_finite(path, line_no, entry.get("value"),
                             f"{name}: gauge value")
                if name == "scuba_shards":
                    value = entry.get("value")
                    if value != int(value) or value < 1:
                        fail(path, line_no,
                             f"scuba_shards must be a positive integer, "
                             f"got {value!r}")
                if name.startswith(SHARD_HEALTH_PREFIX):
                    value = entry.get("value")
                    if value not in SHARD_HEALTH_VALUES:
                        fail(path, line_no,
                             f"{name} must be a health-state code "
                             f"{sorted(SHARD_HEALTH_VALUES)}, got {value!r}")
            elif kind == "histogram":
                check_keys(path, line_no, entry, HISTOGRAM_KEYS, "histogram")
                delta_count = entry.get("delta_count")
                if not isinstance(delta_count, int) or delta_count < 1:
                    fail(path, line_no,
                         f"{name}: histogram delta_count must be positive, "
                         f"got {delta_count!r}")
                check_timing(path, line_no, entry.get("delta_sum"),
                             f"{name}: delta_sum")
                check_timing(path, line_no, entry.get("total_sum"),
                             f"{name}: total_sum")
                prev = histogram_totals.get(name, 0)
                total_count = entry.get("total_count")
                if total_count != prev + delta_count:
                    fail(path, line_no,
                         f"{name}: total_count {total_count!r} != previous "
                         f"{prev} + delta_count {delta_count}")
                histogram_totals[name] = total_count
            else:
                fail(path, line_no, f"{name}: unknown metric kind {kind!r}")
    if rounds == 0:
        fail(path, 0, "metrics file contains no round lines")
    shard_counters = metric_names & SHARD_COUNTER_NAMES
    if shard_counters and "scuba_shards" not in metric_names:
        fail(path, 0,
             f"shard counters {sorted(shard_counters)} present but the "
             "scuba_shards gauge never appeared")
    return {"rounds": rounds, "metric_names": sorted(metric_names)}


def check_trace_file(path):
    lines = load_lines(path)
    line_no, meta = lines[0]
    if meta.get("kind") != "meta":
        fail(path, line_no, "first line must be the meta line")
    check_meta(path, line_no, meta, "trace")

    rounds = 0
    span_names = set()
    for line_no, obj in lines[1:]:
        if obj.get("kind") != "round":
            fail(path, line_no, f"unexpected kind {obj.get('kind')!r}")
        check_keys(path, line_no, obj, ROUND_TRACE_KEYS, "round")
        rounds += 1
        spans = obj.get("spans")
        if not isinstance(spans, list) or not spans:
            fail(path, line_no, "round line has no spans")
        for pos, span in enumerate(spans):
            check_keys(path, line_no, span, SPAN_KEYS, "span")
            missing = SPAN_REQUIRED - set(span)
            if missing:
                fail(path, line_no, f"span missing key(s): {sorted(missing)}")
            if span["id"] != pos:
                fail(path, line_no,
                     f"span id {span['id']} != position {pos}")
            name = span["name"]
            if name not in KNOWN_SPAN_NAMES:
                fail(path, line_no, f"unknown span name {name!r}")
            parent = span["parent"]
            if pos == 0:
                if name != "round" or parent != -1:
                    fail(path, line_no, "first span must be the 'round' root")
            elif not 0 <= parent < pos:
                fail(path, line_no,
                     f"span {name!r} parent {parent} must precede it")
            if name in INDEXED_SPAN_PARENT:
                if "index" not in span or not isinstance(span["index"], int) \
                        or span["index"] < 0:
                    fail(path, line_no,
                         f"per-shard span {name!r} must carry a non-negative "
                         "integer index")
                want_parent = INDEXED_SPAN_PARENT[name]
                if spans[parent]["name"] != want_parent:
                    fail(path, line_no,
                         f"span {name!r} parent is "
                         f"{spans[parent]['name']!r}, want {want_parent!r}")
            check_timing(path, line_no, span["wall_seconds"],
                         f"span {span['name']!r} wall_seconds")
            if "worker_seconds" in span:
                check_timing(path, line_no, span["worker_seconds"],
                             f"span {span['name']!r} worker_seconds")
            if not isinstance(span["count"], int) or span["count"] < 1:
                fail(path, line_no,
                     f"span {span['name']!r} count {span['count']!r} < 1")
            span_names.add(span["name"])
        if "join" in obj:
            check_keys(path, line_no, obj["join"], JOIN_KEYS, "join summary")
            if obj["join"].get("shards", 0) < 1:
                fail(path, line_no, "join summary with no shards")
            imbalance = obj["join"].get("imbalance")
            check_finite(path, line_no, imbalance, "join imbalance")
            if imbalance < 1.0:
                fail(path, line_no,
                     f"join imbalance {imbalance} < 1.0 (max/mean)")
    if rounds == 0:
        fail(path, 0, "trace file contains no round lines")
    return {"rounds": rounds, "span_names": sorted(span_names)}


def check_overhead(bench_path, max_overhead):
    with open(bench_path, encoding="utf-8") as f:
        bench = json.load(f)
    telemetry = bench.get("telemetry")
    if not isinstance(telemetry, dict):
        raise CheckFailure(f"{bench_path}: no telemetry section "
                           "(rerun bench_parallel_scaling)")
    overhead = telemetry.get("overhead_fraction")
    if not isinstance(overhead, (int, float)) or not math.isfinite(overhead):
        raise CheckFailure(f"{bench_path}: bad overhead_fraction {overhead!r}")
    if overhead > max_overhead:
        raise CheckFailure(
            f"{bench_path}: telemetry overhead {overhead:.2%} exceeds the "
            f"{max_overhead:.0%} budget")
    return telemetry


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="metrics JSONL to validate")
    parser.add_argument("--trace", help="trace JSONL to validate")
    parser.add_argument("--bench",
                        help="BENCH_parallel.json with a telemetry section "
                             "to gate overhead against")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail when overhead_fraction exceeds this "
                             "(default 0.05)")
    parser.add_argument("--out", help="write a JSON summary here")
    args = parser.parse_args()
    if not (args.metrics or args.trace or args.bench):
        parser.error("nothing to check: pass --metrics, --trace or --bench")

    summary = {"schema_version": SCHEMA_VERSION, "status": "ok"}
    try:
        if args.metrics:
            summary["metrics"] = check_metrics_file(args.metrics)
            print(f"ok: {args.metrics} "
                  f"({summary['metrics']['rounds']} rounds, "
                  f"{len(summary['metrics']['metric_names'])} metrics)")
        if args.trace:
            summary["trace"] = check_trace_file(args.trace)
            print(f"ok: {args.trace} "
                  f"({summary['trace']['rounds']} rounds, spans: "
                  f"{', '.join(summary['trace']['span_names'])})")
        if args.bench:
            summary["overhead"] = check_overhead(args.bench,
                                                 args.max_overhead)
            print(f"ok: {args.bench} telemetry overhead "
                  f"{summary['overhead']['overhead_fraction']:.2%} "
                  f"<= {args.max_overhead:.0%}")
    except (CheckFailure, OSError) as e:
        print(f"FAIL: {e}", file=sys.stderr)
        summary["status"] = "fail"
        summary["error"] = str(e)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as f:
                json.dump(summary, f, indent=2)
                f.write("\n")
        return 1

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
