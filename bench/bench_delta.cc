// Evaluation-interval sweep (supplementary): the paper fixes Delta = 2 time
// units (§6.1). Sweeping Delta shows the trade SCUBA makes between evaluation
// frequency and per-round cost: fewer, larger rounds amortize cluster
// maintenance but deliver staler answers (more churn per round).

#include "bench/bench_common.h"
#include "core/result_delta.h"
#include "stream/pipeline.h"

namespace scuba::bench {
namespace {

void Run() {
  PrintBanner("Delta sweep", "evaluation interval Delta in ticks");
  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));

  std::printf("%-8s %8s %12s %12s %14s %16s\n", "delta", "rounds", "join(s)",
              "maint(s)", "avg matches", "avg churn/round");
  for (Timestamp delta : {1, 2, 4, 6}) {
    ScubaOptions opt;
    opt.region = data.region;
    opt.delta = delta;
    Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
    SCUBA_CHECK(engine.ok());

    IncrementalResultTracker tracker;
    uint64_t total_matches = 0;
    uint64_t total_churn = 0;
    Status s = ReplayTrace(data.trace, engine->get(), delta,
                           [&](Timestamp now, const ResultSet& r) {
                             ResultDelta d = tracker.Observe(r, now);
                             total_matches += r.size();
                             if (d.round > 1) total_churn += d.size();
                           });
    SCUBA_CHECK_MSG(s.ok(), s.ToString().c_str());
    const uint64_t rounds = tracker.rounds();
    double avg_matches =
        rounds ? static_cast<double>(total_matches) / static_cast<double>(rounds)
               : 0.0;
    double avg_churn = rounds > 1 ? static_cast<double>(total_churn) /
                                        static_cast<double>(rounds - 1)
                                  : 0.0;
    std::printf("%-8lld %8llu %12.4f %12.4f %14.0f %16.0f\n",
                static_cast<long long>(delta),
                static_cast<unsigned long long>(rounds),
                (*engine)->StatsSnapshot().eval.total_join_seconds,
                (*engine)->StatsSnapshot().eval.total_maintenance_seconds, avg_matches,
                avg_churn);
  }
  std::printf("\n(churn = |added| + |removed| matches between consecutive "
              "rounds — larger Delta means staler, choppier answers)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
