// Figure 9 (paper §6.2): varying grid cell size.
//
// Sweeps the grid granularity (50x50 .. 150x150 cells over the same city)
// and reports, per operator, the cumulative join time (Fig. 9a) and the peak
// memory consumption (Fig. 9b). Expected shape: the regular operator's join
// time falls with finer cells but its memory rises (each entity occupies its
// own entries, queries span several cells); SCUBA's join time stays flat and
// its memory stays far lower (one entry per cluster).

#include <cinttypes>

#include "bench/bench_common.h"
#include "common/memory_usage.h"

namespace scuba::bench {
namespace {

void Run() {
  PrintBanner("Figure 9", "varying grid cell size (join time & memory)");
  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));

  std::printf("%-10s %14s %14s %14s %14s %14s %14s\n", "grid",
              "REGULAR join(s)", "SCUBA join(s)", "REGULAR mem", "SCUBA mem",
              "REGULAR grid", "SCUBA grid");
  for (uint32_t cells : {50u, 75u, 100u, 125u, 150u}) {
    BenchOutcome regular = RunRegular(data, /*delta=*/2, cells);
    ScubaOptions opt;
    opt.grid_cells = cells;
    BenchOutcome scuba = RunScuba(data, /*delta=*/2, opt);
    char label[32];
    std::snprintf(label, sizeof(label), "%ux%u", cells, cells);
    std::printf("%-10s %14.4f %14.4f %14s %14s %14s %14s\n", label,
                regular.join_seconds, scuba.join_seconds,
                FormatBytes(regular.peak_memory).c_str(),
                FormatBytes(scuba.peak_memory).c_str(),
                FormatBytes(regular.grid_memory).c_str(),
                FormatBytes(scuba.grid_memory).c_str());
  }
  std::printf(
      "\n(join time = cumulative over all rounds; mem = peak engine estimate; "
      "grid = spatial-index bytes only —\n the paper's Fig. 9b point: one "
      "grid entry per cluster vs one per object/query)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
