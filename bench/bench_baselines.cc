// Baseline shoot-out: SCUBA vs every comparator in the repository on the
// standard workload — the regular grid join (the paper's comparator), the
// Query-Index R-tree approach from the paper's related work [29], and the
// naive nested loop. All engines replay the identical trace; result counts
// must agree (SCUBA and the others are exact without shedding).

#include <cinttypes>
#include <memory>

#include "baseline/naive_join_engine.h"
#include "baseline/query_index_engine.h"
#include "bench/bench_common.h"
#include "common/memory_usage.h"

namespace scuba::bench {
namespace {

void Row(const char* name, const EngineRunResult& run) {
  std::printf("%-14s %12.4f %12.4f %14" PRIu64 " %16" PRIu64 " %14s"
              "   p50=%.2fms p99=%.2fms\n",
              name, run.stats.total_join_seconds,
              run.stats.total_maintenance_seconds, run.stats.total_results,
              run.stats.comparisons, FormatBytes(run.peak_memory_bytes).c_str(),
              run.join_ms_per_round.Percentile(50),
              run.join_ms_per_round.Percentile(99));
}

void Run() {
  PrintBanner("Baselines", "SCUBA vs regular grid vs query-index vs naive");
  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));

  std::printf("%-14s %12s %12s %14s %16s %14s\n", "engine", "join(s)",
              "maint(s)", "results", "comparisons", "peak memory");

  {
    ScubaOptions opt;
    opt.region = data.region;
    Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
    SCUBA_CHECK(engine.ok());
    Result<EngineRunResult> run = RunOnTrace(engine->get(), data.trace, 2);
    SCUBA_CHECK(run.ok());
    Row("scuba", *run);
  }
  {
    GridJoinOptions opt;
    opt.region = data.region;
    Result<std::unique_ptr<GridJoinEngine>> engine = GridJoinEngine::Create(opt);
    SCUBA_CHECK(engine.ok());
    Result<EngineRunResult> run = RunOnTrace(engine->get(), data.trace, 2);
    SCUBA_CHECK(run.ok());
    Row("regular-grid", *run);
  }
  {
    QueryIndexEngine engine;
    Result<EngineRunResult> run = RunOnTrace(&engine, data.trace, 2);
    SCUBA_CHECK(run.ok());
    Row("query-index", *run);
  }
  {
    NaiveJoinEngine engine;
    Result<EngineRunResult> run = RunOnTrace(&engine, data.trace, 2);
    SCUBA_CHECK(run.ok());
    Row("naive", *run);
  }
  std::printf("\n(all engines replay the identical trace; result counts must "
              "match — none of these shed load)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
