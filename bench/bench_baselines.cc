// Baseline shoot-out: SCUBA vs every comparator in the repository on the
// standard workload — the regular grid join (the paper's comparator), the
// Query-Index R-tree approach from the paper's related work [29], and the
// naive nested loop. All engines replay the identical trace; result counts
// must agree (SCUBA and the others are exact without shedding).

#include <cinttypes>
#include <memory>
#include <string>

#include "baseline/query_index_engine.h"
#include "bench/bench_common.h"
#include "common/memory_usage.h"
#include "shard/engine_factory.h"

namespace scuba::bench {
namespace {

void Row(const char* name, const EngineRunResult& run) {
  std::printf("%-14s %12.4f %12.4f %14" PRIu64 " %16" PRIu64 " %14s"
              "   p50=%.2fms p99=%.2fms\n",
              name, run.stats.total_join_seconds,
              run.stats.total_maintenance_seconds, run.stats.total_results,
              run.stats.comparisons, FormatBytes(run.peak_memory_bytes).c_str(),
              run.join_ms_per_round.Percentile(50),
              run.join_ms_per_round.Percentile(99));
}

void Run() {
  PrintBanner("Baselines", "SCUBA vs regular grid vs query-index vs naive");
  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));

  std::printf("%-14s %12s %12s %14s %16s %14s\n", "engine", "join(s)",
              "maint(s)", "results", "comparisons", "peak memory");

  // scuba / grid / naive all come from the one option-to-engine mapping the
  // CLI uses; only the query-index comparator is assembled by hand (the
  // factory deliberately covers just the CLI's engine names).
  ScubaOptions opt;
  opt.region = data.region;
  for (const char* name : {"scuba", "grid", "naive"}) {
    Result<EngineHandle> engine = MakeEngine(opt, name);
    SCUBA_CHECK(engine.ok());
    Result<EngineRunResult> run = RunOnTrace(engine->engine.get(), data.trace, 2);
    SCUBA_CHECK(run.ok());
    Row(std::string(engine->engine->name()).c_str(), *run);
  }
  {
    QueryIndexEngine engine;
    Result<EngineRunResult> run = RunOnTrace(&engine, data.trace, 2);
    SCUBA_CHECK(run.ok());
    Row("query-index", *run);
  }
  std::printf("\n(all engines replay the identical trace; result counts must "
              "match — none of these shed load)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
