// Update-rate sweep (supplementary; the paper's §6.1 fixes the rate at 100%
// "unless mentioned otherwise"). When only a fraction of entities report per
// tick, SCUBA extrapolates silent members by cluster motion (the velocity
// relocation of §4.2's post-join maintenance), while stateless engines reuse
// each entity's last known position. Ground truth is the naive oracle on the
// FULL trace of the identical simulation (motion is deterministic; the update
// fraction only selects who reports), so the table shows how both policies
// track the entities' true positions as updates get sparser.

#include "baseline/naive_join_engine.h"
#include "bench/bench_common.h"
#include "eval/accuracy.h"
#include "stream/pipeline.h"

namespace scuba::bench {
namespace {

/// Per-round accuracy of `engine` (fed the partial trace) vs `truth`.
AccuracyReport RunAgainstTruth(QueryProcessor* engine, const Trace& partial,
                               const std::vector<ResultSet>& truth) {
  AccuracyAccumulator acc;
  size_t round = 0;
  SCUBA_CHECK(ReplayTrace(partial, engine, 2,
                          [&](Timestamp, const ResultSet& r) {
                            acc.Add(CompareResults(truth[round++], r));
                          })
                  .ok());
  SCUBA_CHECK(round == truth.size());
  return acc.total();
}

void Run() {
  PrintBanner("Update rate", "partial per-tick update fractions");
  std::printf("%-10s | %10s %10s | %10s %10s | %12s\n", "fraction",
              "SCUBA acc", "recall", "last-known", "recall", "SCUBA join(s)");
  for (double fraction : {1.0, 0.75, 0.5, 0.25}) {
    // Identical simulation; only who reports differs.
    ExperimentConfig full_config = DefaultConfig(/*skew=*/100);
    full_config.update_fraction = 1.0;
    ExperimentData full = BuildOrDie(full_config);
    ExperimentConfig partial_config = full_config;
    partial_config.update_fraction = fraction;
    ExperimentData partial = BuildOrDie(partial_config);

    // Ground truth: true positions each round.
    NaiveJoinEngine truth_engine;
    std::vector<ResultSet> truth;
    SCUBA_CHECK(ReplayTrace(full.trace, &truth_engine, 2,
                            [&](Timestamp, const ResultSet& r) {
                              truth.push_back(r);
                            })
                    .ok());

    ScubaOptions opt;
    opt.region = full.region;
    Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
    SCUBA_CHECK(engine.ok());
    AccuracyReport scuba_acc =
        RunAgainstTruth(engine->get(), partial.trace, truth);

    NaiveJoinEngine last_known;
    AccuracyReport lk_acc = RunAgainstTruth(&last_known, partial.trace, truth);

    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", fraction * 100.0);
    std::printf("%-10s | %10.4f %10.4f | %10.4f %10.4f | %12.4f\n", label,
                scuba_acc.Accuracy(), scuba_acc.Recall(), lk_acc.Accuracy(),
                lk_acc.Recall(), (*engine)->StatsSnapshot().eval.total_join_seconds);
  }
  std::printf("\n(ground truth = naive oracle on the full trace; last-known = "
              "naive oracle fed only the partial trace)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
