// Figure 11 (paper §6.4): incremental vs non-incremental clustering.
//
// Compares SCUBA's incremental Leader-Follower clustering against offline
// K-means with 1/3/5/10 Lloyd iterations over the same snapshot of location
// updates, reporting clustering time + join time per variant (the paper's
// stacked bars). As in the paper, the incremental variant's clustering
// happens while updates stream in, so its join can start immediately when
// Delta expires (clustering time shown for reference only). Expected shape:
// K-means yields tighter clusters and a slightly faster join, but its
// clustering time dwarfs the join benefit from ~3 iterations up.

#include "bench/bench_common.h"
#include "cluster/cluster_quality.h"
#include "cluster/kmeans.h"
#include "cluster/leader_follower.h"
#include "common/stopwatch.h"
#include "core/cluster_join.h"

namespace scuba::bench {
namespace {

struct VariantOutcome {
  double clustering_seconds = 0.0;
  double join_seconds = 0.0;
  size_t clusters = 0;
  double msd = 0.0;  ///< Mean squared member-to-centroid distance (quality).
  size_t results = 0;
};

GridIndex MakeGrid(const ExperimentData& data) {
  Result<GridIndex> grid = GridIndex::Create(data.region, 100);
  SCUBA_CHECK(grid.ok());
  return std::move(grid).value();
}

VariantOutcome JoinOnStore(const ClusterStore& store, const GridIndex& grid) {
  VariantOutcome out;
  ClusterJoinExecutor executor(/*query_reach_aware=*/true);
  ResultSet results;
  Stopwatch sw;
  Status s = executor.Execute(store, grid, &results);
  out.join_seconds = sw.ElapsedSeconds();
  SCUBA_CHECK_MSG(s.ok(), s.ToString().c_str());
  out.results = results.size();
  out.clusters = store.ClusterCount();
  out.msd = EvaluateClusterQuality(store).mean_squared_distance;
  return out;
}

VariantOutcome RunIncremental(const ExperimentData& data,
                              const TickBatch& snapshot) {
  ClusterStore store;
  GridIndex grid = MakeGrid(data);
  LeaderFollowerClusterer clusterer(ClustererOptions{}, &store, &grid);
  Stopwatch sw;
  for (const LocationUpdate& u : snapshot.object_updates) {
    SCUBA_CHECK(clusterer.ProcessObjectUpdate(u).ok());
  }
  for (const QueryUpdate& u : snapshot.query_updates) {
    SCUBA_CHECK(clusterer.ProcessQueryUpdate(u).ok());
  }
  double clustering = sw.ElapsedSeconds();
  VariantOutcome out = JoinOnStore(store, grid);
  out.clustering_seconds = clustering;
  return out;
}

VariantOutcome RunKMeans(const ExperimentData& data, const TickBatch& snapshot,
                         uint32_t iterations) {
  Stopwatch sw;
  KMeansOptions opt;
  opt.iterations = iterations;
  Result<KMeansResult> km =
      KMeansCluster(snapshot.object_updates, snapshot.query_updates, opt);
  SCUBA_CHECK_MSG(km.ok(), km.status().ToString().c_str());
  ClusterStore store;
  GridIndex grid = MakeGrid(data);
  Status s = PopulateFromKMeans(snapshot.object_updates,
                                snapshot.query_updates, *km, &store, &grid);
  SCUBA_CHECK_MSG(s.ok(), s.ToString().c_str());
  double clustering = sw.ElapsedSeconds();
  VariantOutcome out = JoinOnStore(store, grid);
  out.clustering_seconds = clustering;
  return out;
}

void Run() {
  PrintBanner("Figure 11", "incremental vs non-incremental clustering");
  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));
  const TickBatch& snapshot = data.trace.batch(data.trace.TickCount() - 1);

  std::printf("%-18s %14s %12s %12s %10s %12s %10s\n", "variant",
              "clustering(s)", "join(s)", "total(s)", "clusters", "msd",
              "results");
  auto print = [](const char* name, const VariantOutcome& v,
                  bool charge_clustering) {
    double charged = charge_clustering ? v.clustering_seconds : 0.0;
    std::printf("%-18s %14.4f %12.4f %12.4f %10zu %12.1f %10zu\n", name,
                charged, v.join_seconds, charged + v.join_seconds, v.clusters,
                v.msd, v.results);
  };

  VariantOutcome inc = RunIncremental(data, snapshot);
  // The paper does not charge incremental clustering to the join path (it
  // overlaps with update arrival); report it in a footnote instead.
  print("incremental-LF", inc, /*charge_clustering=*/false);
  for (uint32_t iters : {1u, 3u, 5u, 10u}) {
    char name[32];
    std::snprintf(name, sizeof(name), "kmeans-iter=%u", iters);
    VariantOutcome km = RunKMeans(data, snapshot, iters);
    print(name, km, /*charge_clustering=*/true);
  }
  std::printf(
      "\n(incremental clustering actually took %.4fs but overlaps with "
      "update arrival, per the paper)\n",
      inc.clustering_seconds);
  std::printf("(msd = mean squared member-to-centroid distance; lower = "
              "tighter clusters)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
