// Figure 12 (paper §6.5): cluster maintenance cost.
//
// Varies the skew factor to land on ~500 / 1000 / 2000 / 5000 moving clusters
// (entity counts fixed) and reports SCUBA's cluster maintenance time (pre- +
// post-join upkeep) alongside the SCUBA and REGULAR join times. Expected
// shape: maintenance grows with the cluster count, but maintenance + SCUBA
// join stays competitive with (paper: below) the regular operator's join.

#include "bench/bench_common.h"

namespace scuba::bench {
namespace {

void Run() {
  PrintBanner("Figure 12", "cluster maintenance cost vs cluster count");
  BenchScale scale = ReadScale();
  const uint32_t total = scale.objects + scale.queries;

  std::printf("%-10s %10s %14s %14s %14s %14s %14s\n", "target", "clusters",
              "SCUBA maint(s)", "SCUBA join(s)", "SCUBA total", "REGULAR join",
              "REGULAR total");
  for (uint32_t target : {500u, 1000u, 2000u, 5000u}) {
    uint32_t skew = std::max(1u, total / target);
    ExperimentData data = BuildOrDie(DefaultConfig(skew));
    BenchOutcome scuba = RunScuba(data, /*delta=*/2);
    BenchOutcome regular = RunRegular(data, /*delta=*/2);
    char label[32];
    std::snprintf(label, sizeof(label), "~%u", target);
    std::printf("%-10s %10zu %14.4f %14.4f %14.4f %14.4f %14.4f\n", label,
                scuba.clusters, scuba.maintenance_seconds, scuba.join_seconds,
                scuba.maintenance_seconds + scuba.join_seconds,
                regular.join_seconds,
                regular.maintenance_seconds + regular.join_seconds);
  }
  std::printf("\n(maintenance = ingest-side clustering + post-join upkeep, "
              "cumulative over the run)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
