// Serving front-end benchmark (docs/ARCHITECTURE.md §14): a loopback
// ScubaServer driven by one client at 100% update rate while N subscriber
// sessions fold the pushed delta stream. Measures
//
//   - round throughput as the subscriber count grows (the push fan-out is
//     per-session work on the event loop);
//   - bytes on the wire: the per-round delta stream versus re-sending the
//     full result set every round (the delta-push payoff the redesigned
//     results API exists for) — the bench fails if deltas are not smaller;
//   - push fan-out latency: driver ack to every subscriber folded;
//   - the slow-consumer guarantee: a subscriber that never reads stays
//     byte-bounded (coalesce-to-snapshot) and costs the fast sessions
//     nothing, then catches up from one snapshot.
//
// Writes BENCH_serve.json so the perf trajectory is tracked across PRs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/scuba_options.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/engine_factory.h"

namespace scuba::bench {
namespace {

using serve::ScubaClient;
using serve::ScubaServer;
using serve::ServeOptions;
using serve::ServerDeps;
using serve::ServerStats;
using serve::SlowConsumerPolicy;
using serve::UpdateBatchMsg;
using serve::TickAckMsg;
using serve::EncodeSnapshot;
using serve::SnapshotMsg;

struct ServeScale {
  uint32_t objects = 2000;
  uint32_t queries = 500;
  int ticks = 24;
};

ServeScale ReadServeScale() {
  ServeScale scale;
  const char* fast = std::getenv("SCUBA_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    scale.objects = 400;
    scale.queries = 100;
    scale.ticks = 8;
  }
  return scale;
}

struct TickBatch {
  std::vector<LocationUpdate> objects;
  std::vector<QueryUpdate> queries;
};

/// 100% update rate: every object reports every tick, drifting smoothly so
/// rounds churn a little (the delta regime) instead of completely. Queries
/// register once in the first tick and then stand still.
std::vector<TickBatch> MakeWorkload(const ServeScale& scale) {
  Rng rng(0x5C0BA);
  std::vector<Point> base(scale.objects);
  std::vector<Point> drift(scale.objects);
  for (uint32_t i = 0; i < scale.objects; ++i) {
    base[i] = Point{rng.NextDouble() * 9000.0 + 500.0,
                    rng.NextDouble() * 9000.0 + 500.0};
    drift[i] = Point{rng.NextDouble() * 30.0 - 15.0,
                     rng.NextDouble() * 30.0 - 15.0};
  }
  std::vector<TickBatch> out(static_cast<size_t>(scale.ticks));
  for (int t = 0; t < scale.ticks; ++t) {
    TickBatch& batch = out[static_cast<size_t>(t)];
    batch.objects.reserve(scale.objects);
    for (uint32_t i = 0; i < scale.objects; ++i) {
      LocationUpdate u;
      u.oid = i;
      u.position = Point{base[i].x + drift[i].x * t,
                         base[i].y + drift[i].y * t};
      u.speed = 5.0;
      u.dest_node = 0;
      u.dest_position = Point{9000, 9000};
      u.attrs = 0x1u;
      u.time = static_cast<Timestamp>(t + 1);
      batch.objects.push_back(u);
    }
    if (t == 0) {
      for (uint32_t q = 0; q < scale.queries; ++q) {
        QueryUpdate u;
        u.qid = q;
        u.position = Point{rng.NextDouble() * 9000.0 + 500.0,
                           rng.NextDouble() * 9000.0 + 500.0};
        u.speed = 0.0;
        u.dest_node = 0;
        u.dest_position = u.position;
        u.range_width = 400.0;
        u.range_height = 400.0;
        u.time = 1;
        batch.queries.push_back(u);
      }
    }
  }
  return out;
}

struct ServerUnderTest {
  EngineHandle engine;
  std::unique_ptr<ScubaServer> server;
};

ServerUnderTest StartServer(const ServeOptions& serve) {
  ServerUnderTest out;
  ScubaOptions opt;
  Result<EngineHandle> handle = MakeEngine(opt);
  SCUBA_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
  out.engine = std::move(handle).value();
  ServerDeps deps;
  deps.engine = out.engine.engine.get();
  Result<std::unique_ptr<ScubaServer>> server = ScubaServer::Create(serve, deps);
  SCUBA_CHECK_MSG(server.ok(), server.status().ToString().c_str());
  out.server = std::move(server).value();
  SCUBA_CHECK(out.server->Start().ok());
  return out;
}

ScubaClient ConnectOrDie(uint16_t port, const std::string& name) {
  ScubaClient::Options options;
  options.name = name;
  Result<ScubaClient> client = ScubaClient::Connect(port, options);
  SCUBA_CHECK_MSG(client.ok(), client.status().ToString().c_str());
  return std::move(client).value();
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct SweepOutcome {
  uint32_t sessions = 0;
  uint64_t rounds = 0;
  double wall_seconds = 0.0;
  double updates_per_second = 0.0;
  double avg_fanout_ms = 0.0;  ///< Driver ack -> all subscribers folded.
  uint64_t delta_wire_bytes = 0;  ///< Per subscriber (framed).
  uint64_t full_wire_bytes = 0;   ///< Framed snapshot every round instead.
  uint64_t final_matches = 0;
};

SweepOutcome RunSweep(const std::vector<TickBatch>& ticks, uint32_t sessions,
                      Timestamp delta) {
  SweepOutcome out;
  out.sessions = sessions;
  ServerUnderTest sut = StartServer(ServeOptions{});

  ScubaClient driver = ConnectOrDie(sut.server->port(), "driver");
  std::vector<ScubaClient> subs;
  for (uint32_t i = 0; i < sessions; ++i) {
    subs.push_back(ConnectOrDie(sut.server->port(),
                                "sub-" + std::to_string(i)));
    SCUBA_CHECK(subs.back().SubscribeAll().ok());
  }

  double fanout_seconds = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < ticks.size(); ++t) {
    UpdateBatchMsg batch;
    batch.time = static_cast<Timestamp>(t + 1);
    batch.evaluate = (t + 1) % static_cast<size_t>(delta) == 0;
    batch.objects = ticks[t].objects;
    batch.queries = ticks[t].queries;
    Result<TickAckMsg> ack = driver.SendBatch(batch);
    SCUBA_CHECK_MSG(ack.ok(), ack.status().ToString().c_str());
    if (!batch.evaluate) continue;
    ++out.rounds;
    const auto acked = std::chrono::steady_clock::now();
    for (ScubaClient& sub : subs) {
      Status pumped = sub.PumpUntilRound(out.rounds);
      SCUBA_CHECK_MSG(pumped.ok(), pumped.ToString().c_str());
    }
    fanout_seconds += Seconds(acked, std::chrono::steady_clock::now());
    // What a full-result protocol would have sent this round instead of the
    // delta: one framed snapshot of the entire folded answer.
    SnapshotMsg full;
    full.round = out.rounds;
    full.time = batch.time;
    full.matches = subs.front().folded().matches();
    out.full_wire_bytes +=
        serve::kFrameHeaderBytes + EncodeSnapshot(full).size();
  }
  out.wall_seconds = Seconds(start, std::chrono::steady_clock::now());

  const ScubaClient& probe = subs.front();
  SCUBA_CHECK(probe.coalesced_snapshots() == 0);
  SCUBA_CHECK(probe.deltas_received() == out.rounds);
  // Framed wire bytes: payload plus the 8-byte length/CRC header per push
  // (rounds' deltas plus the subscribe-ack snapshot).
  out.delta_wire_bytes =
      probe.result_bytes_received() +
      serve::kFrameHeaderBytes *
          (probe.deltas_received() + probe.snapshots_received());
  out.final_matches = probe.folded().size();
  out.updates_per_second =
      out.wall_seconds > 0.0
          ? static_cast<double>(ticks.size() * ticks[0].objects.size()) /
                out.wall_seconds
          : 0.0;
  out.avg_fanout_ms =
      out.rounds > 0 ? fanout_seconds * 1000.0 / static_cast<double>(out.rounds)
                     : 0.0;

  for (ScubaClient& sub : subs) SCUBA_CHECK(sub.Bye().ok());
  SCUBA_CHECK(driver.Shutdown().ok());
  SCUBA_CHECK(sut.server->Wait().ok());
  return out;
}

struct SlowOutcome {
  uint64_t rounds = 0;
  uint64_t coalesces = 0;
  uint64_t fast_deltas = 0;
  uint64_t fast_wire_bytes = 0;
  uint64_t slow_wire_bytes = 0;
  size_t queue_cap_bytes = 0;
  bool slow_caught_up = false;
  double wall_seconds = 0.0;
};

/// The slow-consumer stream: the workload replayed three times (objects snap
/// back to their start positions between passes, so the pass-boundary deltas
/// are large). One shared shape for the probe run and the measured run.
template <typename PerRound>
void DriveSlowStream(const std::vector<TickBatch>& ticks, Timestamp delta,
                     int passes, ScubaClient* driver, uint64_t* rounds,
                     PerRound&& per_round) {
  for (int pass = 0; pass < passes; ++pass) {
    for (size_t t = 0; t < ticks.size(); ++t) {
      const Timestamp now = static_cast<Timestamp>(
          static_cast<size_t>(pass) * ticks.size() + t + 1);
      UpdateBatchMsg batch;
      batch.time = now;
      batch.evaluate = (t + 1) % static_cast<size_t>(delta) == 0;
      batch.objects = ticks[t].objects;
      batch.queries = pass == 0 ? ticks[t].queries
                                : std::vector<QueryUpdate>{};
      for (LocationUpdate& u : batch.objects) u.time = now;
      SCUBA_CHECK(driver->SendBatch(batch).ok());
      if (!batch.evaluate) continue;
      ++*rounds;
      per_round(*rounds);
    }
  }
}

struct StreamProbe {
  size_t max_round_wire_bytes = 0;
  size_t total_wire_bytes = 0;
};

/// Dry run of the slow-consumer stream with a draining subscriber, recording
/// the largest single push and the stream total — the two numbers that size
/// a queue cap no single frame can trip but an unread backlog must.
StreamProbe ProbeSlowStream(const std::vector<TickBatch>& ticks,
                            Timestamp delta) {
  StreamProbe probe;
  ServerUnderTest sut = StartServer(ServeOptions{});
  ScubaClient driver = ConnectOrDie(sut.server->port(), "driver");
  ScubaClient sub = ConnectOrDie(sut.server->port(), "probe");
  SCUBA_CHECK(sub.SubscribeAll().ok());
  uint64_t rounds = 0;
  size_t prev_bytes = sub.result_bytes_received();
  DriveSlowStream(ticks, delta, /*passes=*/3, &driver, &rounds,
                  [&](uint64_t round) {
    SCUBA_CHECK(sub.PumpUntilRound(round).ok());
    const size_t wire =
        sub.result_bytes_received() - prev_bytes + serve::kFrameHeaderBytes;
    prev_bytes = sub.result_bytes_received();
    probe.max_round_wire_bytes = std::max(probe.max_round_wire_bytes, wire);
    probe.total_wire_bytes += wire;
  });
  SCUBA_CHECK(sub.Bye().ok());
  SCUBA_CHECK(driver.Shutdown().ok());
  SCUBA_CHECK(sut.server->Wait().ok());
  return probe;
}

/// One subscriber never reads while the round stream runs; kCoalesce must
/// keep its server-side queue bounded without slowing the fast session, and
/// one snapshot must catch it up afterwards. The caller sizes the cap from
/// ProbeSlowStream so a single delta always fits but the backlog cannot.
/// Kernel socket buffers are clamped (server SO_SNDBUF, slow client
/// SO_RCVBUF) so backlog actually lands in the server's accounted queue
/// instead of hiding in opaque kernel memory.
SlowOutcome RunSlowConsumer(const std::vector<TickBatch>& ticks,
                            Timestamp delta, int passes,
                            size_t queue_cap_bytes) {
  SlowOutcome out;
  out.queue_cap_bytes = queue_cap_bytes;
  ServeOptions serve;
  serve.slow_consumer = SlowConsumerPolicy::kCoalesce;
  serve.max_queue_bytes = queue_cap_bytes;
  serve.socket_send_buffer_bytes = 4096;
  ServerUnderTest sut = StartServer(serve);

  ScubaClient driver = ConnectOrDie(sut.server->port(), "driver");
  ScubaClient fast = ConnectOrDie(sut.server->port(), "fast");
  ScubaClient::Options slow_options;
  slow_options.name = "slow";
  slow_options.recv_buffer_bytes = 4096;
  Result<ScubaClient> slow_client =
      ScubaClient::Connect(sut.server->port(), slow_options);
  SCUBA_CHECK_MSG(slow_client.ok(), slow_client.status().ToString().c_str());
  ScubaClient slow = std::move(slow_client).value();
  SCUBA_CHECK(fast.SubscribeAll().ok());
  SCUBA_CHECK(slow.SubscribeAll().ok());

  const auto start = std::chrono::steady_clock::now();
  DriveSlowStream(ticks, delta, passes, &driver, &out.rounds,
                  [&](uint64_t round) {
                    SCUBA_CHECK(fast.PumpUntilRound(round).ok());
                    // `slow` deliberately never reads here.
                  });
  out.wall_seconds = Seconds(start, std::chrono::steady_clock::now());

  // The backlog collapses to (at most) one snapshot plus the cap's worth of
  // recent deltas; catching up is one pump to the final round.
  SCUBA_CHECK(slow.PumpUntilRound(out.rounds).ok());
  out.slow_caught_up = slow.folded() == fast.folded();
  out.fast_deltas = fast.deltas_received();
  out.fast_wire_bytes = fast.result_bytes_received();
  out.slow_wire_bytes = slow.result_bytes_received();

  SCUBA_CHECK(fast.Bye().ok());
  SCUBA_CHECK(slow.Bye().ok());
  SCUBA_CHECK(driver.Shutdown().ok());
  SCUBA_CHECK(sut.server->Wait().ok());
  ServerStats stats = sut.server->stats();
  out.coalesces = stats.coalesces;
  return out;
}

void Run() {
  const ServeScale scale = ReadServeScale();
  const Timestamp delta = 2;
  const std::vector<TickBatch> ticks = MakeWorkload(scale);

  std::printf("=== serve: delta-push fan-out (protocol v%u) ===\n",
              serve::kProtocolVersion);
  std::printf(
      "workload: %u objects + %u standing queries, %d ticks, delta=%lld, "
      "100%% update rate\n\n",
      scale.objects, scale.queries, scale.ticks,
      static_cast<long long>(delta));

  std::printf("%-10s %8s %10s %14s %12s %14s %14s %8s\n", "sessions", "rounds",
              "wall(s)", "updates/s", "fanout(ms)", "delta bytes",
              "full bytes", "ratio");
  std::vector<SweepOutcome> outcomes;
  for (uint32_t sessions : {1u, 4u, 8u}) {
    SweepOutcome out = RunSweep(ticks, sessions, delta);
    const double ratio =
        out.full_wire_bytes > 0
            ? static_cast<double>(out.delta_wire_bytes) /
                  static_cast<double>(out.full_wire_bytes)
            : 0.0;
    std::printf("%-10u %8llu %10.4f %14.0f %12.3f %14llu %14llu %7.2f%%\n",
                out.sessions, static_cast<unsigned long long>(out.rounds),
                out.wall_seconds, out.updates_per_second, out.avg_fanout_ms,
                static_cast<unsigned long long>(out.delta_wire_bytes),
                static_cast<unsigned long long>(out.full_wire_bytes),
                100.0 * ratio);
    if (!outcomes.empty()) {
      SCUBA_CHECK_MSG(out.final_matches == outcomes.front().final_matches,
                      "session count must not change the answer");
    }
    outcomes.push_back(out);
  }
  // The acceptance bar: the delta stream beats resending full results.
  for (const SweepOutcome& out : outcomes) {
    SCUBA_CHECK_MSG(out.delta_wire_bytes < out.full_wire_bytes,
                    "delta push must cost fewer bytes than full-result push");
  }

  // Size the cap from a probe of the same stream: 1.5x the largest single
  // push (so the fast session never trips it), then enough passes that the
  // unread backlog overflows both the clamped kernel buffers (~16 KiB
  // in-flight with 4 KiB SNDBUF/RCVBUF; 64 KiB of margin here) and the cap.
  const StreamProbe probe = ProbeSlowStream(ticks, delta);
  const size_t slow_cap = probe.max_round_wire_bytes * 3 / 2;
  const size_t per_pass = probe.total_wire_bytes / 3;
  SCUBA_CHECK_MSG(per_pass > 0, "probe saw an empty stream");
  const size_t needed = (1u << 16) + 2 * slow_cap;
  const int passes =
      static_cast<int>(std::max<size_t>(3, needed / per_pass + 2));
  SlowOutcome slow = RunSlowConsumer(ticks, delta, passes, slow_cap);
  std::printf(
      "\nslow consumer (kCoalesce, %zu-byte queue cap): rounds=%llu "
      "coalesces=%llu fast-deltas=%llu slow-bytes=%llu fast-bytes=%llu "
      "caught-up=%s\n",
      slow.queue_cap_bytes,
      static_cast<unsigned long long>(slow.rounds),
      static_cast<unsigned long long>(slow.coalesces),
      static_cast<unsigned long long>(slow.fast_deltas),
      static_cast<unsigned long long>(slow.slow_wire_bytes),
      static_cast<unsigned long long>(slow.fast_wire_bytes),
      slow.slow_caught_up ? "yes" : "no");
  SCUBA_CHECK_MSG(slow.slow_caught_up, "slow consumer failed to catch up");
  SCUBA_CHECK_MSG(slow.coalesces > 0,
                  "the unread backlog never overflowed the cap — the "
                  "scenario proved nothing");
  SCUBA_CHECK_MSG(slow.fast_deltas == slow.rounds,
                  "the slow consumer must not stall the fast session");
  SCUBA_CHECK_MSG(slow.slow_wire_bytes < slow.fast_wire_bytes,
                  "coalescing should cost the slow consumer fewer wire bytes "
                  "than the full stream");

  const char* path = "BENCH_serve.json";
  std::FILE* json = std::fopen(path, "w");
  SCUBA_CHECK_MSG(json != nullptr, "cannot open BENCH_serve.json");
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"serve\",\n"
               "  \"protocol_version\": %u,\n"
               "  \"workload\": {\"objects\": %u, \"queries\": %u, "
               "\"ticks\": %d, \"delta\": %lld},\n"
               "  \"sweep\": [\n",
               serve::kProtocolVersion, scale.objects, scale.queries,
               scale.ticks, static_cast<long long>(delta));
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const SweepOutcome& out = outcomes[i];
    const double ratio =
        out.full_wire_bytes > 0
            ? static_cast<double>(out.delta_wire_bytes) /
                  static_cast<double>(out.full_wire_bytes)
            : 0.0;
    std::fprintf(json,
                 "    {\"sessions\": %u, \"rounds\": %llu, "
                 "\"wall_seconds\": %.6f, \"updates_per_second\": %.0f, "
                 "\"avg_fanout_ms\": %.4f, \"delta_wire_bytes\": %llu, "
                 "\"full_wire_bytes\": %llu, \"delta_to_full_ratio\": %.4f, "
                 "\"final_matches\": %llu}%s\n",
                 out.sessions, static_cast<unsigned long long>(out.rounds),
                 out.wall_seconds, out.updates_per_second, out.avg_fanout_ms,
                 static_cast<unsigned long long>(out.delta_wire_bytes),
                 static_cast<unsigned long long>(out.full_wire_bytes), ratio,
                 static_cast<unsigned long long>(out.final_matches),
                 i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"slow_consumer\": {\"policy\": \"coalesce\", "
               "\"queue_cap_bytes\": %zu, \"rounds\": %llu, "
               "\"coalesces\": %llu, \"fast_deltas\": %llu, "
               "\"slow_wire_bytes\": %llu, \"fast_wire_bytes\": %llu, "
               "\"caught_up\": %s}\n"
               "}\n",
               slow.queue_cap_bytes,
               static_cast<unsigned long long>(slow.rounds),
               static_cast<unsigned long long>(slow.coalesces),
               static_cast<unsigned long long>(slow.fast_deltas),
               static_cast<unsigned long long>(slow.slow_wire_bytes),
               static_cast<unsigned long long>(slow.fast_wire_bytes),
               slow.slow_caught_up ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
