// Scalability sweep (the paper's title claim): entity-count scaling at fixed
// skew. Reports per-engine join time, ingest throughput and memory as the
// population grows from 2,000 to 50,000 entities. Expected: SCUBA's join
// scales with the number of *clusters* (population / skew), not entities,
// while per-entity structures grow linearly everywhere.

#include <cinttypes>

#include "bench/bench_common.h"
#include "common/memory_usage.h"

namespace scuba::bench {
namespace {

void Run() {
  PrintBanner("Scalability", "entity-count sweep at skew 100");
  std::printf("%-12s %10s %14s %14s %16s %14s %14s\n", "entities", "clusters",
              "SCUBA join(s)", "REGULAR join(s)", "SCUBA ingest/s",
              "SCUBA memory", "REGULAR memory");
  const bool fast = ReadScale().objects <= 1000;
  for (uint32_t half : fast ? std::vector<uint32_t>{500, 1000, 2000}
                            : std::vector<uint32_t>{1000, 5000, 10000, 25000}) {
    ExperimentConfig config = DefaultConfig(/*skew=*/100);
    config.workload.num_objects = half;
    config.workload.num_queries = half;
    ExperimentData data = BuildOrDie(config);

    BenchOutcome scuba = RunScuba(data, /*delta=*/2);
    BenchOutcome regular = RunRegular(data, /*delta=*/2);
    double ingest_rate =
        scuba.maintenance_seconds > 0.0
            ? static_cast<double>(data.trace.TotalUpdates()) /
                  scuba.maintenance_seconds
            : 0.0;
    char label[32];
    std::snprintf(label, sizeof(label), "%u", 2 * half);
    std::printf("%-12s %10zu %14.4f %14.4f %16.0f %14s %14s\n", label,
                scuba.clusters, scuba.join_seconds, regular.join_seconds,
                ingest_rate, FormatBytes(scuba.peak_memory).c_str(),
                FormatBytes(regular.peak_memory).c_str());
  }
  std::printf("\n(ingest/s = update tuples through the full clustering path "
              "per maintenance second)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
