// Ablation bench: the design choices DESIGN.md calls out.
//
//  1. query_reach_aware  — lossless inflated join-between bounds (ours) vs
//     the paper's pure member circles (can silently drop matches).
//  2. probe_theta_d_disk — clustering probe over all cells within Theta_D vs
//     the paper's own-cell probe (affects cluster count / quality).
//  3. grid_sync_padding  — lazy padded ClusterGrid registration vs the
//     paper's literal re-registration on every bounds change.
//
// Each variant runs the standard workload; rows show what the knob buys.

#include "bench/bench_common.h"
#include "baseline/naive_join_engine.h"
#include "eval/accuracy.h"
#include "stream/pipeline.h"

namespace scuba::bench {
namespace {

struct AblationRow {
  const char* name;
  ScubaOptions options;
};

void Run() {
  PrintBanner("Ablation", "SCUBA design-choice ablations");
  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));

  // Ground truth for the completeness column.
  NaiveJoinEngine naive;
  std::vector<ResultSet> truth;
  SCUBA_CHECK(ReplayTrace(data.trace, &naive, 2,
                          [&](Timestamp, const ResultSet& r) {
                            truth.push_back(r);
                          })
                  .ok());

  ScubaOptions defaults;
  ScubaOptions paper_bounds = defaults;
  paper_bounds.query_reach_aware = false;
  ScubaOptions disk_probe = defaults;
  disk_probe.probe_theta_d_disk = true;
  ScubaOptions no_padding = defaults;
  no_padding.grid_sync_padding = 0.0;
  ScubaOptions splitting = defaults;
  splitting.enable_cluster_splitting = true;
  splitting.split_radius_factor = 0.6;

  const AblationRow rows[] = {
      {"default", defaults},
      {"paper-pure-bounds", paper_bounds},
      {"theta_d-disk-probe", disk_probe},
      {"no-grid-padding", no_padding},
      {"cluster-splitting", splitting},
  };

  std::printf("%-20s %10s %10s %10s %10s %10s\n", "variant", "join(s)",
              "maint(s)", "clusters", "recall", "results");
  for (const AblationRow& row : rows) {
    ScubaOptions options = row.options;
    options.region = data.region;
    Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
    SCUBA_CHECK(engine.ok());
    std::vector<ResultSet> rounds;
    SCUBA_CHECK(ReplayTrace(data.trace, engine->get(), 2,
                            [&](Timestamp, const ResultSet& r) {
                              rounds.push_back(r);
                            })
                    .ok());
    AccuracyAccumulator acc;
    for (size_t i = 0; i < truth.size(); ++i) {
      acc.Add(CompareResults(truth[i], rounds[i]));
    }
    std::printf("%-20s %10.4f %10.4f %10zu %10.4f %10llu\n", row.name,
                (*engine)->StatsSnapshot().eval.total_join_seconds,
                (*engine)->StatsSnapshot().eval.total_maintenance_seconds,
                (*engine)->ClusterCount(), acc.total().Recall(),
                static_cast<unsigned long long>(
                    (*engine)->StatsSnapshot().eval.total_results));
  }
  std::printf("\n(recall vs the naive oracle; the default variant must be "
              "1.0 — paper-pure bounds may drop matches)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
