// Micro-benchmarks (google-benchmark) of SCUBA's hot-path primitives:
// geometry predicates, polar transforms, grid-index operations, cluster
// absorb/refresh, Leader-Follower update routing, and the join-between test.

#include <benchmark/benchmark.h>

#include "cluster/leader_follower.h"
#include "cluster/moving_cluster.h"
#include "common/rng.h"
#include "geometry/polar.h"
#include "geometry/rect.h"
#include "index/grid_index.h"

namespace scuba {
namespace {

LocationUpdate MakeObj(ObjectId oid, Point p, double speed = 10.0,
                       NodeId dest = 1) {
  LocationUpdate u;
  u.oid = oid;
  u.position = p;
  u.speed = speed;
  u.dest_node = dest;
  u.dest_position = Point{9000, 9000};
  return u;
}

void BM_PolarRoundTrip(benchmark::State& state) {
  Rng rng(1);
  Point pole{rng.NextDouble(0, 1000), rng.NextDouble(0, 1000)};
  Point p{rng.NextDouble(0, 1000), rng.NextDouble(0, 1000)};
  for (auto _ : state) {
    PolarCoord pc = ToPolar(p, pole);
    benchmark::DoNotOptimize(FromPolar(pc, pole));
  }
}
BENCHMARK(BM_PolarRoundTrip);

void BM_CircleOverlap(benchmark::State& state) {
  Circle a{{100, 100}, 50};
  Circle b{{180, 100}, 40};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Overlaps(a, b));
  }
}
BENCHMARK(BM_CircleOverlap);

void BM_RectCircleIntersect(benchmark::State& state) {
  Rect r{0, 0, 100, 100};
  Circle c{{120, 50}, 30};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersects(r, c));
  }
}
BENCHMARK(BM_RectCircleIntersect);

void BM_GridInsertRemove(benchmark::State& state) {
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());
  Rng rng(2);
  uint32_t key = 0;
  for (auto _ : state) {
    Point p{rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    benchmark::DoNotOptimize(grid.Insert(key, p));
    benchmark::DoNotOptimize(grid.Remove(key));
    ++key;
  }
}
BENCHMARK(BM_GridInsertRemove);

void BM_GridUpdateCircle(benchmark::State& state) {
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());
  (void)grid.Insert(1, Circle{{5000, 5000}, static_cast<double>(state.range(0))});
  Rng rng(3);
  for (auto _ : state) {
    Point c{rng.NextDouble(1000, 9000), rng.NextDouble(1000, 9000)};
    benchmark::DoNotOptimize(
        grid.Update(1, Circle{c, static_cast<double>(state.range(0))}));
  }
}
BENCHMARK(BM_GridUpdateCircle)->Arg(50)->Arg(200)->Arg(500);

void BM_ClusterAbsorb(benchmark::State& state) {
  Rng rng(4);
  int64_t n = 0;
  MovingCluster cluster = MovingCluster::FromObject(0, MakeObj(0, {500, 500}));
  for (auto _ : state) {
    if (n >= state.range(0)) {
      state.PauseTiming();
      cluster = MovingCluster::FromObject(0, MakeObj(0, {500, 500}));
      n = 0;
      state.ResumeTiming();
    }
    Point p{500 + rng.NextDouble(-80, 80), 500 + rng.NextDouble(-80, 80)};
    cluster.AbsorbObject(MakeObj(static_cast<ObjectId>(++n), p));
  }
}
BENCHMARK(BM_ClusterAbsorb)->Arg(64)->Arg(256);

void BM_ClusterMemberRefresh(benchmark::State& state) {
  Rng rng(5);
  MovingCluster cluster = MovingCluster::FromObject(0, MakeObj(0, {500, 500}));
  for (uint32_t i = 1; i < 100; ++i) {
    Point p{500 + rng.NextDouble(-80, 80), 500 + rng.NextDouble(-80, 80)};
    cluster.AbsorbObject(MakeObj(i, p));
  }
  uint32_t id = 0;
  for (auto _ : state) {
    Point p{500 + rng.NextDouble(-80, 80), 500 + rng.NextDouble(-80, 80)};
    benchmark::DoNotOptimize(cluster.UpdateObjectMember(MakeObj(id, p)));
    id = (id + 1) % 100;
  }
}
BENCHMARK(BM_ClusterMemberRefresh);

void BM_LeaderFollowerIngest(benchmark::State& state) {
  ClusterStore store;
  GridIndex grid =
      std::move(GridIndex::Create(Rect{0, 0, 10000, 10000}, 100).value());
  LeaderFollowerClusterer clusterer(ClustererOptions{}, &store, &grid);
  Rng rng(6);
  // Pre-populate 64 groups of co-travelling objects.
  const uint32_t kEntities = 2048;
  std::vector<LocationUpdate> updates;
  for (uint32_t i = 0; i < kEntities; ++i) {
    uint32_t group = i / 32;
    Point base{(group % 8) * 1200.0 + 600.0, (group / 8) * 1200.0 + 600.0};
    Point p{base.x + rng.NextDouble(-60, 60), base.y + rng.NextDouble(-60, 60)};
    updates.push_back(MakeObj(i, p, 10.0, group));
  }
  size_t i = 0;
  for (auto _ : state) {
    LocationUpdate u = updates[i % updates.size()];
    // Drift so refreshes do real work.
    u.position.x += rng.NextDouble(-5, 5);
    benchmark::DoNotOptimize(clusterer.ProcessObjectUpdate(u));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LeaderFollowerIngest);

void BM_RectContainsPoint(benchmark::State& state) {
  Rect r{0, 0, 125, 125};
  Point p{60, 60};
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Contains(p));
    p.x = p.x < 124 ? p.x + 0.001 : 0.0;
  }
}
BENCHMARK(BM_RectContainsPoint);

}  // namespace
}  // namespace scuba

BENCHMARK_MAIN();
