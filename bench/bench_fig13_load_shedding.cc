// Figure 13 (paper §6.6): moving-cluster-driven load shedding.
//
// Sweeps the nucleus-to-cluster fraction eta over {0, 25, 50, 75, 100}% and
// reports (a) the cumulative join time and (b) the answer accuracy measured
// against SCUBA's own eta=0 output (exactly the paper's methodology: "we
// compare the results outputted by SCUBA when eta = 0% to the ones output
// when eta > 0%, calculating the number of false-negative and false-positive
// results"). Expected shape: join time falls as eta grows; accuracy degrades
// gracefully (paper: ~79% at eta = 50%).

#include <vector>

#include "bench/bench_common.h"
#include "common/memory_usage.h"
#include "eval/accuracy.h"
#include "stream/pipeline.h"

namespace scuba::bench {
namespace {

struct SheddingRun {
  std::vector<ResultSet> rounds;
  double join_seconds = 0.0;
  uint64_t comparisons = 0;
  size_t store_memory = 0;
  uint64_t members_shed = 0;
};

SheddingRun RunWithEta(const ExperimentData& data, double eta) {
  ScubaOptions options;
  options.region = data.region;
  if (eta > 0.0) {
    options.shedding.mode = LoadSheddingMode::kFixed;
    options.shedding.eta = eta;
  }
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  SheddingRun run;
  Status s = ReplayTrace(data.trace, engine->get(), /*delta=*/2,
                         [&](Timestamp, const ResultSet& r) {
                           run.rounds.push_back(r);
                         });
  SCUBA_CHECK_MSG(s.ok(), s.ToString().c_str());
  run.join_seconds = (*engine)->StatsSnapshot().eval.total_join_seconds;
  run.comparisons = (*engine)->StatsSnapshot().eval.comparisons;
  run.store_memory = (*engine)->store().EstimateMemoryUsage();
  run.members_shed = (*engine)->StatsSnapshot().clusterer.members_shed +
                     (*engine)->StatsSnapshot().phase.members_shed_maintenance;
  return run;
}

void Run() {
  PrintBanner("Figure 13", "load shedding: join time & accuracy vs eta");
  ExperimentConfig config = DefaultConfig(/*skew=*/100);
  // Tracking-style query sizes: shedding's join-work savings show up when
  // candidate tests dominate result emission.
  config.workload.min_range = 25.0;
  config.workload.max_range = 100.0;
  ExperimentData data = BuildOrDie(config);
  SheddingRun baseline = RunWithEta(data, 0.0);

  std::printf("%-8s %12s %14s %12s %12s %12s %14s\n", "eta", "join(s)",
              "comparisons", "accuracy", "precision", "recall", "store memory");
  for (double eta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    SheddingRun run = (eta == 0.0) ? baseline : RunWithEta(data, eta);
    AccuracyAccumulator acc;
    SCUBA_CHECK(run.rounds.size() == baseline.rounds.size());
    for (size_t i = 0; i < run.rounds.size(); ++i) {
      acc.Add(CompareResults(baseline.rounds[i], run.rounds[i]));
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", eta * 100.0);
    std::printf("%-8s %12.4f %14llu %12.4f %12.4f %12.4f %14s\n", label,
                run.join_seconds,
                static_cast<unsigned long long>(run.comparisons),
                acc.total().Accuracy(), acc.total().Precision(),
                acc.total().Recall(), FormatBytes(run.store_memory).c_str());
  }
  std::printf("\n(accuracy per the paper: SCUBA eta=0 output is the reference; "
              "eta = nucleus size / Theta_D)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
