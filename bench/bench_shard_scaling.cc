// Shard-count scaling sweep: replays the §6.1-scale workload through the
// sharded engine at shards = 1, 2, 4, 8 (join_threads = 4) and reports wall
// time, summed worker time, speedup versus one shard, ownership handoffs per
// round, ghost copies per round, and the per-shard join-comparison imbalance
// (max shard load over mean shard load — 1.0 is a perfect split).
// Besides the printed table it writes BENCH_shards.json so the perf
// trajectory is machine-readable across PRs. Sharding must not change the
// answer: final results and state hashes are asserted identical across the
// sweep (a cheap last line of defence behind the determinism matrix tests).

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "shard/sharded_engine.h"

namespace scuba::bench {
namespace {

struct ShardOutcome {
  BenchOutcome base;
  uint32_t shards = 1;
  uint64_t handoffs = 0;
  uint64_t ghosts = 0;
  uint64_t rounds = 0;
  uint64_t state_hash = 0;
  double imbalance = 1.0;  ///< max per-shard comparisons / mean, 1.0 = even.
  std::vector<uint64_t> per_shard_comparisons;
  ResultSet final_results;
};

ShardOutcome RunSharded(const ExperimentData& data, uint32_t shards) {
  ScubaOptions options;
  options.region = data.region;
  options.delta = 2;
  options.shards = shards;
  options.join_threads = 4;
  Result<std::unique_ptr<ShardedEngine>> engine = ShardedEngine::Create(options);
  SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  Result<EngineRunResult> run = RunOnTrace(engine->get(), data.trace, 2);
  SCUBA_CHECK_MSG(run.ok(), run.status().ToString().c_str());

  ShardOutcome out;
  out.base = Summarize(*run);
  out.base.clusters = (*engine)->ClusterCount();
  out.shards = shards;
  out.handoffs = (*engine)->handoffs();
  out.ghosts = (*engine)->ghosts_published();
  out.rounds = run->stats.evaluations;
  out.state_hash = EngineStateHash(**engine);
  out.final_results = std::move(run->final_results);

  uint64_t total = 0, max_load = 0;
  for (uint32_t s = 0; s < shards; ++s) {
    const uint64_t load = (*engine)->shard(s).join.counters().comparisons;
    out.per_shard_comparisons.push_back(load);
    total += load;
    if (load > max_load) max_load = load;
  }
  out.imbalance = total > 0 ? static_cast<double>(max_load) * shards /
                                  static_cast<double>(total)
                            : 1.0;
  return out;
}

int Main() {
  PrintBanner("shards", "shard-count scaling (sharded multi-engine rounds)");
  std::printf("hardware threads: %u (join_threads fixed at 4)\n\n",
              ThreadPool::DefaultThreadCount());

  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));
  const std::vector<uint32_t> sweep = {1, 2, 4, 8};

  std::printf("%8s %10s %12s %10s %11s %10s %10s %12s\n", "shards", "wall(s)",
              "worker(s)", "speedup", "imbalance", "handoffs", "ghosts",
              "results");
  std::vector<ShardOutcome> outcomes;
  for (uint32_t shards : sweep) {
    ShardOutcome out = RunSharded(data, shards);
    const double speedup = out.base.wall_seconds > 0.0
                               ? outcomes.empty()
                                     ? 1.0
                                     : outcomes.front().base.wall_seconds /
                                           out.base.wall_seconds
                               : 0.0;
    std::printf("%8u %10.4f %12.4f %9.2fx %10.2fx %10llu %10llu %12llu\n",
                shards, out.base.wall_seconds, out.base.join_worker_seconds,
                speedup, out.imbalance,
                static_cast<unsigned long long>(out.handoffs),
                static_cast<unsigned long long>(out.ghosts),
                static_cast<unsigned long long>(out.base.total_results));
    if (!outcomes.empty()) {
      SCUBA_CHECK_MSG(out.final_results == outcomes.front().final_results,
                      "shard count must not change the answer");
      SCUBA_CHECK_MSG(out.state_hash == outcomes.front().state_hash,
                      "shard count must not change the state hash");
      SCUBA_CHECK_MSG(
          out.base.total_results == outcomes.front().base.total_results,
          "shard count must not change the result count");
    }
    outcomes.push_back(std::move(out));
  }

  const char* path = "BENCH_shards.json";
  std::FILE* json = std::fopen(path, "w");
  SCUBA_CHECK_MSG(json != nullptr, "cannot open BENCH_shards.json");
  BenchScale scale = ReadScale();
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"shard_scaling\",\n"
               "  \"workload\": {\"objects\": %u, \"queries\": %u, "
               "\"ticks\": %d},\n"
               "  \"hardware_threads\": %u,\n"
               "  \"join_threads\": 4,\n"
               "  \"state_hash\": \"%016llx\",\n"
               "  \"sweep\": [\n",
               scale.objects, scale.queries, scale.ticks,
               ThreadPool::DefaultThreadCount(),
               static_cast<unsigned long long>(outcomes.front().state_hash));
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ShardOutcome& out = outcomes[i];
    const double speedup =
        out.base.wall_seconds > 0.0
            ? outcomes.front().base.wall_seconds / out.base.wall_seconds
            : 0.0;
    const double handoffs_per_round =
        out.rounds > 0 ? static_cast<double>(out.handoffs) /
                             static_cast<double>(out.rounds)
                       : 0.0;
    const double ghosts_per_round =
        out.rounds > 0
            ? static_cast<double>(out.ghosts) / static_cast<double>(out.rounds)
            : 0.0;
    std::fprintf(json,
                 "    {\"shards\": %u, \"wall_seconds\": %.6f, "
                 "\"join_seconds\": %.6f, \"worker_seconds\": %.6f, "
                 "\"speedup_vs_one_shard\": %.4f, \"imbalance\": %.4f, "
                 "\"handoffs\": %llu, \"handoffs_per_round\": %.2f, "
                 "\"ghosts\": %llu, \"ghosts_per_round\": %.2f, "
                 "\"results\": %llu, \"comparisons\": %llu, "
                 "\"per_shard_comparisons\": [",
                 out.shards, out.base.wall_seconds, out.base.join_seconds,
                 out.base.join_worker_seconds, speedup, out.imbalance,
                 static_cast<unsigned long long>(out.handoffs),
                 handoffs_per_round,
                 static_cast<unsigned long long>(out.ghosts), ghosts_per_round,
                 static_cast<unsigned long long>(out.base.total_results),
                 static_cast<unsigned long long>(out.base.comparisons));
    for (size_t s = 0; s < out.per_shard_comparisons.size(); ++s) {
      std::fprintf(json, "%s%llu", s > 0 ? ", " : "",
                   static_cast<unsigned long long>(
                       out.per_shard_comparisons[s]));
    }
    std::fprintf(json, "]}%s\n", i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(json,
               "  ]\n"
               "}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace scuba::bench

int main() { return scuba::bench::Main(); }
