// Figure 10 (paper §6.3): varying the skew factor (clusterability).
//
// The skew factor is the average number of moving entities sharing
// spatio-temporal properties (and thus groupable into one moving cluster).
// Expected shape: at skew 1 SCUBA pays single-member-cluster overhead and is
// no better (often worse) than the regular operator; as skew grows its join
// time falls sharply while the regular operator stays roughly flat.

#include <cinttypes>

#include "bench/bench_common.h"

namespace scuba::bench {
namespace {

void Run() {
  PrintBanner("Figure 10", "join time vs skew factor");
  std::printf("%-8s %16s %14s %14s %12s %16s\n", "skew", "REGULAR join(s)",
              "SCUBA join(s)", "SCUBA maint(s)", "clusters",
              "SCUBA comparisons");
  for (uint32_t skew : {1u, 10u, 20u, 50u, 100u, 150u, 200u}) {
    ExperimentData data = BuildOrDie(DefaultConfig(skew));
    BenchOutcome regular = RunRegular(data, /*delta=*/2);
    BenchOutcome scuba = RunScuba(data, /*delta=*/2);
    std::printf("%-8u %16.4f %14.4f %14.4f %12zu %16" PRIu64 "\n", skew,
                regular.join_seconds, scuba.join_seconds,
                scuba.maintenance_seconds, scuba.clusters, scuba.comparisons);
  }
  std::printf("\n(each skew level regenerates the workload; REGULAR is "
              "unaffected by skew except through data layout)\n");
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
