// Member-kernel microbenchmark: the three batched SoA kernels of the cluster
// join hot path (core/join_kernels.h) versus the scalar AoS loops they
// replaced, on a seeded synthetic member population. Reports members/sec per
// kernel and writes BENCH_kernels.json so the speedup is tracked across PRs.
// Both paths evaluate identical predicates; their match checksums are
// asserted equal, which doubles as an anti-dead-code-elimination sink.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/join_kernels.h"
#include "geometry/circle.h"
#include "geometry/rect.h"

namespace scuba::bench {
namespace {

/// The AoS member record the pre-SoA executor iterated.
struct AosObject {
  Point position;
  uint32_t oid = 0;
  uint64_t attrs = 0;
};

struct KernelResult {
  const char* name;
  double scalar_members_per_sec = 0.0;
  double soa_members_per_sec = 0.0;
  uint64_t members_per_pass = 0;
  double speedup() const {
    return scalar_members_per_sec > 0.0
               ? soa_members_per_sec / scalar_members_per_sec
               : 0.0;
  }
};

struct Scale {
  size_t members = 1 << 16;  ///< Population swept per pass.
  size_t probes = 64;        ///< Query rects / filter masks per pass.
  int reps = 7;              ///< Timed repetitions; best rep wins.
};

Scale ReadScale() {
  Scale s;
  const char* fast = std::getenv("SCUBA_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    s.members = 1 << 12;
    s.probes = 16;
    s.reps = 3;
  }
  return s;
}

/// Best-of-reps throughput of `body` (returns a checksum), in elements/sec.
template <typename Body>
double BestThroughput(int reps, uint64_t elements, uint64_t* checksum,
                      const Body& body) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch sw;
    uint64_t sum = body();
    double elapsed = sw.ElapsedSeconds();
    if (rep == 0) {
      *checksum = sum;
    } else {
      SCUBA_CHECK_MSG(sum == *checksum, "nondeterministic benchmark body");
    }
    double rate = elapsed > 0.0 ? static_cast<double>(elements) / elapsed : 0.0;
    if (rate > best) best = rate;
  }
  return best;
}

KernelResult BenchRectContains(const Scale& scale, Rng* rng) {
  std::vector<AosObject> aos(scale.members);
  std::vector<double> xs(scale.members), ys(scale.members);
  std::vector<uint32_t> oids(scale.members);
  std::vector<uint64_t> attrs(scale.members);
  for (size_t i = 0; i < scale.members; ++i) {
    Point p{rng->NextDouble(0, 10000), rng->NextDouble(0, 10000)};
    aos[i] = AosObject{p, static_cast<uint32_t>(i), 0};
    xs[i] = p.x;
    ys[i] = p.y;
    oids[i] = static_cast<uint32_t>(i);
  }
  std::vector<Rect> probes;
  for (size_t q = 0; q < scale.probes; ++q) {
    Point c{rng->NextDouble(0, 10000), rng->NextDouble(0, 10000)};
    probes.push_back(Rect::Centered(c, rng->NextDouble(200, 2000),
                                    rng->NextDouble(200, 2000)));
  }
  ObjectSlabView slab{xs.data(), ys.data(), oids.data(), attrs.data(),
                      static_cast<uint32_t>(scale.members)};
  std::vector<uint32_t> out(scale.members);

  KernelResult r{"rect_contains"};
  r.members_per_pass = scale.members * scale.probes;
  uint64_t scalar_sum = 0, soa_sum = 0;
  r.scalar_members_per_sec =
      BestThroughput(scale.reps, r.members_per_pass, &scalar_sum, [&] {
        uint64_t sum = 0;
        for (const Rect& range : probes) {
          for (const AosObject& o : aos) {
            if (range.Contains(o.position)) sum += o.oid + 1;
          }
        }
        return sum;
      });
  r.soa_members_per_sec =
      BestThroughput(scale.reps, r.members_per_pass, &soa_sum, [&] {
        uint64_t sum = 0;
        for (const Rect& range : probes) {
          size_t n = RectContainsPoints(range, slab, out.data());
          for (size_t k = 0; k < n; ++k) sum += oids[out[k]] + 1;
        }
        return sum;
      });
  SCUBA_CHECK_MSG(scalar_sum == soa_sum,
                  "rect_contains: SoA kernel diverged from the scalar loop");
  return r;
}

KernelResult BenchAttrsFilter(const Scale& scale, Rng* rng) {
  std::vector<uint64_t> attrs(scale.members);
  std::vector<uint32_t> candidates(scale.members);
  for (size_t i = 0; i < scale.members; ++i) {
    attrs[i] = rng->NextU64() & 0xFFull;
    candidates[i] = static_cast<uint32_t>(i);
  }
  std::vector<uint64_t> masks;
  for (size_t q = 0; q < scale.probes; ++q) {
    masks.push_back(rng->NextU64() & 0x1Full);
  }
  std::vector<uint32_t> scratch(scale.members);

  KernelResult r{"attrs_filter"};
  r.members_per_pass = scale.members * scale.probes;
  uint64_t scalar_sum = 0, soa_sum = 0;
  r.scalar_members_per_sec =
      BestThroughput(scale.reps, r.members_per_pass, &scalar_sum, [&] {
        uint64_t sum = 0;
        for (uint64_t required : masks) {
          for (uint32_t i : candidates) {
            if ((attrs[i] & required) == required) sum += i + 1;
          }
        }
        return sum;
      });
  r.soa_members_per_sec =
      BestThroughput(scale.reps, r.members_per_pass, &soa_sum, [&] {
        uint64_t sum = 0;
        for (uint64_t required : masks) {
          std::copy(candidates.begin(), candidates.end(), scratch.begin());
          size_t n = FilterByAttrs(attrs.data(), required, scratch.data(),
                                   scale.members);
          for (size_t k = 0; k < n; ++k) sum += scratch[k] + 1;
        }
        return sum;
      });
  SCUBA_CHECK_MSG(scalar_sum == soa_sum,
                  "attrs_filter: SoA kernel diverged from the scalar loop");
  return r;
}

/// The AoS query record the pre-SoA executor iterated: position + extent,
/// with Rect::Centered recomputed on every pass (the SoA path hoists the
/// rectangle into the arena once per round instead).
struct AosQuery {
  Point position;
  double width = 0.0;
  double height = 0.0;
};

KernelResult BenchRectCircleOverlap(const Scale& scale, Rng* rng) {
  std::vector<AosQuery> aos(scale.members);
  std::vector<double> min_xs(scale.members), min_ys(scale.members),
      max_xs(scale.members), max_ys(scale.members);
  for (size_t i = 0; i < scale.members; ++i) {
    Point c{rng->NextDouble(0, 10000), rng->NextDouble(0, 10000)};
    double w = rng->NextDouble(50, 500);
    double h = rng->NextDouble(50, 500);
    aos[i] = AosQuery{c, w, h};
    Rect rect = Rect::Centered(c, w, h);
    min_xs[i] = rect.min_x;
    min_ys[i] = rect.min_y;
    max_xs[i] = rect.max_x;
    max_ys[i] = rect.max_y;
  }
  std::vector<Circle> probes;
  for (size_t q = 0; q < scale.probes; ++q) {
    probes.push_back(Circle{Point{rng->NextDouble(0, 10000),
                                  rng->NextDouble(0, 10000)},
                            rng->NextDouble(200, 3000)});
  }
  QueryRectSlabView slab{min_xs.data(), min_ys.data(), max_xs.data(),
                         max_ys.data(), static_cast<uint32_t>(scale.members)};
  std::vector<uint8_t> mask(scale.members);

  KernelResult r{"rect_circle_overlap"};
  r.members_per_pass = scale.members * scale.probes;
  uint64_t scalar_sum = 0, soa_sum = 0;
  r.scalar_members_per_sec =
      BestThroughput(scale.reps, r.members_per_pass, &scalar_sum, [&] {
        uint64_t sum = 0;
        for (const Circle& c : probes) {
          for (size_t i = 0; i < aos.size(); ++i) {
            Rect range =
                Rect::Centered(aos[i].position, aos[i].width, aos[i].height);
            if (Intersects(range, c)) sum += i + 1;
          }
        }
        return sum;
      });
  r.soa_members_per_sec =
      BestThroughput(scale.reps, r.members_per_pass, &soa_sum, [&] {
        uint64_t sum = 0;
        for (const Circle& c : probes) {
          RectCircleOverlap(slab, c, mask.data());
          for (size_t i = 0; i < mask.size(); ++i) {
            if (mask[i] != 0) sum += i + 1;
          }
        }
        return sum;
      });
  SCUBA_CHECK_MSG(
      scalar_sum == soa_sum,
      "rect_circle_overlap: SoA kernel diverged from the scalar loop");
  return r;
}

int Main() {
  Scale scale = ReadScale();
  std::printf("=== kernels: SoA member kernels vs scalar AoS loops ===\n");
  std::printf("population: %zu members, %zu probes per pass, best of %d\n\n",
              scale.members, scale.probes, scale.reps);

  Rng rng(0x50A50A);
  std::vector<KernelResult> results;
  results.push_back(BenchRectContains(scale, &rng));
  results.push_back(BenchAttrsFilter(scale, &rng));
  results.push_back(BenchRectCircleOverlap(scale, &rng));

  std::printf("%22s %18s %18s %10s\n", "kernel", "scalar (M/s)", "soa (M/s)",
              "speedup");
  for (const KernelResult& r : results) {
    std::printf("%22s %18.1f %18.1f %9.2fx\n", r.name,
                r.scalar_members_per_sec / 1e6, r.soa_members_per_sec / 1e6,
                r.speedup());
  }

  const char* path = "BENCH_kernels.json";
  std::FILE* json = std::fopen(path, "w");
  SCUBA_CHECK_MSG(json != nullptr, "cannot open BENCH_kernels.json");
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"join_kernels\",\n"
               "  \"members\": %zu,\n"
               "  \"probes\": %zu,\n"
               "  \"kernels\": [\n",
               scale.members, scale.probes);
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"scalar_members_per_sec\": %.0f, "
                 "\"soa_members_per_sec\": %.0f, \"speedup\": %.4f}%s\n",
                 r.name, r.scalar_members_per_sec, r.soa_members_per_sec,
                 r.speedup(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace scuba::bench

int main() { return scuba::bench::Main(); }
