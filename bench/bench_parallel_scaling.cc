// Join-phase thread-scaling sweep: replays the §6.1-scale workload (10k
// objects + 10k queries) through SCUBA at join_threads = 1, 2, 4, 8 and
// reports join wall time, summed worker time, speedup versus serial and the
// join phase's share of total run wall time.
// Besides the printed table it writes BENCH_parallel.json so the perf
// trajectory is machine-readable across PRs. join_threads only parallelizes
// the join phase — identical results at every thread count is asserted here
// too (a cheap last line of defence behind the unit tests).

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/thread_pool.h"

namespace scuba::bench {
namespace {

int Main() {
  PrintBanner("parallel", "join-phase thread scaling (sharded cluster join)");
  std::printf("hardware threads: %u\n\n", ThreadPool::DefaultThreadCount());

  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));
  const std::vector<uint32_t> sweep = {1, 2, 4, 8};

  std::printf("%8s %10s %12s %10s %12s %10s %10s %14s\n", "threads", "join(s)",
              "worker(s)", "speedup", "efficiency", "wall(s)", "join/wall",
              "results");
  std::vector<BenchOutcome> outcomes;
  for (uint32_t threads : sweep) {
    ScubaOptions options;
    options.join_threads = threads;
    BenchOutcome out = RunScuba(data, /*delta=*/2, options);
    outcomes.push_back(out);
    double speedup = outcomes.front().join_seconds > 0.0
                         ? outcomes.front().join_seconds / out.join_seconds
                         : 0.0;
    double join_share =
        out.wall_seconds > 0.0 ? out.join_seconds / out.wall_seconds : 0.0;
    std::printf("%8u %10.4f %12.4f %9.2fx %11.2f%% %10.4f %9.1f%% %14llu\n",
                threads, out.join_seconds, out.join_worker_seconds, speedup,
                100.0 * speedup / threads, out.wall_seconds,
                100.0 * join_share,
                static_cast<unsigned long long>(out.total_results));
    SCUBA_CHECK_MSG(out.total_results == outcomes.front().total_results,
                    "thread counts must not change the answer");
  }

  // Telemetry overhead: the same workload with metrics + trace JSONL output
  // enabled must stay within a few percent of the plain run (the ≤2% budget
  // from docs/ARCHITECTURE.md §9). Reps interleave the two configurations and
  // each side keeps its best, so drifting machine state hits both equally.
  auto one_run = [&](bool telemetry) {
    ScubaOptions options;
    options.join_threads = 4;
    options.region = data.region;
    options.delta = 2;
    if (telemetry) {
      options.telemetry.metrics_out = "BENCH_telemetry_metrics.jsonl";
      options.telemetry.trace_out = "BENCH_telemetry_trace.jsonl";
    }
    Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
    SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
    Result<EngineRunResult> run = RunOnTrace(engine->get(), data.trace, 2);
    SCUBA_CHECK_MSG(run.ok(), run.status().ToString().c_str());
    Status flushed = (*engine)->FlushTelemetry();
    SCUBA_CHECK_MSG(flushed.ok(), flushed.ToString().c_str());
    return run->wall_seconds;
  };
  double plain_wall = 0.0;
  double telemetry_wall = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const double plain = one_run(false);
    const double instrumented = one_run(true);
    if (rep == 0 || plain < plain_wall) plain_wall = plain;
    if (rep == 0 || instrumented < telemetry_wall) telemetry_wall = instrumented;
  }
  const double overhead =
      plain_wall > 0.0 ? (telemetry_wall - plain_wall) / plain_wall : 0.0;
  std::printf("\ntelemetry overhead: plain %.4fs, instrumented %.4fs "
              "(%+.2f%%)\n",
              plain_wall, telemetry_wall, 100.0 * overhead);

  const char* path = "BENCH_parallel.json";
  std::FILE* json = std::fopen(path, "w");
  SCUBA_CHECK_MSG(json != nullptr, "cannot open BENCH_parallel.json");
  BenchScale scale = ReadScale();
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"parallel_scaling\",\n"
               "  \"workload\": {\"objects\": %u, \"queries\": %u, "
               "\"ticks\": %d},\n"
               "  \"hardware_threads\": %u,\n"
               "  \"sweep\": [\n",
               scale.objects, scale.queries, scale.ticks,
               ThreadPool::DefaultThreadCount());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const BenchOutcome& out = outcomes[i];
    double speedup = outcomes.front().join_seconds > 0.0
                         ? outcomes.front().join_seconds / out.join_seconds
                         : 0.0;
    double join_share =
        out.wall_seconds > 0.0 ? out.join_seconds / out.wall_seconds : 0.0;
    std::fprintf(json,
                 "    {\"threads\": %u, \"join_seconds\": %.6f, "
                 "\"worker_seconds\": %.6f, \"speedup_vs_serial\": %.4f, "
                 "\"wall_seconds\": %.6f, \"join_share_of_wall\": %.4f, "
                 "\"results\": %llu, \"comparisons\": %llu}%s\n",
                 sweep[i], out.join_seconds, out.join_worker_seconds, speedup,
                 out.wall_seconds, join_share,
                 static_cast<unsigned long long>(out.total_results),
                 static_cast<unsigned long long>(out.comparisons),
                 i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"telemetry\": {\"plain_wall_seconds\": %.6f, "
               "\"instrumented_wall_seconds\": %.6f, "
               "\"overhead_fraction\": %.4f}\n"
               "}\n",
               plain_wall, telemetry_wall, overhead);
  std::fclose(json);
  std::printf("\nwrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace scuba::bench

int main() { return scuba::bench::Main(); }
