// Shared plumbing for the figure-reproduction benchmark binaries.
//
// Each bench binary regenerates one table/figure of the paper's §6 on the
// synthetic Worcester substitute (DESIGN.md). Default scale matches §6.1:
// 10,000 moving objects + 10,000 moving range queries, 100% update rate,
// Delta = 2, Theta_D = 100, Theta_S = 10, 100x100 grid. Set SCUBA_BENCH_FAST=1
// to run a reduced scale for smoke testing.

#ifndef SCUBA_BENCH_BENCH_COMMON_H_
#define SCUBA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "baseline/grid_join_engine.h"
#include "common/check.h"
#include "core/scuba_engine.h"
#include "eval/experiment.h"

namespace scuba::bench {

struct BenchScale {
  uint32_t objects = 10000;
  uint32_t queries = 10000;
  int ticks = 12;
};

/// Paper scale by default; SCUBA_BENCH_FAST=1 shrinks the workload ~10x.
inline BenchScale ReadScale() {
  BenchScale scale;
  const char* fast = std::getenv("SCUBA_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    scale.objects = 1000;
    scale.queries = 1000;
    scale.ticks = 8;
  }
  return scale;
}

/// The §6.1 experiment configuration with the given skew.
inline ExperimentConfig DefaultConfig(uint32_t skew, uint64_t seed = 0x5C0BA) {
  BenchScale scale = ReadScale();
  ExperimentConfig config;
  config.city.seed = seed;
  config.workload.num_objects = scale.objects;
  config.workload.num_queries = scale.queries;
  config.workload.skew = skew;
  config.workload.seed = seed;
  config.ticks = scale.ticks;
  config.delta = 2;
  return config;
}

inline ExperimentData BuildOrDie(const ExperimentConfig& config) {
  Result<ExperimentData> data = BuildExperimentData(config);
  SCUBA_CHECK_MSG(data.ok(), data.status().ToString().c_str());
  return std::move(data).value();
}

/// Uniform per-run summary the tables print.
struct BenchOutcome {
  double join_seconds = 0.0;
  double maintenance_seconds = 0.0;
  double wall_seconds = 0.0;
  size_t peak_memory = 0;
  uint64_t total_results = 0;
  uint64_t comparisons = 0;
  size_t clusters = 0;     ///< Final cluster count (SCUBA only).
  size_t grid_memory = 0;  ///< Spatial-index-only bytes (Fig. 9b's claim).
  uint32_t join_threads = 1;        ///< Worker tasks per join round.
  double join_worker_seconds = 0.0; ///< Summed worker busy time (join phase).
  uint32_t ingest_threads = 1;      ///< Worker tasks per ingest batch.
  double ingest_seconds = 0.0;      ///< Batched-ingest wall time.
  double postjoin_seconds = 0.0;    ///< Post-join maintenance wall time.
  double ingest_worker_seconds = 0.0;    ///< Summed ingest busy time.
  double postjoin_worker_seconds = 0.0;  ///< Summed maintenance busy time.
};

inline BenchOutcome Summarize(const EngineRunResult& run) {
  BenchOutcome out;
  out.join_seconds = run.stats.total_join_seconds;
  out.maintenance_seconds = run.stats.total_maintenance_seconds;
  out.wall_seconds = run.wall_seconds;
  out.peak_memory = run.peak_memory_bytes;
  out.total_results = run.stats.total_results;
  out.comparisons = run.stats.comparisons;
  out.join_threads = run.stats.join_threads;
  out.join_worker_seconds = run.stats.total_join_worker_seconds;
  out.ingest_threads = run.stats.ingest_threads;
  out.ingest_seconds = run.stats.total_ingest_seconds;
  out.postjoin_seconds = run.stats.total_postjoin_seconds;
  out.ingest_worker_seconds = run.stats.total_ingest_worker_seconds;
  out.postjoin_worker_seconds = run.stats.total_postjoin_worker_seconds;
  return out;
}

/// Replays the data's trace into a fresh SCUBA engine built from `options`
/// (region is filled in from the data).
inline BenchOutcome RunScuba(const ExperimentData& data, Timestamp delta,
                             ScubaOptions options = {}) {
  options.region = data.region;
  options.delta = delta;
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  Result<EngineRunResult> run = RunOnTrace(engine->get(), data.trace, delta);
  SCUBA_CHECK_MSG(run.ok(), run.status().ToString().c_str());
  BenchOutcome out = Summarize(*run);
  out.clusters = (*engine)->ClusterCount();
  out.grid_memory = (*engine)->cluster_grid().EstimateMemoryUsage();
  return out;
}

/// Same for the regular grid-based comparator.
inline BenchOutcome RunRegular(const ExperimentData& data, Timestamp delta,
                               uint32_t grid_cells = 100) {
  GridJoinOptions options;
  options.region = data.region;
  options.grid_cells = grid_cells;
  Result<std::unique_ptr<GridJoinEngine>> engine =
      GridJoinEngine::Create(options);
  SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  Result<EngineRunResult> run = RunOnTrace(engine->get(), data.trace, delta);
  SCUBA_CHECK_MSG(run.ok(), run.status().ToString().c_str());
  BenchOutcome out = Summarize(*run);
  out.grid_memory = (*engine)->object_grid().EstimateMemoryUsage() +
                    (*engine)->query_grid().EstimateMemoryUsage();
  return out;
}

inline void PrintBanner(const char* figure, const char* title) {
  BenchScale scale = ReadScale();
  std::printf("=== %s: %s ===\n", figure, title);
  std::printf(
      "workload: %u objects + %u queries, %d ticks, delta=2, theta_d=100, "
      "theta_s=10\n\n",
      scale.objects, scale.queries, scale.ticks);
}

}  // namespace scuba::bench

#endif  // SCUBA_BENCH_BENCH_COMMON_H_
