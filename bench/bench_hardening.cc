// Stream-hardening overhead (supplementary; not a paper figure).
//
// Quantifies what the robustness layer costs on the §6.1 workload: the
// UpdateValidator screen plus a per-round invariant audit, swept over rising
// fault rates. Rate 0 isolates pure screening overhead on a clean stream;
// higher rates show throughput as the validator sheds a growing share of the
// tuples. The run aborts if any round's audit finds a violation — the bench
// doubles as an end-to-end soak of the quarantine path.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "stream/fault_injector.h"
#include "stream/pipeline.h"
#include "stream/update_validator.h"

namespace scuba::bench {
namespace {

Trace CorruptTrace(const Trace& clean, const Rect& region, double rate,
                   FaultStats* stats_out) {
  FaultPlan plan = FaultPlan::AllFaults(rate, region, /*node_count=*/0);
  FaultInjector injector(plan, /*seed=*/0x5C0BA);
  Trace dirty;
  for (const TickBatch& batch : clean.batches()) {
    TickBatch corrupted;
    corrupted.time = batch.time;
    corrupted.object_updates = batch.object_updates;
    corrupted.query_updates = batch.query_updates;
    injector.CorruptBatch(batch.time, &corrupted.object_updates,
                          &corrupted.query_updates, nullptr, nullptr);
    dirty.Append(std::move(corrupted));
  }
  *stats_out = injector.stats();
  return dirty;
}

void Run() {
  PrintBanner("Hardening", "validator + audit overhead vs fault rate");
  ExperimentData data = BuildOrDie(DefaultConfig(/*skew=*/100));

  // Baseline: no validator, no audits, clean trace.
  Stopwatch base_sw;
  BenchOutcome base = RunScuba(data, /*delta=*/2);
  const double base_wall = base_sw.ElapsedSeconds();
  std::printf("baseline (unhardened, clean): %.3fs wall, %llu results\n\n",
              base_wall,
              static_cast<unsigned long long>(base.total_results));

  std::printf("%-10s | %8s %9s %9s %9s | %8s %7s\n", "fault rate", "wall(s)",
              "screened", "admitted", "rejected", "injected", "audits");
  for (double rate : {0.0, 0.01, 0.05, 0.10}) {
    FaultStats faults;
    Trace dirty = CorruptTrace(data.trace, data.region, rate, &faults);

    ScubaOptions opt;
    opt.region = data.region;
    opt.delta = 2;
    opt.on_bad_update = BadUpdatePolicy::kQuarantine;
    opt.audit_every_n_rounds = 1;
    Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(opt);
    SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());

    ValidatorConfig vconfig;
    vconfig.policy = BadUpdatePolicy::kQuarantine;
    vconfig.bounds = data.region;
    vconfig.check_bounds = true;
    UpdateValidator validator(vconfig);

    Stopwatch sw;
    Status s =
        ReplayTrace(dirty, engine->get(), /*delta=*/2, nullptr, &validator);
    const double wall = sw.ElapsedSeconds();
    SCUBA_CHECK_MSG(s.ok(), s.ToString().c_str());
    SCUBA_CHECK_MSG((*engine)->StatsSnapshot().eval.invariant_violations == 0,
                    "audit found violations on the quarantine path");

    const ValidatorStats& vs = validator.stats();
    std::printf("%-10.2f | %8.3f %9llu %9llu %9llu | %8llu %7llu\n", rate,
                wall, static_cast<unsigned long long>(vs.screened),
                static_cast<unsigned long long>(vs.admitted),
                static_cast<unsigned long long>(vs.TotalRejected()),
                static_cast<unsigned long long>(faults.TotalInjected()),
                static_cast<unsigned long long>(
                    (*engine)->StatsSnapshot().eval.invariant_audits));
  }
}

}  // namespace
}  // namespace scuba::bench

int main() {
  scuba::bench::Run();
  return 0;
}
