// Durability-overhead benchmark (docs/ARCHITECTURE.md §8): replays the §6.1
// workload three ways — no durability, WAL-only, WAL + snapshot cadence — and
// reports the WAL append tax over the baseline, snapshot write latency and
// size, cold Restore latency, and RecoverEngine's WAL-replay throughput.
// Durability must never change the answer: every run's result count is
// asserted equal to the baseline, and the restored/recovered engines must
// hash identical to the engines they replace. Writes BENCH_checkpoint.json
// so the durability cost trajectory is machine-readable across PRs.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "persist/durability.h"
#include "persist/snapshot.h"
#include "shard/shard_durability.h"
#include "shard/sharded_engine.h"
#include "stream/pipeline.h"

namespace scuba::bench {
namespace {

namespace fs = std::filesystem;

/// One durable replay: wall time, answer size, and the engine's durability
/// counters plus its deterministic state hash at end-of-trace.
struct DurableOutcome {
  double wall_seconds = 0.0;
  uint64_t total_results = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t checkpoints_written = 0;
  uint64_t last_checkpoint_bytes = 0;
  double last_checkpoint_seconds = 0.0;
  double total_checkpoint_seconds = 0.0;
  uint64_t state_hash = 0;
  size_t clusters = 0;
};

ScubaOptions MakeOptions(const ExperimentData& data,
                         const CheckpointPolicy& policy) {
  ScubaOptions options;
  options.region = data.region;
  options.delta = 2;
  options.checkpoint = policy;
  return options;
}

DurableOutcome RunDurable(const ExperimentData& data, const std::string& dir,
                          const CheckpointPolicy& policy) {
  ScubaOptions options = MakeOptions(data, policy);
  Result<std::unique_ptr<ScubaEngine>> engine = ScubaEngine::Create(options);
  SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  Result<std::unique_ptr<DurabilityManager>> durability =
      DurabilityManager::Open(dir, policy, engine->get(), /*validator=*/nullptr,
                              /*rng=*/nullptr, /*crash=*/nullptr);
  SCUBA_CHECK_MSG(durability.ok(), durability.status().ToString().c_str());

  DurableOutcome out;
  ResultSink sink = [&out](Timestamp, const ResultSet& results) {
    out.total_results += results.size();
  };
  Stopwatch watch;
  Status run = ReplayTrace(data.trace, engine->get(), /*delta=*/2, sink,
                           /*validator=*/nullptr, durability->get());
  out.wall_seconds = watch.ElapsedSeconds();
  SCUBA_CHECK_MSG(run.ok(), run.ToString().c_str());

  const EvalStats stats = (*engine)->StatsSnapshot().eval;
  out.wal_records = stats.wal_records_appended;
  out.wal_bytes = stats.wal_bytes_appended;
  out.wal_fsyncs = stats.wal_fsyncs;
  out.checkpoints_written = stats.checkpoints_written;
  out.last_checkpoint_bytes = stats.last_checkpoint_bytes;
  out.last_checkpoint_seconds = stats.last_checkpoint_seconds;
  out.total_checkpoint_seconds = stats.total_checkpoint_seconds;
  out.state_hash = EngineStateHash(**engine);
  out.clusters = (*engine)->ClusterCount();
  return out;
}

/// The sharded twin of RunDurable: same trace, same policy, one WAL chain
/// per shard under manifest-committed checkpoints.
DurableOutcome RunShardedDurable(const ExperimentData& data,
                                 const std::string& dir,
                                 const CheckpointPolicy& policy,
                                 uint32_t shards) {
  ScubaOptions options = MakeOptions(data, policy);
  options.shards = shards;
  Result<std::unique_ptr<ShardedEngine>> engine =
      ShardedEngine::Create(options);
  SCUBA_CHECK_MSG(engine.ok(), engine.status().ToString().c_str());
  Result<std::unique_ptr<ShardedDurabilityManager>> durability =
      ShardedDurabilityManager::Open(dir, policy, engine->get(),
                                     /*validator=*/nullptr, /*rng=*/nullptr,
                                     /*crash=*/nullptr);
  SCUBA_CHECK_MSG(durability.ok(), durability.status().ToString().c_str());

  DurableOutcome out;
  ResultSink sink = [&out](Timestamp, const ResultSet& results) {
    out.total_results += results.size();
  };
  Stopwatch watch;
  Status run = ReplayTrace(data.trace, engine->get(), /*delta=*/2, sink,
                           /*validator=*/nullptr, durability->get());
  out.wall_seconds = watch.ElapsedSeconds();
  SCUBA_CHECK_MSG(run.ok(), run.ToString().c_str());

  const EvalStats stats = (*engine)->StatsSnapshot().eval;
  out.wal_records = stats.wal_records_appended;
  out.wal_bytes = stats.wal_bytes_appended;
  out.wal_fsyncs = stats.wal_fsyncs;
  out.checkpoints_written = stats.checkpoints_written;
  out.last_checkpoint_bytes = stats.last_checkpoint_bytes;
  out.last_checkpoint_seconds = stats.last_checkpoint_seconds;
  out.total_checkpoint_seconds = stats.total_checkpoint_seconds;
  out.state_hash = EngineStateHash(**engine);
  out.clusters = (*engine)->ClusterCount();
  return out;
}

int Main() {
  PrintBanner("checkpoint",
              "durability overhead: WAL append, snapshot write/restore, "
              "recovery replay");
  BenchScale scale = ReadScale();
  ExperimentConfig config = DefaultConfig(/*skew=*/100);
  ExperimentData data = BuildOrDie(config);

  const fs::path root = fs::current_path() / "bench_checkpoint.tmp";
  std::error_code ec;
  fs::remove_all(root, ec);
  const std::string wal_dir = (root / "wal-only").string();
  const std::string ckpt_dir = (root / "checkpointed").string();
  const std::string sharded_dir = (root / "sharded").string();

  // 1. Baseline: the identical replay with durability disabled.
  BenchOutcome base = RunScuba(data, /*delta=*/2);
  std::printf("%-14s %10s %12s %14s %12s\n", "mode", "wall(s)", "overhead",
              "wal bytes", "checkpoints");
  std::printf("%-14s %10.4f %11s%% %14s %12s\n", "baseline",
              base.wall_seconds, "-", "-", "-");

  // 2. WAL-only: every admitted batch fsynced to the log, no snapshots.
  CheckpointPolicy wal_policy;
  wal_policy.every_n_rounds = 0;
  DurableOutcome wal = RunDurable(data, wal_dir, wal_policy);
  double wal_overhead_pct =
      base.wall_seconds > 0.0
          ? (wal.wall_seconds / base.wall_seconds - 1.0) * 100.0
          : 0.0;
  std::printf("%-14s %10.4f %11.1f%% %14llu %12llu\n", "wal-only",
              wal.wall_seconds, wal_overhead_pct,
              static_cast<unsigned long long>(wal.wal_bytes),
              static_cast<unsigned long long>(wal.checkpoints_written));
  SCUBA_CHECK_MSG(wal.total_results == base.total_results,
                  "WAL logging must not change the answer");
  SCUBA_CHECK_MSG(wal.wal_records > 0, "WAL-only run appended no records");

  // 3. WAL + snapshots every other round, pruned to the last two.
  CheckpointPolicy ckpt_policy;
  ckpt_policy.every_n_rounds = 2;
  ckpt_policy.keep_last_k = 2;
  DurableOutcome ckpt = RunDurable(data, ckpt_dir, ckpt_policy);
  double ckpt_overhead_pct =
      base.wall_seconds > 0.0
          ? (ckpt.wall_seconds / base.wall_seconds - 1.0) * 100.0
          : 0.0;
  std::printf("%-14s %10.4f %11.1f%% %14llu %12llu\n", "checkpointed",
              ckpt.wall_seconds, ckpt_overhead_pct,
              static_cast<unsigned long long>(ckpt.wal_bytes),
              static_cast<unsigned long long>(ckpt.checkpoints_written));
  SCUBA_CHECK_MSG(ckpt.total_results == base.total_results,
                  "checkpointing must not change the answer");
  SCUBA_CHECK_MSG(ckpt.checkpoints_written > 0, "no snapshots were written");

  // 3b. Sharded durability: the same policy over 4 shards — one WAL chain
  // per shard, manifest-committed generations. Same answer, same state hash
  // as the single-engine run (the sharded determinism contract).
  constexpr uint32_t kBenchShards = 4;
  DurableOutcome sharded =
      RunShardedDurable(data, sharded_dir, ckpt_policy, kBenchShards);
  double sharded_overhead_pct =
      base.wall_seconds > 0.0
          ? (sharded.wall_seconds / base.wall_seconds - 1.0) * 100.0
          : 0.0;
  std::printf("%-14s %10.4f %11.1f%% %14llu %12llu\n", "sharded(4)",
              sharded.wall_seconds, sharded_overhead_pct,
              static_cast<unsigned long long>(sharded.wal_bytes),
              static_cast<unsigned long long>(sharded.checkpoints_written));
  SCUBA_CHECK_MSG(sharded.total_results == base.total_results,
                  "sharded durability must not change the answer");
  SCUBA_CHECK_MSG(sharded.state_hash == ckpt.state_hash,
                  "sharded durable run diverged from the single-engine run");
  SCUBA_CHECK_MSG(sharded.checkpoints_written > 0,
                  "sharded run wrote no checkpoint generations");

  // 4. Cold restore of the newest snapshot into a fresh engine.
  ScubaOptions restore_options = MakeOptions(data, ckpt_policy);
  Result<std::unique_ptr<ScubaEngine>> restored =
      ScubaEngine::Create(restore_options);
  SCUBA_CHECK_MSG(restored.ok(), restored.status().ToString().c_str());
  Stopwatch restore_watch;
  Status restore = (*restored)->Restore(ckpt_dir);
  const double restore_seconds = restore_watch.ElapsedSeconds();
  SCUBA_CHECK_MSG(restore.ok(), restore.ToString().c_str());
  std::printf("\nsnapshot: %llu bytes, write %.4fs, restore %.4fs (%zu "
              "clusters)\n",
              static_cast<unsigned long long>(ckpt.last_checkpoint_bytes),
              ckpt.last_checkpoint_seconds, restore_seconds,
              (*restored)->ClusterCount());

  // 5. Recovery replay throughput: rebuild the WAL-only run purely from its
  // log (no snapshot exists, so every record is re-ingested/re-evaluated).
  ScubaOptions recover_options = MakeOptions(data, wal_policy);
  Result<std::unique_ptr<ScubaEngine>> recovered =
      ScubaEngine::Create(recover_options);
  SCUBA_CHECK_MSG(recovered.ok(), recovered.status().ToString().c_str());
  uint64_t recovered_results = 0;
  ResultSink recover_sink = [&recovered_results](Timestamp,
                                                 const ResultSet& results) {
    recovered_results += results.size();
  };
  Stopwatch recover_watch;
  Result<RecoveryReport> report =
      RecoverEngine(wal_dir, recovered->get(), /*validator=*/nullptr,
                    /*rng=*/nullptr, recover_sink);
  const double recover_seconds = recover_watch.ElapsedSeconds();
  SCUBA_CHECK_MSG(report.ok(), report.status().ToString().c_str());
  SCUBA_CHECK_MSG(report->records_replayed == wal.wal_records,
                  "recovery must replay every WAL record");
  SCUBA_CHECK_MSG(recovered_results == wal.total_results,
                  "WAL replay must reproduce the original answer");
  SCUBA_CHECK_MSG(EngineStateHash(**recovered) == wal.state_hash,
                  "recovered engine state diverged from the original run");
  const double records_per_second =
      recover_seconds > 0.0
          ? static_cast<double>(report->records_replayed) / recover_seconds
          : 0.0;
  std::printf("recovery: %llu records / %llu rounds in %.4fs (%.0f "
              "records/s), state hash ok\n",
              static_cast<unsigned long long>(report->records_replayed),
              static_cast<unsigned long long>(report->rounds_replayed),
              recover_seconds, records_per_second);

  // 6. Sharded recovery: newest committed generation + cross-chain WAL
  // merge, restored into a DIFFERENT shard count to price re-partition.
  ScubaOptions sharded_recover_options = MakeOptions(data, ckpt_policy);
  sharded_recover_options.shards = 2;
  Result<std::unique_ptr<ShardedEngine>> sharded_recovered =
      ShardedEngine::Create(sharded_recover_options);
  SCUBA_CHECK_MSG(sharded_recovered.ok(),
                  sharded_recovered.status().ToString().c_str());
  Stopwatch sharded_recover_watch;
  Result<ShardedRecoveryReport> sharded_report = RecoverShardedEngine(
      sharded_dir, sharded_recovered->get(), /*validator=*/nullptr,
      /*rng=*/nullptr);
  const double sharded_recover_seconds =
      sharded_recover_watch.ElapsedSeconds();
  SCUBA_CHECK_MSG(sharded_report.ok(),
                  sharded_report.status().ToString().c_str());
  SCUBA_CHECK_MSG(EngineStateHash(**sharded_recovered) == sharded.state_hash,
                  "sharded recovery (4 -> 2 shards) diverged");
  std::printf("sharded recovery (4 -> 2 shards): generation %llu + %llu "
              "batches in %.4fs, state hash ok\n",
              static_cast<unsigned long long>(sharded_report->generation),
              static_cast<unsigned long long>(sharded_report->batches_replayed),
              sharded_recover_seconds);

  const char* path = "BENCH_checkpoint.json";
  std::FILE* json = std::fopen(path, "w");
  SCUBA_CHECK_MSG(json != nullptr, "cannot open BENCH_checkpoint.json");
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"checkpoint\",\n"
               "  \"workload\": {\"objects\": %u, \"queries\": %u, "
               "\"ticks\": %d},\n"
               "  \"baseline\": {\"wall_seconds\": %.6f, \"results\": %llu},\n",
               scale.objects, scale.queries, scale.ticks, base.wall_seconds,
               static_cast<unsigned long long>(base.total_results));
  std::fprintf(
      json,
      "  \"wal_only\": {\"wall_seconds\": %.6f, \"overhead_pct\": %.2f, "
      "\"records\": %llu, \"bytes\": %llu, \"fsyncs\": %llu},\n",
      wal.wall_seconds, wal_overhead_pct,
      static_cast<unsigned long long>(wal.wal_records),
      static_cast<unsigned long long>(wal.wal_bytes),
      static_cast<unsigned long long>(wal.wal_fsyncs));
  std::fprintf(
      json,
      "  \"checkpointed\": {\"wall_seconds\": %.6f, \"overhead_pct\": %.2f, "
      "\"checkpoints\": %llu, \"last_snapshot_bytes\": %llu, "
      "\"last_snapshot_seconds\": %.6f, \"total_snapshot_seconds\": %.6f},\n",
      ckpt.wall_seconds, ckpt_overhead_pct,
      static_cast<unsigned long long>(ckpt.checkpoints_written),
      static_cast<unsigned long long>(ckpt.last_checkpoint_bytes),
      ckpt.last_checkpoint_seconds, ckpt.total_checkpoint_seconds);
  std::fprintf(
      json,
      "  \"sharded\": {\"shards\": %u, \"wall_seconds\": %.6f, "
      "\"overhead_pct\": %.2f, \"wal_bytes\": %llu, \"fsyncs\": %llu, "
      "\"checkpoints\": %llu, \"recover_seconds\": %.6f, "
      "\"recover_shards\": 2},\n",
      kBenchShards, sharded.wall_seconds, sharded_overhead_pct,
      static_cast<unsigned long long>(sharded.wal_bytes),
      static_cast<unsigned long long>(sharded.wal_fsyncs),
      static_cast<unsigned long long>(sharded.checkpoints_written),
      sharded_recover_seconds);
  std::fprintf(json,
               "  \"restore\": {\"seconds\": %.6f, \"clusters\": %zu},\n",
               restore_seconds, (*restored)->ClusterCount());
  std::fprintf(
      json,
      "  \"recovery\": {\"seconds\": %.6f, \"records_replayed\": %llu, "
      "\"rounds_replayed\": %llu, \"records_per_second\": %.0f}\n"
      "}\n",
      recover_seconds, static_cast<unsigned long long>(report->records_replayed),
      static_cast<unsigned long long>(report->rounds_replayed),
      records_per_second);
  std::fclose(json);
  std::printf("wrote %s\n", path);

  fs::remove_all(root, ec);
  return 0;
}

}  // namespace
}  // namespace scuba::bench

int main() { return scuba::bench::Main(); }
