// Ingest-phase thread-scaling sweep: replays the §6.1-scale workload through
// SCUBA at ingest_threads = 1, 2, 4, 8 for two per-tick batch sizes (25% and
// 100% update rate) and reports ingest wall time, post-join maintenance wall
// time, summed worker time and speedup versus serial. Writes BENCH_ingest.json
// so the perf trajectory is machine-readable across PRs. Parallel ingest is
// required to be bit-identical to serial — the result counts are asserted to
// match across thread counts here too (behind the unit tests, a cheap last
// line of defence at full workload scale).

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/thread_pool.h"

namespace scuba::bench {
namespace {

struct SweepPoint {
  double update_fraction = 1.0;
  uint32_t threads = 1;
  uint32_t batch_size = 0;  ///< Updates per tick (objects + queries).
  BenchOutcome out;
};

int Main() {
  PrintBanner("ingest", "ingest-phase thread scaling (two-phase batch ingest)");
  std::printf("hardware threads: %u\n\n", ThreadPool::DefaultThreadCount());

  const std::vector<double> fractions = {0.25, 1.0};
  const std::vector<uint32_t> sweep = {1, 2, 4, 8};
  BenchScale scale = ReadScale();

  std::vector<SweepPoint> points;
  std::printf("%10s %8s %10s %12s %10s %12s %10s\n", "batch", "threads",
              "ingest(s)", "worker(s)", "speedup", "postjoin(s)", "results");
  for (double fraction : fractions) {
    ExperimentConfig config = DefaultConfig(/*skew=*/100);
    config.update_fraction = fraction;
    ExperimentData data = BuildOrDie(config);
    const uint32_t batch_size = static_cast<uint32_t>(
        fraction * static_cast<double>(scale.objects + scale.queries));
    BenchOutcome serial;  // the threads == 1 outcome of this batch size
    for (uint32_t threads : sweep) {
      ScubaOptions options;
      options.ingest_threads = threads;
      SweepPoint point;
      point.update_fraction = fraction;
      point.threads = threads;
      point.batch_size = batch_size;
      point.out = RunScuba(data, /*delta=*/2, options);
      points.push_back(point);
      const BenchOutcome& out = points.back().out;
      if (threads == sweep.front()) serial = out;
      double speedup = serial.ingest_seconds > 0.0
                           ? serial.ingest_seconds / out.ingest_seconds
                           : 0.0;
      std::printf("%10u %8u %10.4f %12.4f %9.2fx %12.4f %10llu\n", batch_size,
                  threads, out.ingest_seconds, out.ingest_worker_seconds,
                  speedup, out.postjoin_seconds,
                  static_cast<unsigned long long>(out.total_results));
      SCUBA_CHECK_MSG(out.total_results == serial.total_results,
                      "ingest thread counts must not change the answer");
      SCUBA_CHECK_MSG(out.comparisons == serial.comparisons,
                      "ingest thread counts must not change the join work");
    }
    std::printf("\n");
  }

  const char* path = "BENCH_ingest.json";
  std::FILE* json = std::fopen(path, "w");
  SCUBA_CHECK_MSG(json != nullptr, "cannot open BENCH_ingest.json");
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"ingest_scaling\",\n"
               "  \"workload\": {\"objects\": %u, \"queries\": %u, "
               "\"ticks\": %d},\n"
               "  \"hardware_threads\": %u,\n"
               "  \"sweep\": [\n",
               scale.objects, scale.queries, scale.ticks,
               ThreadPool::DefaultThreadCount());
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        json,
        "    {\"batch_size\": %u, \"update_fraction\": %.2f, "
        "\"ingest_threads\": %u, \"ingest_seconds\": %.6f, "
        "\"ingest_worker_seconds\": %.6f, \"postjoin_seconds\": %.6f, "
        "\"postjoin_worker_seconds\": %.6f, \"maintenance_seconds\": %.6f, "
        "\"join_seconds\": %.6f, \"wall_seconds\": %.6f, \"results\": %llu}%s\n",
        p.batch_size, p.update_fraction, p.threads, p.out.ingest_seconds,
        p.out.ingest_worker_seconds, p.out.postjoin_seconds,
        p.out.postjoin_worker_seconds, p.out.maintenance_seconds,
        p.out.join_seconds, p.out.wall_seconds,
        static_cast<unsigned long long>(p.out.total_results),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace scuba::bench

int main() { return scuba::bench::Main(); }
